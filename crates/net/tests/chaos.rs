//! The chaos matrix: scripted failure stories against live transports.
//!
//! Each scenario below is played across three pinned seeds (override with
//! `CHAOS_SEED=<n>` to hunt a specific schedule). Everything is
//! deterministic — the fault schedule derives from the seed, time from a
//! manual clock — so a red run here is a replayable counterexample, not a
//! flake. On failure the full transcript is written to
//! `target/chaos/lifecycle-<scenario>-<seed>.txt` (CI uploads these as
//! artifacts; the workload prefix keeps harnesses from colliding)
//! and included in the panic message.
//!
//! The properties exercised per story:
//!
//! * **crash/restart** — a peer dying mid-stream is declared dead within
//!   the strike budget, its queued sends fail back, a dead peer costs
//!   zero datagrams, and the restarted incarnation resynchronizes on a
//!   new epoch with no cross-epoch duplicates.
//! * **one-way partition** — an asymmetric cut exhausts the budget even
//!   though the peer is still audible, and healing re-admits it via the
//!   first heartbeat through.
//! * **loss/corruption storm** — a survivable storm never kills the peer,
//!   never corrupts delivery order, and recovers entirely within the
//!   epoch (no resync).

use flipc_core::inspect::PeerLiveness;
use flipc_net::{FaultConfig, NetConfig, Scenario, ScenarioOutcome};

/// Pinned seed matrix; `CHAOS_SEED` narrows the run to one seed.
fn seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        let seed = s
            .parse()
            .or_else(|_| u64::from_str_radix(s.trim_start_matches("0x"), 16))
            .expect("CHAOS_SEED must be an integer");
        return vec![seed];
    }
    vec![0xF11C_0001, 0xF11C_0002, 0xF11C_0003]
}

/// Lifecycle-tuned config: fast timers, small budget, idle heartbeats.
/// `CHAOS_COALESCE=1` replays the whole matrix with the per-peer frame
/// coalescer enabled, so every scenario also proves the batched wire
/// path under the same fault schedules (CI runs one leg this way).
fn cfg() -> NetConfig {
    NetConfig {
        window: 8,
        rto: 100,
        rto_min: 10,
        rto_max: 400,
        suspect_strikes: 2,
        dead_strikes: 4,
        heartbeat_interval: 1_000,
        coalesce: matches!(std::env::var("CHAOS_COALESCE").as_deref(), Ok("1")),
        ..NetConfig::default()
    }
}

/// Plays the scenario, writes the transcript artifact on failure
/// (lazily, workload-prefixed so seed-matrix artifacts never collide),
/// and panics with the whole story.
fn check(out: ScenarioOutcome) {
    if !out.passed() {
        let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
            .parent()
            .map(|p| p.join("chaos"))
            .unwrap_or_else(|| "target/chaos".into());
        if let Ok(path) = out.write_transcript(&dir, "lifecycle") {
            eprintln!("chaos transcript written to {}", path.display());
        }
    }
    out.assert_clean();
}

#[test]
fn crash_restart_resyncs_on_a_new_epoch() {
    for seed in seeds() {
        let scenario = Scenario::new("crash-restart", 2, cfg(), seed)
            .say("steady traffic establishes the path")
            .send(0, 1, 10)
            .run(4_000)
            .expect_delivered_at_least(1, 0, 10)
            .expect_liveness(0, 1, PeerLiveness::Healthy)
            .say("node 1 dies mid-stream with frames on the way")
            .crash(1)
            .send(0, 1, 6)
            .run(20_000)
            .expect_liveness(0, 1, PeerLiveness::Dead)
            .expect_failed_at_least(0, 1, 1)
            .say("a dead peer costs zero datagrams, however long we wait")
            .mark_cost(0)
            .run(10_000)
            .expect_no_cost_since_mark(0)
            .say("the supervisor reboots node 1 at the next epoch")
            .restart(1)
            .run(8_000)
            .expect_liveness(0, 1, PeerLiveness::Healthy)
            .expect_epoch_resyncs_at_least(0, 1)
            .say("traffic flows again on the fresh epoch")
            .send(0, 1, 10)
            .run(6_000)
            .expect_delivered_at_least(1, 0, 10);
        check(scenario.play());
    }
}

#[test]
fn one_way_partition_exhausts_the_budget_and_heals() {
    for seed in seeds() {
        // Node 1's heartbeat cadence is slow enough (8k ticks) that node 0
        // — which has unacked frames striking every RTO — gives up long
        // before node 1 speaks again, keeping the timeline deterministic:
        // strikes exhaust at cut+1100 ticks, the first audible ping lands
        // thousands of ticks later.
        let slow_hb = NetConfig {
            heartbeat_interval: 8_000,
            ..cfg()
        };
        let scenario = Scenario::new("one-way-partition", 2, slow_hb, seed)
            .say("healthy traffic in both directions")
            .send(0, 1, 6)
            .send(1, 0, 6)
            .run(4_000)
            .expect_delivered_at_least(1, 0, 6)
            .expect_delivered_at_least(0, 1, 6)
            .say("cut 0 -> 1 only; node 1 can still reach node 0")
            .partition(0, 1)
            .send(0, 1, 6)
            // Long enough for the strike budget (rounds at +100, +300,
            // +700, +1100 ticks), short enough that node 1's slow
            // heartbeat has not spoken yet — one audible ping through the
            // open direction would re-admit the peer (by design: any
            // valid arrival does).
            .run(2_000)
            .say("node 0's strikes exhaust even though node 1 is audible")
            .expect_liveness(0, 1, PeerLiveness::Dead)
            .expect_failed_at_least(0, 1, 1)
            .say("heal; node 1's next heartbeat re-admits it")
            .heal(0, 1)
            .run(12_000)
            .expect_liveness(0, 1, PeerLiveness::Healthy)
            .say("the path works forward on node 0's bumped epoch")
            .send(0, 1, 8)
            .run(6_000)
            .expect_delivered_at_least(1, 0, 14)
            .expect_epoch_resyncs_at_least(1, 1);
        check(scenario.play());
    }
}

#[test]
fn survivable_storm_recovers_within_the_epoch() {
    for seed in seeds() {
        // Budget sized to ride out the storm: plenty of strikes.
        let sturdy = NetConfig {
            dead_strikes: 1_000,
            ..cfg()
        };
        let storm = FaultConfig {
            loss: 0.30,
            duplicate: 0.10,
            reorder: 0.10,
            delay: 0.15,
            delay_ops: 4,
            delay_jitter_ops: 6,
            corrupt: 0.15,
        };
        let scenario = Scenario::new("storm", 2, sturdy, seed)
            .say("clean warmup")
            .send(0, 1, 8)
            .run(3_000)
            .say("storm: loss, duplication, reordering, delay, corruption")
            .faults(0, storm)
            .faults(1, storm)
            .send(0, 1, 30)
            .run(60_000)
            .say("storm passes")
            .faults(0, FaultConfig::default())
            .faults(1, FaultConfig::default())
            .run(20_000)
            .expect_delivered_at_least(1, 0, 38)
            .expect_liveness(0, 1, PeerLiveness::Healthy)
            .expect_liveness(1, 0, PeerLiveness::Healthy);
        let out = scenario.play();
        // The storm must have actually bitten, and recovery must have
        // happened inside the epoch: no resync, no cross-epoch losses.
        let s0 = out.snapshots[0].as_ref().expect("node 0 alive");
        let s1 = out.snapshots[1].as_ref().expect("node 1 alive");
        assert!(
            s0.paths[0].retransmitted > 0,
            "storm must exercise recovery (seed {seed:#x})"
        );
        assert!(
            s1.decode_errors > 0,
            "corruption storms must surface as decode errors (seed {seed:#x})"
        );
        assert_eq!(s0.epoch_resyncs, 0, "no resync needed (seed {seed:#x})");
        assert_eq!(s1.epoch_resyncs, 0, "no resync needed (seed {seed:#x})");
        check(out);
    }
}

#[test]
fn the_matrix_is_deterministic_per_seed() {
    let scenario = Scenario::new("determinism", 2, cfg(), 0xF11C_0001)
        .send(0, 1, 12)
        .faults(0, FaultConfig::lossy(0.2))
        .run(10_000)
        .crash(1)
        .run(10_000)
        .restart(1)
        .run(10_000)
        .send(0, 1, 12)
        .run(10_000);
    let a = scenario.play();
    let b = scenario.play();
    assert_eq!(
        a.transcript, b.transcript,
        "transcripts must replay exactly"
    );
    assert_eq!(a.delivered, b.delivered, "deliveries must replay exactly");
}
