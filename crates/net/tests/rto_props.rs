//! Property tests for the adaptive RTO estimator and session-epoch
//! admission — the two places where a wrong edge case silently costs
//! either latency (a timeout that never converges) or correctness (a
//! stale-epoch frame leaking into delivery).

use flipc_core::endpoint::{EndpointAddress, EndpointIndex, FlipcNodeId};
use flipc_engine::transport::Transport;
use flipc_engine::wire::Frame;
use flipc_net::packet::encode_data;
use flipc_net::reliability::RttEstimator;
use flipc_net::{Link, ManualClock, MemHub, NetConfig, NetTransport};
use proptest::prelude::*;

/// A config whose clamp stays out of the way, for raw-adaptation checks.
fn open_cfg() -> NetConfig {
    NetConfig {
        rto: 1,
        rto_min: 1,
        rto_max: u64::MAX,
        ..NetConfig::default()
    }
}

/// Sample values that stress the arithmetic: zeros, extremes, and the
/// whole ordinary range.
fn rtt_sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(u64::MAX),
        Just(u64::MAX / 2),
        any::<u64>(),
        0u64..1_000_000,
    ]
}

proptest! {
    /// Whatever the sample history, the implied timeout obeys the
    /// configured clamp: never above `rto_max`, never below `rto_min`
    /// when the bounds are consistent, and exactly `rto_max` when they
    /// conflict (the cap wins). With no samples the configured initial
    /// `rto` applies, still capped.
    #[test]
    fn rto_respects_the_configured_clamp(
        samples in proptest::collection::vec(rtt_sample(), 0..64),
        rto in any::<u64>(),
        rto_min in any::<u64>(),
        rto_max in any::<u64>(),
    ) {
        let cfg = NetConfig { rto, rto_min, rto_max, ..NetConfig::default() };
        let mut e = RttEstimator::new();
        for &s in &samples {
            e.observe(s);
        }
        let got = e.rto(&cfg);
        prop_assert!(got <= rto_max, "rto {got} above cap {rto_max}");
        if samples.is_empty() {
            prop_assert_eq!(got, rto.min(rto_max));
        } else if rto_min <= rto_max {
            prop_assert!(got >= rto_min, "rto {got} below floor {rto_min}");
        } else {
            prop_assert_eq!(got, rto_max, "conflicting bounds must resolve to the cap");
        }
    }

    /// Feeding arbitrary (including pathological) samples never panics,
    /// and the internal estimates never overflow into nonsense: srtt and
    /// rttvar stay representable and the implied rto stays within the cap.
    #[test]
    fn pathological_samples_never_overflow(
        samples in proptest::collection::vec(rtt_sample(), 1..256),
    ) {
        let mut e = RttEstimator::new();
        for &s in &samples {
            e.observe(s);
        }
        prop_assert_eq!(e.samples(), samples.len() as u64);
        let cfg = open_cfg();
        // Saturating arithmetic: the estimate is monotone-bounded by the
        // largest sample's order of magnitude, never a wrapped tiny value
        // after a huge one... the cheap observable check is that the
        // clamped timeout still respects any cap we choose.
        for cap in [1u64, 1_000, u64::MAX] {
            let cfg = NetConfig { rto_max: cap, ..cfg };
            prop_assert!(e.rto(&cfg) <= cap);
        }
    }

    /// After the path's true RTT step-changes (by up to 8x either way),
    /// 32 samples at the new value pull the implied timeout to within 2x
    /// of the new true RTT — the estimator tracks the path instead of
    /// fossilizing the old schedule.
    #[test]
    fn estimator_converges_within_32_samples_of_a_step_change(
        r_old in 100u64..100_000,
        num in 1u64..=8,
        den in 1u64..=8,
    ) {
        // The step stays within 8x either way by construction.
        let r_new = (r_old * num / den).max(100);
        let mut e = RttEstimator::new();
        for _ in 0..64 {
            e.observe(r_old);
        }
        for _ in 0..32 {
            e.observe(r_new);
        }
        let rto = e.rto(&open_cfg());
        prop_assert!(
            rto >= r_new / 2 && rto <= r_new * 2,
            "rto {rto} not within 2x of true RTT {r_new} (step from {r_old})"
        );
    }
}

/// A well-formed data datagram carrying `seq` at `epoch`, from node 1.
fn datagram(seq: u32, epoch: u16) -> Vec<u8> {
    let frame = Frame {
        src: EndpointAddress::new(FlipcNodeId(1), EndpointIndex(0), 1),
        dst: EndpointAddress::new(FlipcNodeId(0), EndpointIndex(0), 1),
        payload: vec![0x5A; 16].into(),
        stamp_ns: 0,
    };
    encode_data(FlipcNodeId(1), seq, epoch, &frame).expect("encodable")
}

proptest! {
    /// Frames from any stale epoch (1..=32767 behind the admitted one,
    /// i.e. everything `epoch_newer` calls "older") are counted and
    /// dropped, never delivered — and the path still accepts the next
    /// in-order frame on the live epoch afterwards.
    #[test]
    fn stale_epoch_frames_are_never_delivered(
        epoch in any::<u16>(),
        stale in proptest::collection::vec((1u16..=32767, any::<u32>()), 1..16),
    ) {
        let hub = MemHub::new(2, 1024);
        let mut transport: NetTransport<_, _> = NetTransport::new(
            FlipcNodeId(0),
            &[FlipcNodeId(1)],
            hub.link(FlipcNodeId(0)),
            ManualClock::new(),
            NetConfig::default(),
        );
        let mut raw = hub.link(FlipcNodeId(1));

        // Establish the live epoch with the first in-order frame.
        prop_assert!(raw.send(FlipcNodeId(0), &datagram(1, epoch)));
        prop_assert!(transport.try_recv().is_some(), "live frame must deliver");

        // Every stale-epoch frame must bounce off admission.
        for &(behind, seq) in &stale {
            prop_assert!(raw.send(FlipcNodeId(0), &datagram(seq, epoch.wrapping_sub(behind))));
        }
        prop_assert!(transport.try_recv().is_none(), "stale frames leaked into delivery");
        let snap = transport.stats().snapshot();
        prop_assert_eq!(snap.paths[0].stale_epoch, stale.len() as u32);
        prop_assert_eq!(snap.paths[0].delivered, 1);

        // The live epoch keeps flowing.
        prop_assert!(raw.send(FlipcNodeId(0), &datagram(2, epoch)));
        prop_assert!(transport.try_recv().is_some(), "live epoch must survive the storm");
    }
}
