//! Property tests for the credit-based flow-control machinery: the
//! sender-side grant clamp, the receiver-side AIMD grantor, and the
//! deficit-round-robin fairness arbiter.
//!
//! The properties pinned here are the ones a wrong edge case would turn
//! into a silent outage rather than a test failure: a sender overrunning
//! the peer's advertised credit (the exact flooding credit exists to
//! prevent), a window that wedges shut and can never regrow, a bulk
//! endpoint starving a latency-critical one past the DRR bound, and
//! drop-counter wraparound misread as fresh congestion.

use flipc_net::reliability::{CreditGrantor, DrrArbiter, SenderPath};
use flipc_net::NetConfig;
use proptest::prelude::*;

fn cfg(window: u32) -> NetConfig {
    NetConfig {
        window,
        ..NetConfig::default()
    }
}

/// One step of an adversarial sender-side schedule.
#[derive(Clone, Debug)]
enum SenderOp {
    /// A credit advertisement arrives from the peer.
    Credit(u32, u32),
    /// The application tries to admit one frame.
    Admit,
    /// The peer cumulatively acks everything currently in flight.
    AckAll,
}

fn sender_op() -> impl Strategy<Value = SenderOp> {
    prop_oneof![
        (0u32..20, 0u32..4).prop_map(|(c, d)| SenderOp::Credit(c, d)),
        Just(SenderOp::Admit),
        Just(SenderOp::AckAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under any interleaving of advertisements, admissions, and acks,
    /// the frames in flight never exceed the effective window, and the
    /// effective window never exceeds the latest advertised credit
    /// (clamped to the liveness floor of one frame).
    #[test]
    fn in_flight_never_exceeds_the_advertised_credit(
        window in 1u32..16,
        ops in proptest::collection::vec(sender_op(), 1..64),
    ) {
        let mut path = SenderPath::new(cfg(window));
        let mut now = 0u64;
        let mut last_credit: Option<u32> = None;
        let mut drops_total = 0u32;
        // Sequences start at 1 and the schedule never resets the epoch,
        // so the highest outstanding sequence is simply the admission
        // count.
        let mut admitted_total = 0u32;
        for op in &ops {
            now += 1;
            match op {
                SenderOp::Credit(c, fresh) => {
                    // Drop counters are cumulative on the wire.
                    drops_total = drops_total.wrapping_add(*fresh);
                    path.on_credit(*c, drops_total);
                    last_credit = Some((*c).max(1));
                }
                SenderOp::Admit => {
                    let was_full = path.full();
                    let admitted = path
                        .admit(now, |seq| Some(vec![seq as u8]))
                        .is_some();
                    prop_assert_eq!(
                        admitted,
                        !was_full,
                        "admit and full() must agree"
                    );
                    if admitted {
                        admitted_total += 1;
                    }
                }
                SenderOp::AckAll => {
                    if path.in_flight() > 0 {
                        path.on_ack(now, admitted_total);
                    }
                }
            }
            // The core overrun bound: admissions stop at the effective
            // window, which itself honours the latest grant (credit may
            // shrink below what is already in flight — those frames were
            // admitted legally under the old grant and drain, but nothing
            // NEW may be admitted while at or above the limit).
            if let Some(c) = last_credit {
                prop_assert!(
                    path.effective_window() <= window.min(c.max(1)).max(1),
                    "effective window {} exceeds grant {} (cfg window {})",
                    path.effective_window(), c, window
                );
            }
            if path.in_flight() >= path.effective_window() {
                prop_assert!(path.full(), "overrun admission must backpressure");
            }
        }
    }

    /// The grantor's advertised credit is never below the floor and the
    /// window can always regrow: after an arbitrary drop storm, rounds
    /// with delivery progress and no fresh drops climb back to the full
    /// configured window in at most `window` rounds. No schedule wedges
    /// the grant shut.
    #[test]
    fn the_granted_window_never_wedges_at_zero(
        window in 1u32..64,
        storm in proptest::collection::vec((0u32..8, 0u32..8), 0..32),
    ) {
        let mut g = CreditGrantor::new(&cfg(window));
        for (drops, delivered) in &storm {
            for _ in 0..*drops {
                g.on_drop();
            }
            g.on_delivered(*delivered);
            let (credit, _, _) = g.advertise();
            prop_assert!(credit >= 1, "grant fell below the liveness floor");
            prop_assert!(credit <= window, "grant exceeded the ceiling");
        }
        // Liveness: the floor guarantees one probe frame per round can
        // get through; each productive round regrows by one, so the full
        // window is back within `window` rounds of clean progress.
        let mut rounds = 0u32;
        while g.window() < window {
            rounds += 1;
            prop_assert!(rounds <= window, "regrow stalled at {}/{window}", g.window());
            g.on_delivered(1);
            let (credit, _, shrank) = g.advertise();
            prop_assert!(!shrank, "regrow round must not shrink");
            prop_assert!(credit >= 1, "regrow round fell below the floor");
        }
        prop_assert_eq!(g.window(), window, "regrow must reach the ceiling");
    }

    /// DRR fairness bound: once a latency-critical endpoint has declared
    /// demand (one refused request), an adversarial bulk endpoint sharing
    /// the path admits at most two quanta of frames between consecutive
    /// grants to the waiting endpoint — the bulk tier cannot starve the
    /// high tier no matter how aggressively it retries.
    #[test]
    fn a_greedy_bulk_endpoint_cannot_starve_a_waiting_one(
        quantum in 1u32..6,
        window in 2u32..12,
        steps in proptest::collection::vec((0u32..4, 0u32..8), 8..96),
    ) {
        let mut arb = DrrArbiter::new(&NetConfig {
            drr_quantum: quantum,
            ..NetConfig::default()
        });
        let mut in_flight = 0u32;
        let mut now = 0u64;
        let mut high_waiting = false;
        let mut bulk_since_high = 0u32;
        for (acked, bulk_tries) in &steps {
            now += 1;
            in_flight = in_flight.saturating_sub(*acked);
            // The bulk producer hammers the path first every step.
            for _ in 0..*bulk_tries {
                let free = window.saturating_sub(in_flight);
                if arb.request(0, now, free) {
                    if free == 0 {
                        // The arbiter only meters fairness; the window
                        // gate lives in the transport.
                        continue;
                    }
                    in_flight += 1;
                    if high_waiting {
                        bulk_since_high += 1;
                        prop_assert!(
                            bulk_since_high <= 2 * quantum,
                            "bulk admitted {bulk_since_high} frames past a waiting \
                             endpoint (quantum {quantum})"
                        );
                    }
                }
            }
            // Then the latency-critical endpoint asks for one slot.
            let free = window.saturating_sub(in_flight);
            if arb.request(1, now, free) && free > 0 {
                in_flight += 1;
                high_waiting = false;
                bulk_since_high = 0;
            } else {
                high_waiting = true;
            }
        }
    }

    /// Drop-counter wraparound is read as real arithmetic: a forward
    /// wrapping advance (even across `u32::MAX`) is fresh congestion and
    /// clamps the usable window; a stale or duplicate counter (zero or
    /// backward delta) never does.
    #[test]
    fn credit_drop_deltas_are_wraparound_safe(
        base in prop_oneof![
            Just(0u32),
            Just(u32::MAX),
            Just(u32::MAX - 1),
            Just(1u32 << 31),
            any::<u32>(),
        ],
        advance in 0u32..4,
        credit in 1u32..32,
    ) {
        let mut path = SenderPath::new(cfg(16));
        // Establish the baseline: the first advertisement never clamps
        // (there is no delta to judge yet).
        prop_assert!(!path.on_credit(credit, base), "baseline must not clamp");
        let next = base.wrapping_add(advance);
        let clamped = path.on_credit(credit, next);
        prop_assert_eq!(
            clamped,
            advance != 0,
            "forward delta {} from {} must clamp iff nonzero", advance, base
        );
        if clamped {
            // The stored grant is the raw advertisement halved (the
            // configured-window clamp is applied later, in
            // `effective_window`).
            prop_assert_eq!(path.remote_credit(), (credit / 2).max(1));
        }
        // Replaying the same counter (a duplicated ack) is not fresh
        // congestion and must not halve the window again.
        prop_assert!(!path.on_credit(credit, next), "duplicate counter clamped");
        // A stale counter from a reordered ack (backward delta lands in
        // the far half of the sequence space) must not clamp either.
        let stale = next.wrapping_sub(5);
        prop_assert!(!path.on_credit(credit, stale), "backward delta clamped");
    }
}
