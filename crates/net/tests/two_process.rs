//! The headline acceptance test: two *separate OS processes* complete a
//! FLIPC ping-pong over real UDP sockets on 127.0.0.1, through the
//! unmodified engine API.
//!
//! The test spawns the crate's `net_pingpong` bin twice — once as
//! `--server --port 0` (ephemeral port), once as `--client` pointed at
//! the port and packed inbox address the server prints — exactly the
//! out-of-band bootstrap a human would do by hand.

use std::io::{BufRead, BufReader, Read};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const ROUNDS: u32 = 16;

/// Kills a child on drop so a failing test never leaks a process into
/// the build environment. Disarm with [`Guard::disarm`] after a clean
/// wait.
struct Guard(Option<Child>);

impl Guard {
    fn child(&mut self) -> &mut Child {
        self.0.as_mut().expect("child still guarded")
    }

    fn disarm(&mut self) -> Child {
        self.0.take().expect("child still guarded")
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if let Some(child) = &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn wait_with_deadline(mut guard: Guard, deadline: Instant, who: &str) {
    loop {
        match guard.child().try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "{who} exited with {status}");
                // Already reaped by `try_wait`; the extra `wait` returns the
                // cached status and pacifies clippy::zombie_processes.
                let _ = guard.disarm().wait();
                return;
            }
            None => {
                assert!(Instant::now() < deadline, "{who} did not finish in time");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

#[test]
fn two_os_processes_ping_pong_over_udp() {
    let bin = env!("CARGO_BIN_EXE_net_pingpong");

    let mut server = Guard(Some(
        Command::new(bin)
            .args(["--server", "--port", "0", "--rounds", &ROUNDS.to_string()])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn server"),
    ));

    // Read the out-of-band bootstrap lines the server prints.
    let mut server_out = BufReader::new(server.child().stdout.take().expect("server stdout"));
    let mut port = None;
    let mut inbox = None;
    while port.is_none() || inbox.is_none() {
        let mut line = String::new();
        let n = server_out.read_line(&mut line).expect("read server stdout");
        assert!(n > 0, "server exited before printing LISTEN/INBOX");
        if let Some(p) = line.strip_prefix("LISTEN ") {
            port = Some(p.trim().parse::<u16>().expect("LISTEN port"));
        } else if let Some(a) = line.strip_prefix("INBOX ") {
            inbox = Some(a.trim().parse::<u64>().expect("INBOX address"));
        }
    }
    let (port, inbox) = (port.unwrap(), inbox.unwrap());

    let client = Guard(Some(
        Command::new(bin)
            .args([
                "--client",
                "--server-addr",
                &format!("127.0.0.1:{port}"),
                "--inbox",
                &inbox.to_string(),
                "--rounds",
                &ROUNDS.to_string(),
            ])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn client"),
    ));

    let deadline = Instant::now() + Duration::from_secs(60);
    wait_with_deadline(client, deadline, "client");
    wait_with_deadline(server, deadline, "server");

    // The server's remaining stdout must report a completed run with
    // per-peer traffic visible through the inspect surface.
    let mut rest = String::new();
    server_out
        .read_to_string(&mut rest)
        .expect("server stdout tail");
    assert!(
        rest.contains(&format!("DONE server rounds={ROUNDS}")),
        "server did not report completion:\n{rest}"
    );
    assert!(
        rest.contains("peer 1") && rest.contains("sent"),
        "server stats must show traffic to the client:\n{rest}"
    );
}
