//! Property tests for the [`ClockSync`] offset estimator — the number
//! every cross-node latency in the merged timeline hangs off. The
//! properties mirror the estimator's contract: it converges under
//! symmetric jitter, its error under asymmetric delay stays inside the
//! dispersion bound it reports, its arithmetic survives `u64` wraparound
//! and epoch resyncs, and Karn rejection means retransmitted or
//! duplicated replies can never poison the estimate.

use flipc_net::reliability::ClockSync;
use proptest::prelude::*;

/// Runs one four-timestamp exchange against `c` with the peer's clock
/// ahead of ours by `offset` ns, outbound leg `d1` ns, peer processing
/// `proc` ns, return leg `d2` ns, starting at local time `t1`. Returns
/// whether the sample was accepted.
fn exchange(c: &mut ClockSync, t1: u64, offset: i64, d1: u64, proc: u64, d2: u64) -> bool {
    let t2 = t1.wrapping_add(d1).wrapping_add_signed(offset);
    let t3 = t2.wrapping_add(proc);
    let t4 = t1.wrapping_add(d1).wrapping_add(proc).wrapping_add(d2);
    c.probe_sent(t1);
    c.on_pong(t1, t2, t3, t4)
}

/// A signed offset up to ~1s either way, from unsigned parts (the shim's
/// range strategies are unsigned-only).
fn offset_ns() -> impl Strategy<Value = i64> {
    (0u64..1_000_000_000, any::<bool>())
        .prop_map(|(mag, neg)| if neg { -(mag as i64) } else { mag as i64 })
}

proptest! {
    /// With symmetric constant delay every sample measures the offset
    /// exactly, so the estimate equals the true offset after any number
    /// of exchanges — the estimator converges instead of orbiting.
    #[test]
    fn symmetric_delay_converges_exactly(
        offset in offset_ns(),
        delay in 1u64..10_000_000,
        proc in 0u64..1_000_000,
        rounds in 1usize..64,
    ) {
        let mut c = ClockSync::new();
        let mut t = 1_000u64;
        for _ in 0..rounds {
            prop_assert!(exchange(&mut c, t, offset, delay, proc, delay));
            t += 2 * delay + proc + 1_000;
        }
        prop_assert_eq!(c.offset_ns(), offset);
        prop_assert_eq!(c.samples(), rounds as u64);
    }

    /// Under per-exchange symmetric jitter every sample lands within
    /// ±(jitter span)/2 of the true offset, and the EWMA is a convex
    /// combination of samples, so the estimate stays inside that band
    /// (plus a few ns of integer-division slop) no matter the history.
    #[test]
    fn symmetric_jitter_keeps_the_estimate_in_band(
        offset in offset_ns(),
        base in 1_000u64..1_000_000,
        span in 0u64..500_000,
        legs in proptest::collection::vec((0u64..=1_000_000, 0u64..=1_000_000), 1..64),
    ) {
        let mut c = ClockSync::new();
        let mut t = 1_000u64;
        for &(j1, j2) in &legs {
            let (d1, d2) = (base + j1 % (span + 1), base + j2 % (span + 1));
            prop_assert!(exchange(&mut c, t, offset, d1, 50, d2));
            t += 4_000_000;
        }
        let err = (c.offset_ns() - offset).unsigned_abs();
        prop_assert!(
            err <= span / 2 + 8,
            "estimate drifted {err} ns outside the ±{}/2 jitter band",
            span
        );
    }

    /// Asymmetric path: the sample's unknowable error is |d1−d2|/2, and
    /// the estimator's contract is that (a) the estimate's true error
    /// never exceeds half the round-trip delay and (b) once the estimate
    /// settles, the reported dispersion covers the true error — the error
    /// bars the merge draws are honest.
    #[test]
    fn asymmetric_delay_error_stays_inside_dispersion(
        offset in offset_ns(),
        d1 in 1u64..5_000_000,
        d2 in 1u64..5_000_000,
    ) {
        let mut c = ClockSync::new();
        let mut t = 1_000u64;
        for _ in 0..32 {
            prop_assert!(exchange(&mut c, t, offset, d1, 100, d2));
            t += 20_000_000;
        }
        let err = (c.offset_ns() - offset).unsigned_abs();
        prop_assert!(err <= (d1 + d2) / 2 + 8, "error {err} above delay/2");
        // 32 constant samples: dispersion has converged onto half_delay,
        // which bounds |d1−d2|/2. Allow EWMA truncation slop.
        prop_assert!(
            c.dispersion_ns() + 8 >= err,
            "dispersion {} does not cover true error {err}",
            c.dispersion_ns()
        );
    }

    /// Stamps straddling the `u64` wrap point still yield the exact
    /// offset: the wrapping-subtract-then-widen arithmetic sees the small
    /// true differences, not 2^64-sized garbage — and nothing panics.
    #[test]
    fn wraparound_stamps_measure_the_true_offset(
        offset in offset_ns(),
        delay in 1u64..1_000_000,
        back in 0u64..2_000_000,
    ) {
        let mut c = ClockSync::new();
        let t1 = u64::MAX - back;
        prop_assert!(exchange(&mut c, t1, offset, delay, 100, delay));
        prop_assert_eq!(c.offset_ns(), offset);
    }

    /// Arbitrary stamp soup — pongs with any timestamps, interleaved
    /// probes and epoch resyncs — never panics, and after a reset the
    /// estimator is factory-fresh: zero samples, zero offset, and a pong
    /// answering a pre-reset probe is rejected (new incarnation, new
    /// clock).
    #[test]
    fn stamp_soup_and_resync_never_corrupt_state(
        ops in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), 0u8..4),
            1..128,
        ),
    ) {
        let mut c = ClockSync::new();
        let mut accepted = 0u64;
        for &(a, b_, d, e, op) in &ops {
            match op {
                0 => c.probe_sent(a),
                1 => {
                    if c.on_pong(a, b_, d, e) {
                        accepted += 1;
                    }
                }
                2 => {
                    c.probe_sent(a);
                    if c.on_pong(a, b_, d, e) {
                        accepted += 1;
                    }
                }
                _ => {
                    c.probe_sent(a);
                    c.reset();
                    accepted = 0;
                    prop_assert!(!c.on_pong(a, b_, d, e), "pre-reset probe answered");
                    prop_assert_eq!(c.samples(), 0);
                    prop_assert_eq!(c.offset_ns(), 0);
                    prop_assert_eq!(c.dispersion_ns(), 0);
                }
            }
            prop_assert_eq!(c.samples(), accepted);
        }
    }

    /// Karn discipline: a reply to a superseded (retransmitted) probe is
    /// rejected, an accepted reply cannot be replayed, and a never-probed
    /// stamp never matches — so at most ONE sample per outstanding probe
    /// ever lands, whatever the duplication pattern.
    #[test]
    fn retransmitted_and_duplicated_replies_never_land(
        t1_old in any::<u64>(),
        bump in 1u64..1_000_000,
        dup_rounds in 1usize..8,
    ) {
        let t1_new = t1_old.wrapping_add(bump);
        let mut c = ClockSync::new();
        c.probe_sent(t1_old);
        c.probe_sent(t1_new); // retransmit supersedes the old stamp
        // The late reply to the superseded probe must bounce.
        prop_assert!(!c.on_pong(t1_old, t1_old, t1_old, t1_old.wrapping_add(10)));
        prop_assert_eq!(c.samples(), 0);
        // The live probe's reply lands exactly once...
        let (t2, t3, t4) = (t1_new.wrapping_add(5), t1_new.wrapping_add(6), t1_new.wrapping_add(11));
        prop_assert!(c.on_pong(t1_new, t2, t3, t4));
        // ...and every duplicate of it bounces off the consumed probe.
        for _ in 0..dup_rounds {
            prop_assert!(!c.on_pong(t1_new, t2, t3, t4));
        }
        prop_assert_eq!(c.samples(), 1);
    }
}
