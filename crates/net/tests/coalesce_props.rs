//! Property tests for the batch coalescer's wire format — the one new
//! place where a length field from the network steers a parser. Three
//! properties must hold for *every* frame mix and *every* corruption:
//! pack-then-unpack is the identity, a sealed batch never exceeds its
//! MTU, and a mangled sub-frame length can at worst cost that one
//! datagram (never a panic, never garbage delivery).

use flipc_core::endpoint::{EndpointAddress, EndpointIndex, FlipcNodeId};
use flipc_engine::wire::Frame;
use flipc_net::packet::{self, BatchBuilder, Packet, HEADER_LEN, MAX_DATAGRAM, SUBFRAME_PREFIX};
use proptest::collection::vec;
use proptest::prelude::*;

fn frame(tag: u8, len: usize) -> Frame {
    Frame {
        src: EndpointAddress::new(FlipcNodeId(0), EndpointIndex(1), 1),
        dst: EndpointAddress::new(FlipcNodeId(1), EndpointIndex(2), 1),
        payload: vec![tag; len].into(),
        stamp_ns: u64::from(tag) * 1_000,
    }
}

/// Field-wise frame equality (stamp_ns is not serialized, so it is
/// excluded — the wire roundtrip zeroes it by contract).
fn same_frame(a: &Frame, b: &Frame) -> bool {
    a.src == b.src && a.dst == b.dst && a.payload == b.payload
}

/// Stages `frames` through a builder exactly the way the transport does:
/// encode as plain Data, strip the datagram header, push; when a frame
/// does not fit, seal the pending batch and start the next one. Returns
/// the sealed datagrams (skipping frames too big to ever coalesce, as
/// the transport's plain-Data bypass would).
fn pack_all(frames: &[Frame], mtu: usize, first_seq: u32) -> Vec<Vec<u8>> {
    let src = FlipcNodeId(3);
    let epoch = 7;
    let mut b = BatchBuilder::new(mtu);
    let mut out = Vec::new();
    let mut seq = first_seq;
    for f in frames {
        let bytes = packet::encode_data(src, seq, epoch, f).expect("frame fits a datagram");
        let body = &bytes[HEADER_LEN..];
        if !b.can_ever_hold(body.len()) {
            continue; // the transport sends these as plain Data
        }
        if !b.fits(body.len()) {
            out.extend(b.finish(src, epoch).map(<[u8]>::to_vec));
            b.clear();
        }
        assert!(b.push(seq, body), "a flushed builder must accept it");
        seq = seq.wrapping_add(1);
    }
    out.extend(b.finish(src, epoch).map(<[u8]>::to_vec));
    out
}

/// An arbitrary mix of (tag, payload length) pairs, including empty
/// payloads and sizes near typical MTU boundaries.
fn frame_mix() -> impl Strategy<Value = Vec<(u8, usize)>> {
    vec(
        (
            any::<u8>(),
            prop_oneof![0usize..64, 1_300usize..1_500, Just(0usize)],
        ),
        1..40,
    )
}

/// FNV-1a over the datagram with the check field read as zero — a test
/// reimplementation (mirrors `packet::checksum`) so corruption tests can
/// forge a *re-sealed* datagram whose only defect is the mangled field.
fn forge_seal(bytes: &mut [u8]) {
    const CHECK_OFFSET: usize = 14;
    bytes[CHECK_OFFSET..CHECK_OFFSET + 4].fill(0);
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes.iter() {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    bytes[CHECK_OFFSET..CHECK_OFFSET + 4].copy_from_slice(&h.to_le_bytes());
}

proptest! {
    /// Pack-then-unpack is the identity: every staged frame comes back,
    /// in order, with contiguous sequence numbers and intact contents.
    #[test]
    fn pack_then_unpack_is_the_identity(
        mix in frame_mix(),
        mtu in (HEADER_LEN + SUBFRAME_PREFIX + 64)..4_000usize,
        first_seq in any::<u32>(),
    ) {
        let frames: Vec<Frame> = mix.iter().map(|&(t, l)| frame(t, l)).collect();
        let datagrams = pack_all(&frames, mtu, first_seq);
        let mut got = Vec::new();
        let mut expect_seq = first_seq;
        for d in &datagrams {
            match packet::decode(d) {
                Some(Packet::Batch { src, first_seq: fs, epoch, frames }) => {
                    prop_assert_eq!(src, FlipcNodeId(3));
                    prop_assert_eq!(epoch, 7);
                    prop_assert_eq!(fs, expect_seq, "batches stay seq-contiguous");
                    expect_seq = expect_seq.wrapping_add(frames.len() as u32);
                    got.extend(frames);
                }
                _ => prop_assert!(false, "sealed batch must decode as Batch"),
            }
        }
        let staged: Vec<&Frame> = frames
            .iter()
            .filter(|f| HEADER_LEN + SUBFRAME_PREFIX + f.wire_len() <= mtu.min(MAX_DATAGRAM))
            .collect();
        prop_assert_eq!(got.len(), staged.len());
        for (g, e) in got.iter().zip(staged) {
            prop_assert!(same_frame(g, e), "sub-frame mutated in transit: {:?} vs {:?}", g, e);
        }
    }

    /// No sealed datagram ever exceeds the MTU bound, and every sealed
    /// datagram re-parses standalone (no sub-frame straddles a boundary).
    #[test]
    fn sealed_batches_respect_the_mtu(
        mix in frame_mix(),
        mtu in (HEADER_LEN + SUBFRAME_PREFIX + 64)..4_000usize,
    ) {
        let frames: Vec<Frame> = mix.iter().map(|&(t, l)| frame(t, l)).collect();
        for d in pack_all(&frames, mtu, 1) {
            prop_assert!(d.len() <= mtu.min(MAX_DATAGRAM), "datagram {} > mtu {}", d.len(), mtu);
            prop_assert!(packet::decode(&d).is_some(), "each datagram stands alone");
        }
    }

    /// Any single-byte corruption of a batch datagram — including its
    /// sub-frame length prefixes — never panics the decoder and never
    /// yields frames (the whole-datagram checksum rejects it): at most
    /// that one datagram is lost, which go-back-N already recovers.
    #[test]
    fn corrupted_batches_never_panic_and_never_deliver(
        mix in vec((any::<u8>(), 0usize..96), 1..8),
        pos in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let frames: Vec<Frame> = mix.iter().map(|&(t, l)| frame(t, l)).collect();
        let mut d = pack_all(&frames, 2_000, 1).swap_remove(0);
        let at = pos % d.len();
        d[at] ^= flip;
        prop_assert!(packet::decode(&d).is_none(), "corruption drops the datagram whole");
    }

    /// Even an adversary who can re-seal the checksum cannot make an
    /// inflated or truncated sub-frame length panic the decoder or read
    /// out of bounds: the structural checks reject the datagram instead.
    #[test]
    fn forged_length_prefixes_never_panic(
        mix in vec((any::<u8>(), 0usize..96), 1..8),
        forged_len in any::<u16>(),
    ) {
        let frames: Vec<Frame> = mix.iter().map(|&(t, l)| frame(t, l)).collect();
        let mut d = pack_all(&frames, 2_000, 1).swap_remove(0);
        // Overwrite the first sub-frame's length prefix with an arbitrary
        // value and forge a valid checksum over the mangled datagram.
        let [lo, hi] = forged_len.to_le_bytes();
        d[HEADER_LEN] = lo;
        d[HEADER_LEN + 1] = hi;
        forge_seal(&mut d);
        // Must not panic; may decode only if the forged length happens to
        // reproduce a structurally valid batch (e.g. the original value).
        if let Some(Packet::Batch { frames: got, .. }) = packet::decode(&d) {
            prop_assert!(!got.is_empty(), "a decoded batch is never empty");
        }
    }
}
