//! Robustness suite: the unmodified engine over a misbehaving network.
//!
//! Two real [`flipc_engine::engine::Engine`]s run over [`NetTransport`]s
//! whose links are wrapped in seeded [`FaultInjector`]s. Everything is
//! deterministic: the fault schedule comes from a seed, and the
//! retransmit timers from a [`ManualClock`] advanced by the test loop —
//! a failure here replays identically every run.
//!
//! The property under test is the engine contract itself: despite
//! injected loss, duplication, and reordering, the application observes
//! ordered, loss-free delivery, and the reliability layer's memory stays
//! bounded (the retransmit ring is capped by the window, the timeout by
//! the backoff cap).

use std::sync::Arc;

use flipc_core::api::Flipc;
use flipc_core::commbuf::CommBuffer;
use flipc_core::endpoint::{EndpointType, FlipcNodeId, Importance};
use flipc_core::layout::Geometry;
use flipc_core::wait::WaitRegistry;
use flipc_engine::engine::{Engine, EngineConfig};
use flipc_net::{
    FaultConfig, FaultInjector, ManualClock, MemHub, NetConfig, NetStats, NetTransport,
};

struct NetWorld {
    apps: Vec<Flipc>,
    engines: Vec<Engine>,
    stats: Vec<Arc<NetStats>>,
    clock: ManualClock,
}

/// Two engine-driven nodes joined by fault-injected in-memory links.
/// Each direction gets its own deterministic fault stream (seed, seed+1).
fn world(cfg: NetConfig, fault: FaultConfig, seed: u64) -> NetWorld {
    let hub = MemHub::new(2, 4096);
    let clock = ManualClock::new();
    let mut apps = Vec::new();
    let mut engines = Vec::new();
    let mut stats = Vec::new();
    for i in 0..2u16 {
        let node = FlipcNodeId(i);
        let other = FlipcNodeId(1 - i);
        let link = FaultInjector::new(hub.link(node), fault, seed + i as u64);
        let transport = NetTransport::new(node, &[other], link, clock.clone(), cfg);
        stats.push(transport.stats());
        let cb = Arc::new(CommBuffer::new(Geometry::small()).unwrap());
        let registry = WaitRegistry::new();
        apps.push(Flipc::attach(cb.clone(), node, registry.clone()));
        engines.push(Engine::new(
            cb,
            Box::new(transport),
            registry,
            EngineConfig::default(),
        ));
    }
    NetWorld {
        apps,
        engines,
        stats,
        clock,
    }
}

impl NetWorld {
    /// One deterministic step: advance time, run both event loops.
    fn pump(&mut self, ticks: u64) {
        self.clock.advance(ticks);
        for e in &mut self.engines {
            e.iterate();
        }
    }
}

const MESSAGES: usize = 120;

/// Drives `MESSAGES` messages node 0 → node 1 through the full
/// application API while the network misbehaves, and asserts the
/// application never sees loss, reordering, or duplication.
fn ordered_loss_free_delivery(fault: FaultConfig, seed: u64) -> NetWorld {
    let cfg = NetConfig {
        window: 8,
        reorder_window: 32,
        rto: 2_000,
        rto_max: 16_000,
        ..NetConfig::default()
    };
    let mut w = world(cfg, fault, seed);
    let tx = w.apps[0]
        .endpoint_allocate(EndpointType::Send, Importance::Normal)
        .unwrap();
    let rx = w.apps[1]
        .endpoint_allocate(EndpointType::Receive, Importance::Normal)
        .unwrap();
    let dest = w.apps[1].address(&rx);

    let mut sent = 0usize;
    let mut outstanding = 0usize; // sent, not yet reclaimed
    let mut provided = 0usize; // receive buffers queued, not yet consumed
    let mut received: Vec<u8> = Vec::new();
    let mut idle_guard = 0u32;
    while received.len() < MESSAGES {
        // Receiver: keep the ring topped up so the engine never discards
        // (more provided buffers than frames that can arrive in one pump).
        while provided < 12 {
            let Ok(b) = w.apps[1].buffer_allocate() else {
                break;
            };
            w.apps[1]
                .provide_receive_buffer(&rx, b)
                .map_err(|r| r.error)
                .unwrap();
            provided += 1;
        }
        // Sender: bounded pipelining through the optimistic send path.
        while sent < MESSAGES && outstanding < 8 {
            let mut t = w.apps[0].buffer_allocate().unwrap();
            w.apps[0].payload_mut(&mut t)[0] = sent as u8;
            match w.apps[0].send(&tx, t, dest) {
                Ok(_) => {
                    sent += 1;
                    outstanding += 1;
                }
                Err(r) => {
                    // Send ring momentarily full: put the buffer back and
                    // let the engine drain.
                    w.apps[0].buffer_free(r.token);
                    break;
                }
            }
        }
        w.pump(500);
        while let Ok(Some(b)) = w.apps[0].reclaim_send(&tx) {
            w.apps[0].buffer_free(b);
            outstanding -= 1;
        }
        while let Ok(Some(got)) = w.apps[1].recv(&rx) {
            received.push(w.apps[1].payload(&got.token)[0]);
            w.apps[1].buffer_free(got.token);
            provided -= 1;
        }
        idle_guard += 1;
        assert!(
            idle_guard < 100_000,
            "delivery stalled: {}/{MESSAGES} after {idle_guard} pumps",
            received.len()
        );
    }

    let expect: Vec<u8> = (0..MESSAGES).map(|i| i as u8).collect();
    assert_eq!(received, expect, "application-visible order must be exact");
    assert_eq!(
        w.apps[1].drops_reset(&rx).unwrap(),
        0,
        "no application-visible loss"
    );
    // Let the final acks drain, then the rings must be empty.
    for _ in 0..50 {
        w.pump(2_000);
    }
    let s0 = w.stats[0].snapshot();
    assert_eq!(s0.paths[0].in_flight, 0, "all frames acknowledged");
    let s1 = w.stats[1].snapshot();
    assert_eq!(
        s1.paths[0].delivered as usize, MESSAGES,
        "exactly one in-order delivery per message"
    );
    w
}

#[test]
fn one_percent_loss_delivers_everything_in_order() {
    ordered_loss_free_delivery(
        FaultConfig {
            loss: 0.01,
            duplicate: 0.01,
            reorder: 0.02,
            delay_ops: 3,
            ..FaultConfig::default()
        },
        0xF11C_0001,
    );
}

#[test]
fn ten_percent_loss_delivers_everything_in_order() {
    let w = ordered_loss_free_delivery(
        FaultConfig {
            loss: 0.10,
            duplicate: 0.05,
            reorder: 0.10,
            delay_ops: 4,
            ..FaultConfig::default()
        },
        0xF11C_0010,
    );
    let s = w.stats[0].snapshot();
    assert!(
        s.paths[0].retransmitted > 0,
        "10% loss must exercise the recovery path"
    );
}

#[test]
fn heavy_duplication_is_invisible_to_the_application() {
    let w = ordered_loss_free_delivery(
        FaultConfig {
            duplicate: 0.4,
            ..FaultConfig::default()
        },
        0xF11C_0D0B,
    );
    let s = w.stats[1].snapshot();
    assert!(
        s.paths[0].dup_dropped > 0,
        "duplicates must be absorbed by the dedup window, not delivered"
    );
}

/// A dead peer: the retransmit ring must stay bounded at the window, the
/// backoff must cap the retransmit rate, and the engine loop must stay
/// live (optimistic sends complete; excess queues; nothing blocks).
#[test]
fn dead_peer_keeps_memory_and_retransmit_rate_bounded() {
    let cfg = NetConfig {
        window: 8,
        rto: 1_000,
        rto_max: 4_000,
        // This test pins the pre-lifecycle property: even with dead
        // declaration disabled, the retransmit machinery alone keeps
        // memory and datagram rate bounded. The chaos suite covers the
        // lifecycle path (declare, fail, resync) separately.
        dead_strikes: u32::MAX,
        heartbeat_interval: 0,
        ..NetConfig::default()
    };
    // 100% loss in both directions: node 1 is unreachable.
    let mut w = world(cfg, FaultConfig::lossy(1.0), 0xDEAD);
    let tx = w.apps[0]
        .endpoint_allocate(EndpointType::Send, Importance::Normal)
        .unwrap();
    let rx = w.apps[1]
        .endpoint_allocate(EndpointType::Receive, Importance::Normal)
        .unwrap();
    let dest = w.apps[1].address(&rx);

    let mut queued = 0;
    for i in 0..14u8 {
        let mut t = w.apps[0].buffer_allocate().unwrap();
        w.apps[0].payload_mut(&mut t)[0] = i;
        if w.apps[0].send(&tx, t, dest).is_ok() {
            queued += 1;
        }
        w.pump(100);
    }
    assert!(queued >= 14, "optimistic send path never blocks the app");

    // A long silent stretch with the timer firing many times.
    let total_ticks: u64 = 200 * 1_000;
    for _ in 0..200 {
        w.pump(1_000);
        let s = w.stats[0].snapshot();
        assert!(
            s.paths[0].in_flight <= 8,
            "retransmit ring exceeded the window: {}",
            s.paths[0].in_flight
        );
    }
    let s = w.stats[0].snapshot();
    // With the timeout capped at 4k ticks, a 200k-tick stretch can fire at
    // most ~(ramp + total/cap) rounds of at most `window` frames each.
    let max_rounds = 3 + total_ticks / cfg.rto_max;
    assert!(
        (s.paths[0].retransmitted as u64) <= max_rounds * 8,
        "backoff failed to cap the retransmit rate: {} retransmissions",
        s.paths[0].retransmitted
    );
    assert!(
        s.paths[0].retransmitted >= 8,
        "the timer must actually fire for a dead peer"
    );
    // The engine is still live for other work: its iterate() keeps
    // returning without hanging (implicitly proven by reaching this line)
    // and the application can still reclaim what the transport accepted.
    let mut reclaimed = 0;
    while let Ok(Some(b)) = w.apps[0].reclaim_send(&tx) {
        w.apps[0].buffer_free(b);
        reclaimed += 1;
    }
    assert!(reclaimed >= 8, "optimistically accepted sends complete");
}
