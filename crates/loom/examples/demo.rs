//! Surface demo: drive the model checker through its public export.
use flipc_loom::sync::atomic::{AtomicU32, Ordering};
use flipc_loom::{model, thread};
use std::sync::Arc;

fn main() {
    // 1. A correct single-writer handoff: explored exhaustively, passes.
    model(|| {
        let flag = Arc::new(AtomicU32::new(0));
        let data = Arc::new(AtomicU32::new(0));
        let (f2, d2) = (flag.clone(), data.clone());
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
    println!("correct model: PASSED (all interleavings explored)");

    // 2. A lost-update bug (two writers doing load;store on one word):
    //    the checker must find a failing schedule and report it.
    let result = std::panic::catch_unwind(|| {
        model(|| {
            let c = Arc::new(AtomicU32::new(0));
            let c2 = c.clone();
            let t = thread::spawn(move || {
                let v = c2.load(Ordering::Relaxed);
                c2.store(v + 1, Ordering::Relaxed);
            });
            let v = c.load(Ordering::Relaxed);
            c.store(v + 1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::Relaxed), 2, "lost update");
        });
    });
    match result {
        Ok(()) => println!("BUG: lost update was NOT detected"),
        Err(p) => {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "?".into());
            println!("buggy model: DETECTED -> {msg}");
        }
    }

    // 3. A spinning model: DFS cannot enumerate an unbounded busy-wait,
    //    so the checker must reject it with a diagnostic, not hang.
    let result = std::panic::catch_unwind(|| {
        model(|| {
            let flag = Arc::new(AtomicU32::new(0));
            while flag.load(Ordering::Relaxed) == 0 {
                // never set: an unbounded spin
            }
        });
    });
    match result {
        Ok(()) => println!("BUG: spin was NOT rejected"),
        Err(p) => {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "?".into());
            let first = msg.lines().next().unwrap_or("");
            println!("spinning model: REJECTED -> {first}");
        }
    }
}
