//! The checker checking itself: exploration must find classic protocol
//! bugs and must pass correct protocols exhaustively.
//!
//! These run in the normal test suite (the checker's own types are always
//! instrumented); only the *models of flipc production code* need
//! `--cfg loom`.

use std::sync::Arc;

use flipc_loom::sync::atomic::{AtomicU32, Ordering};

/// A correct two-thread handoff passes every schedule.
#[test]
fn passes_correct_message_passing() {
    flipc_loom::model(|| {
        let data = Arc::new(AtomicU32::new(0));
        let flag = Arc::new(AtomicU32::new(0));
        let (data2, flag2) = (data.clone(), flag.clone());
        let t = flipc_loom::thread::spawn(move || {
            data2.store(42, Ordering::Relaxed);
            flag2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "flag visible before data");
        }
        t.join().unwrap();
        assert_eq!(data.load(Ordering::Relaxed), 42);
    });
}

/// The classic lost update: two threads doing non-atomic load-then-store
/// increments. Some schedule loses one — the checker must find it.
#[test]
fn finds_lost_update() {
    let result = std::panic::catch_unwind(|| {
        flipc_loom::model(|| {
            let x = Arc::new(AtomicU32::new(0));
            let x2 = x.clone();
            let t = flipc_loom::thread::spawn(move || {
                let v = x2.load(Ordering::Relaxed);
                x2.store(v + 1, Ordering::Relaxed);
            });
            let v = x.load(Ordering::Relaxed);
            x.store(v + 1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(x.load(Ordering::Relaxed), 2);
        });
    });
    let err = result.expect_err("checker missed the lost-update interleaving");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains(flipc_loom::trace_header()),
        "failure should carry the schedule trace, got: {msg}"
    );
}

/// A single-writer location needs no read-modify-write: the same
/// load-then-store increment is correct when only one thread writes —
/// FLIPC's core design rule, verified exhaustively.
#[test]
fn passes_single_writer_increment() {
    flipc_loom::model(|| {
        let x = Arc::new(AtomicU32::new(0));
        let x2 = x.clone();
        let t = flipc_loom::thread::spawn(move || {
            for _ in 0..3 {
                let v = x2.load(Ordering::Relaxed);
                x2.store(v + 1, Ordering::Release);
            }
        });
        // Reader: monotonic observations, never above 3.
        let a = x.load(Ordering::Acquire);
        let b = x.load(Ordering::Acquire);
        assert!(a <= b && b <= 3, "single-writer counter ran backwards");
        t.join().unwrap();
        assert_eq!(x.load(Ordering::Relaxed), 3);
    });
}

/// Preemption bound 0 means cooperative scheduling only: even the buggy
/// non-atomic increment passes, because neither thread is ever preempted
/// mid-increment. Verifies the bound actually prunes schedules.
#[test]
fn preemption_bound_zero_is_cooperative() {
    flipc_loom::model::Builder::new()
        .preemption_bound(Some(0))
        .check(|| {
            let x = Arc::new(AtomicU32::new(0));
            let x2 = x.clone();
            let t = flipc_loom::thread::spawn(move || {
                let v = x2.load(Ordering::Relaxed);
                x2.store(v + 1, Ordering::Relaxed);
            });
            let v = x.load(Ordering::Relaxed);
            x.store(v + 1, Ordering::Relaxed);
            t.join().unwrap();
            // With zero preemptions each increment runs to completion from
            // wherever it starts... except the spawner already ran its load
            // before spawning could reorder — it cannot: spawn precedes the
            // main thread's accesses here, and each thread then runs
            // uninterrupted, so no update is lost.
            assert_eq!(x.load(Ordering::Relaxed), 2);
        });
}

/// Deadlock (a thread joining itself... impossible; instead: two threads
/// joining each other is unrepresentable with this API, so exercise the
/// detector with a thread that blocks forever on a join of a thread that
/// blocks on the main thread's progress) — simplest representable case:
/// main joins a thread that never gets scheduled progress because it
/// joins a thread that already needs main... Not constructible; instead
/// verify the step-cap abort on a genuinely spinning model.
#[test]
fn rejects_spinning_models() {
    let result = std::panic::catch_unwind(|| {
        flipc_loom::model(|| {
            let x = Arc::new(AtomicU32::new(0));
            let x2 = x.clone();
            let t = flipc_loom::thread::spawn(move || {
                x2.store(1, Ordering::Release);
            });
            // Unbounded spin: must be rejected, not explored forever.
            while x.load(Ordering::Acquire) == 0 {}
            t.join().unwrap();
        });
    });
    assert!(result.is_err(), "spinning model should be rejected");
}
