//! Controlled model threads.
//!
//! [`spawn`] registers the closure with the active scheduler and runs it on
//! a real OS thread that only makes progress when the scheduler hands it
//! the token. Must be called from inside [`crate::model`].

use std::sync::{Arc, Mutex};

use crate::rt;

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    os: std::thread::JoinHandle<()>,
    result: Arc<Mutex<Option<T>>>,
    tid: usize,
}

/// Spawns a model thread running `f`.
///
/// # Panics
///
/// Panics if called outside a [`crate::model`] execution.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let sched = rt::with_ctx(|ctx| {
        let (sched, _tid) = ctx.expect("flipc_loom::thread::spawn outside a model");
        sched.clone()
    });
    let tid = rt::register_thread(&sched);
    let result = Arc::new(Mutex::new(None));
    let slot = result.clone();
    let sched2 = sched.clone();
    let os = std::thread::spawn(move || {
        rt::run_as(sched2, tid, move || {
            let value = f();
            *slot.lock().expect("model result slot") = Some(value);
        });
    });
    // The spawn itself is a scheduling point for the spawner: the new
    // thread may run first.
    rt::yield_point();
    JoinHandle { os, result, tid }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its value.
    ///
    /// Returns `Err` if the thread panicked (the model execution is
    /// already marked failed by then; the error lets `unwrap()` read
    /// naturally in models).
    pub fn join(self) -> std::thread::Result<T> {
        rt::with_ctx(|ctx| {
            if let Some((sched, tid)) = ctx {
                sched.join_wait(tid, self.tid);
            }
        });
        self.os.join()?;
        match self.result.lock().expect("model result slot").take() {
            Some(value) => Ok(value),
            None => Err(Box::new("model thread panicked before producing a value")),
        }
    }
}

/// Yields the current model thread to the scheduler.
pub fn yield_now() {
    rt::yield_point();
}
