//! The schedule-exploration runtime: token-passing serialization of model
//! threads plus DFS over scheduling choice points.
//!
//! One OS thread is spawned per model thread per execution, but exactly one
//! runs at a time: every instrumented access calls [`yield_point`], which
//! hands control to the scheduler. The scheduler either replays a recorded
//! decision prefix (DFS backtracking) or takes the first untried branch.
//! Candidate lists put the currently running thread first, so choice index
//! 0 is always "no context switch" and any other index consumes one unit of
//! the preemption budget.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex};

/// Per-execution cap on scheduling points; exceeding it means a model is
/// spinning (e.g. a busy-wait loop), which DFS cannot enumerate.
const MAX_STEPS: usize = 1_000_000;

/// Panic payload used to unwind a model thread out of the model body once
/// the execution has aborted (model panic, deadlock, or step-cap hit).
/// Without it, an aborted thread spinning on a condition no other thread
/// will ever satisfy would run forever with the scheduler gates open.
struct AbortUnwind;

fn unwind_aborted() -> ! {
    std::panic::panic_any(AbortUnwind);
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Runnable,
    Blocked,
    Finished,
}

struct SchedState {
    current: usize,
    threads: Vec<TState>,
    /// Per-target list of threads blocked in `join` on it.
    joiners: Vec<Vec<usize>>,
    /// Replayed decision prefix (branch points only).
    prefix: Vec<usize>,
    cursor: usize,
    /// (chosen index, candidate count) per branch point this execution.
    trace: Vec<(usize, usize)>,
    preemptions_left: Option<usize>,
    steps: usize,
    live: usize,
    aborted: bool,
    panic_msg: Option<String>,
}

/// The per-execution scheduler.
pub(crate) struct Sched {
    state: Mutex<SchedState>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Sched>, usize)>> = const { RefCell::new(None) };
}

/// Runs `f` with the scheduler context of `(sched, tid)` installed,
/// capturing panics into the shared state.
pub(crate) fn run_as(sched: Arc<Sched>, tid: usize, f: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some((sched.clone(), tid)));
    sched.wait_for_turn(tid);
    if !sched.is_aborted() {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        if let Err(payload) = outcome {
            // An `AbortUnwind` is the runtime tearing this thread down
            // after some other failure — not a model panic of its own.
            if !payload.is::<AbortUnwind>() {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "model thread panicked".to_string());
                sched.abort(format!("thread {tid} panicked: {msg}"));
            }
        }
    }
    sched.finish(tid);
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Calls `f` with this thread's scheduler context, if inside a model.
pub(crate) fn with_ctx<R>(f: impl FnOnce(Option<(&Arc<Sched>, usize)>) -> R) -> R {
    CTX.with(|c| {
        let borrow = c.borrow();
        f(borrow.as_ref().map(|(s, t)| (s, *t)))
    })
}

/// The scheduling point every instrumented access passes through.
pub(crate) fn yield_point() {
    with_ctx(|ctx| {
        if let Some((sched, tid)) = ctx {
            sched.yield_now(tid);
        }
    });
}

/// Registers a new model thread; returns its tid. The spawner keeps
/// running (spawn itself is a scheduling point via the caller).
pub(crate) fn register_thread(sched: &Arc<Sched>) -> usize {
    let mut st = sched.state.lock().expect("scheduler state");
    let tid = st.threads.len();
    st.threads.push(TState::Runnable);
    st.joiners.push(Vec::new());
    st.live += 1;
    tid
}

impl Sched {
    pub(crate) fn new(prefix: Vec<usize>, preemption_bound: Option<usize>) -> Sched {
        Sched {
            state: Mutex::new(SchedState {
                current: 0,
                threads: vec![TState::Runnable],
                joiners: vec![Vec::new()],
                prefix,
                cursor: 0,
                trace: Vec::new(),
                preemptions_left: preemption_bound,
                steps: 0,
                live: 1,
                aborted: false,
                panic_msg: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Picks the next thread to run. Caller holds the state lock.
    fn schedule_next(&self, st: &mut SchedState) {
        if st.aborted {
            return;
        }
        st.steps += 1;
        if st.steps > MAX_STEPS {
            st.aborted = true;
            st.panic_msg = Some(format!(
                "model exceeded {MAX_STEPS} scheduling points in one execution; \
                 models must not spin (use wait-free ops / try_lock, not blocking loops)"
            ));
            self.cv.notify_all();
            return;
        }
        let mut candidates: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t] == TState::Runnable)
            .collect();
        if candidates.is_empty() {
            if st.live > 0 {
                st.aborted = true;
                st.panic_msg = Some("deadlock: live threads but none runnable".to_string());
            }
            self.cv.notify_all();
            return;
        }
        // Current thread first: index 0 always means "keep running".
        if let Some(pos) = candidates.iter().position(|&t| t == st.current) {
            candidates.rotate_left(pos);
            // A single rotation puts current first while keeping the rest
            // in a deterministic order.
            if pos != 0 {
                candidates = std::iter::once(st.current)
                    .chain(
                        (0..st.threads.len())
                            .filter(|&t| t != st.current && st.threads[t] == TState::Runnable),
                    )
                    .collect();
            }
            // Out of preemption budget: the only candidate is current.
            if st.preemptions_left == Some(0) {
                candidates.truncate(1);
            }
        }
        let choice = if candidates.len() > 1 {
            let c = if st.cursor < st.prefix.len() {
                st.prefix[st.cursor]
            } else {
                0
            };
            assert!(c < candidates.len(), "schedule replay diverged");
            st.cursor += 1;
            st.trace.push((c, candidates.len()));
            c
        } else {
            0
        };
        let next = candidates[choice];
        if next != st.current && st.threads[st.current] == TState::Runnable {
            if let Some(left) = st.preemptions_left.as_mut() {
                *left -= 1;
            }
        }
        st.current = next;
        self.cv.notify_all();
    }

    fn wait_for_turn(&self, tid: usize) {
        let mut st = self.state.lock().expect("scheduler state");
        while !(st.aborted || (st.current == tid && st.threads[tid] == TState::Runnable)) {
            st = self.cv.wait(st).expect("scheduler wait");
        }
    }

    fn is_aborted(&self) -> bool {
        self.state.lock().expect("scheduler state").aborted
    }

    /// The running thread offers a scheduling point. Unwinds (never
    /// returning to the model body) once the execution has aborted, so
    /// that even a thread spinning on a condition nothing will satisfy
    /// is torn down.
    pub(crate) fn yield_now(&self, tid: usize) {
        {
            let mut st = self.state.lock().expect("scheduler state");
            if st.aborted {
                drop(st);
                unwind_aborted();
            }
            self.schedule_next(&mut st);
        }
        self.wait_for_turn(tid);
        if self.is_aborted() {
            unwind_aborted();
        }
    }

    /// Blocks `tid` until `target` finishes (the scheduling part of join).
    pub(crate) fn join_wait(&self, tid: usize, target: usize) {
        {
            let mut st = self.state.lock().expect("scheduler state");
            if st.aborted {
                drop(st);
                unwind_aborted();
            }
            if st.threads[target] != TState::Finished {
                st.threads[tid] = TState::Blocked;
                st.joiners[target].push(tid);
            }
            self.schedule_next(&mut st);
        }
        self.wait_for_turn(tid);
        if self.is_aborted() {
            unwind_aborted();
        }
    }

    /// Marks `tid` finished, unblocking its joiners.
    pub(crate) fn finish(&self, tid: usize) {
        let mut st = self.state.lock().expect("scheduler state");
        st.threads[tid] = TState::Finished;
        st.live -= 1;
        let joiners = std::mem::take(&mut st.joiners[tid]);
        for j in joiners {
            st.threads[j] = TState::Runnable;
        }
        if st.live == 0 {
            self.cv.notify_all();
        } else {
            self.schedule_next(&mut st);
        }
    }

    /// Aborts the execution (panic or detected deadlock): records the
    /// message and releases every gate so remaining threads drain freely.
    pub(crate) fn abort(&self, msg: String) {
        let mut st = self.state.lock().expect("scheduler state");
        if st.panic_msg.is_none() {
            st.panic_msg = Some(msg);
        }
        st.aborted = true;
        self.cv.notify_all();
    }

    /// Controller side: waits for every model thread to finish, returning
    /// the branch trace of the execution.
    pub(crate) fn wait_done(&self) -> Vec<(usize, usize)> {
        let mut st = self.state.lock().expect("scheduler state");
        while st.live > 0 {
            st = self.cv.wait(st).expect("scheduler wait");
        }
        st.trace.clone()
    }

    /// Controller side: re-raises a model panic with schedule context.
    pub(crate) fn reraise_panic(&self, execution: u64) {
        let st = self.state.lock().expect("scheduler state");
        if let Some(msg) = &st.panic_msg {
            let choices: Vec<usize> = st.trace.iter().map(|(c, _)| *c).collect();
            panic!(
                "{} {execution}, schedule {choices:?}: {msg}",
                trace_header()
            );
        }
    }
}

/// Prefix of every failure report (lets tests grep for model failures).
pub fn trace_header() -> &'static str {
    "flipc-loom: failing execution"
}

/// Computes the next DFS prefix from a completed execution's trace, or
/// `None` when the space is exhausted.
pub(crate) fn next_prefix(trace: &[(usize, usize)]) -> Option<Vec<usize>> {
    for k in (0..trace.len()).rev() {
        let (chosen, n) = trace[k];
        if chosen + 1 < n {
            let mut next: Vec<usize> = trace[..k].iter().map(|(c, _)| *c).collect();
            next.push(chosen + 1);
            return Some(next);
        }
    }
    None
}
