//! A bounded exhaustive interleaving checker for FLIPC's wait-free core.
//!
//! This crate is an offline work-alike of the `loom` model checker (the
//! build environment has no crates.io access): it re-runs a closure under
//! every schedule of its threads' shared-memory accesses, within a
//! configurable preemption bound, and fails on the first schedule whose
//! assertions fail. The `flipc-core` atomics facade
//! (`flipc_core::sync`) switches to these instrumented types under
//! `--cfg loom`, so the *production* implementations of the three-pointer
//! queue, the two-location counter, the TAS lock, and the SPSC ring are
//! what gets explored — not hand-copied models.
//!
//! # Scope, honestly stated
//!
//! * Every scheduling point is an atomic access (plus spawn/join/yield).
//!   Exploration is exhaustive over **sequentially consistent**
//!   interleavings of those points up to the preemption bound; unlike real
//!   loom it does not model C++11 weak-memory reorderings or check
//!   `UnsafeCell` access races. For the single-writer protocols here —
//!   whose correctness argument is about *which writer wrote which
//!   location when*, not about fence placement — SC interleaving
//!   exploration is the property the paper's design rule needs.
//! * Schedules are explored by depth-first search over choice points,
//!   replaying a recorded decision prefix each execution. With
//!   `preemption_bound: None` the search is fully exhaustive; the default
//!   bound of 3 context switches keeps models in the
//!   thousands-of-executions range (and empirically finds the classic
//!   protocol bugs, which need 1–2 preemptions).
//!
//! # Example
//!
//! ```
//! use flipc_loom::sync::atomic::{AtomicU32, Ordering};
//! use std::sync::Arc;
//!
//! flipc_loom::model(|| {
//!     let x = Arc::new(AtomicU32::new(0));
//!     let x2 = x.clone();
//!     let t = flipc_loom::thread::spawn(move || {
//!         x2.store(1, Ordering::Release);
//!     });
//!     let _seen = x.load(Ordering::Acquire);
//!     t.join().unwrap();
//!     assert_eq!(x.load(Ordering::Relaxed), 1);
//! });
//! ```

use std::sync::Arc;

mod rt;

pub mod sync;
pub mod thread;

pub use rt::trace_header;

/// Explores `f` under the default bounds (see [`model::Builder`]).
///
/// # Panics
///
/// Panics if any explored schedule panics (assertion failure in the model),
/// if a schedule deadlocks, or if exploration exceeds the execution cap.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model::Builder::new().check(f)
}

/// Exploration configuration ([`Builder`]) — module named like loom's.
pub mod model {
    /// Configures schedule exploration.
    #[derive(Clone, Debug)]
    pub struct Builder {
        /// Maximum context switches away from a still-runnable thread per
        /// execution. `None` explores every interleaving.
        pub preemption_bound: Option<usize>,
        /// Hard cap on explored executions; exceeding it fails the test
        /// (a model that large should be made smaller, not silently
        /// under-explored).
        pub max_executions: u64,
    }

    impl Default for Builder {
        fn default() -> Builder {
            Builder {
                preemption_bound: Some(3),
                max_executions: 500_000,
            }
        }
    }

    impl Builder {
        /// Default configuration.
        pub fn new() -> Builder {
            Builder::default()
        }

        /// Sets the preemption bound.
        pub fn preemption_bound(mut self, bound: Option<usize>) -> Builder {
            self.preemption_bound = bound;
            self
        }

        /// Explores `f` under this configuration.
        pub fn check<F>(&self, f: F)
        where
            F: Fn() + Send + Sync + 'static,
        {
            super::check_with(self.clone(), f)
        }
    }
}

fn check_with<F>(builder: model::Builder, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions: u64 = 0;
    loop {
        executions += 1;
        assert!(
            executions <= builder.max_executions,
            "model exceeded {} executions; shrink the model or bound preemptions",
            builder.max_executions
        );
        let sched = Arc::new(rt::Sched::new(prefix.clone(), builder.preemption_bound));
        let sched2 = sched.clone();
        let f2 = f.clone();
        // Thread 0 runs the model closure under the scheduler.
        let main = std::thread::spawn(move || {
            rt::run_as(sched2, 0, move || f2());
        });
        let trace = sched.wait_done();
        main.join().expect("model main thread");
        sched.reraise_panic(executions);
        match rt::next_prefix(&trace) {
            Some(next) => prefix = next,
            None => break,
        }
    }
    if std::env::var_os("LOOM_LOG").is_some() {
        eprintln!("flipc-loom: explored {executions} executions");
    }
}
