//! Instrumented `std::sync` look-alikes.
//!
//! Each atomic operation is a scheduling point: the runtime may hand the
//! token to another model thread immediately before the access, so every
//! interleaving of accesses (within the preemption bound) is explored.
//! Outside a model (no scheduler context on the thread) the instrumented
//! types behave exactly like the `std` ones.

/// Instrumented atomic types mirroring `std::sync::atomic`.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::rt::yield_point;

    macro_rules! instrumented_atomic {
        ($(#[$meta:meta])* $name:ident, $std:ident, $prim:ty) => {
            $(#[$meta])*
            ///
            /// `#[repr(transparent)]` over the `std` atomic so raw shared
            /// memory can be reinterpreted as this type exactly like the
            /// uninstrumented one.
            #[repr(transparent)]
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub const fn new(v: $prim) -> $name {
                    $name { inner: std::sync::atomic::$std::new(v) }
                }

                /// Atomic load (scheduling point).
                pub fn load(&self, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.load(order)
                }

                /// Atomic store (scheduling point).
                pub fn store(&self, v: $prim, order: Ordering) {
                    yield_point();
                    self.inner.store(v, order);
                }

                /// Atomic swap (scheduling point).
                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.swap(v, order)
                }

                /// Atomic compare-exchange (scheduling point).
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    yield_point();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Atomic weak compare-exchange (scheduling point).
                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    yield_point();
                    // Deterministic exploration: the weak form never
                    // spuriously fails here.
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Atomic add, returning the previous value (scheduling point).
                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.fetch_add(v, order)
                }

                /// Atomic subtract, returning the previous value (scheduling point).
                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.fetch_sub(v, order)
                }

                /// Atomic bitwise OR, returning the previous value (scheduling point).
                pub fn fetch_or(&self, v: $prim, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.fetch_or(v, order)
                }

                /// Atomic bitwise AND, returning the previous value (scheduling point).
                pub fn fetch_and(&self, v: $prim, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.fetch_and(v, order)
                }

                /// Returns a mutable reference to the value (not a
                /// scheduling point: exclusive access is data-race free).
                pub fn get_mut(&mut self) -> &mut $prim {
                    self.inner.get_mut()
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }
            }

            impl From<$prim> for $name {
                fn from(v: $prim) -> $name {
                    $name::new(v)
                }
            }
        };
    }

    instrumented_atomic!(
        /// Instrumented `AtomicU32`.
        AtomicU32, AtomicU32, u32
    );
    instrumented_atomic!(
        /// Instrumented `AtomicU64`.
        AtomicU64, AtomicU64, u64
    );
    instrumented_atomic!(
        /// Instrumented `AtomicUsize`.
        AtomicUsize, AtomicUsize, usize
    );
    instrumented_atomic!(
        /// Instrumented `AtomicU8` (liveness boards, small state cells).
        AtomicU8, AtomicU8, u8
    );

    /// Instrumented `AtomicBool`.
    ///
    /// `#[repr(transparent)]` over the `std` atomic so raw shared memory
    /// can be reinterpreted as this type exactly like the uninstrumented
    /// one.
    #[repr(transparent)]
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates a new atomic with the given initial value.
        pub const fn new(v: bool) -> AtomicBool {
            AtomicBool {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// Atomic load (scheduling point).
        pub fn load(&self, order: Ordering) -> bool {
            yield_point();
            self.inner.load(order)
        }

        /// Atomic store (scheduling point).
        pub fn store(&self, v: bool, order: Ordering) {
            yield_point();
            self.inner.store(v, order);
        }

        /// Atomic swap (scheduling point).
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            yield_point();
            self.inner.swap(v, order)
        }

        /// Atomic compare-exchange (scheduling point).
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            yield_point();
            self.inner.compare_exchange(current, new, success, failure)
        }
    }

    /// Memory fence (scheduling point; ordering is already sequential
    /// in this checker, so the fence itself is a no-op).
    pub fn fence(order: Ordering) {
        yield_point();
        // An Acquire/Release/SeqCst fence between serialized steps adds
        // nothing under SC exploration, but keep the real fence so the
        // instrumented build's codegen stays honest.
        std::sync::atomic::fence(order);
    }
}

/// Yields the current model thread (a pure scheduling point).
pub fn hint_spin_loop() {
    crate::rt::yield_point();
}
