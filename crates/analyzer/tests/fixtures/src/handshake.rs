//! Fixture: a registered handshake function with one justified and one
//! unjustified `Relaxed` — the memory-ordering rule must flag only the
//! latter.
pub struct Cell;

impl Cell {
    pub fn handshake(&self) {
        // ordering: paired with the Release store in publish()
        let _justified = self.seq.load(Ordering::Relaxed);
        let _strong = self.seq.load(Ordering::Acquire);
        let _unjustified = self.seq.load(Ordering::Relaxed);
    }
}
