//! Fixture: names `std::sync::atomic` directly — an atomics-facade
//! violation on line 3. (Fixture sources are analyzer input, never
//! compiled.)
use std::sync::atomic::{AtomicU32, Ordering};

pub fn bump(c: &AtomicU32) -> u32 {
    c.fetch_add(1, Ordering::Relaxed)
}
