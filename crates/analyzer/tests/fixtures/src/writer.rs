//! Fixture: an engine-role accessor that stores to the app-owned
//! `release` field — a single-writer violation — next to a correct store
//! to the engine-owned `process` field.
pub struct EngineSide;

impl EngineSide {
    pub fn publish(&self) {
        self.raw.release.store(1, Ordering::Release);
    }

    pub fn advance(&self) {
        self.raw.process.store(2, Ordering::Release);
    }
}
