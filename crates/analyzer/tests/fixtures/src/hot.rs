//! Fixture: a registered hot path that allocates two calls deep, plus a
//! second root whose violation is covered by the fixture allowlist.
pub struct Pump;

impl Pump {
    pub fn drain(&self) {
        helper();
    }

    pub fn flush(&self) {
        self.queue.pop().unwrap();
    }
}

fn helper() {
    let scratch = vec![0u8; 64];
    consume(&scratch);
}
