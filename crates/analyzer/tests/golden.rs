//! Golden test: the analyzer must detect one seeded violation per rule
//! family in `tests/fixtures/` and emit byte-identical JSON.

use std::path::Path;

use flipc_analyzer::config::{Allowlist, Config};

fn fixture_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn run_fixture() -> flipc_analyzer::report::Report {
    let root = fixture_root();
    let cfg = Config::load(&root.join("analyzer.toml")).expect("fixture config parses");
    let allow =
        Allowlist::load(&root.join("analyzer-allowlist.toml")).expect("fixture allowlist parses");
    flipc_analyzer::analyze(&root, &cfg, &allow).expect("fixture scan succeeds")
}

#[test]
fn detects_one_violation_per_rule_family() {
    let report = run_fixture();
    let find = |rule: &str| -> Vec<(&str, u32)> {
        report
            .findings
            .iter()
            .filter(|f| f.rule == rule && !f.allowlisted)
            .map(|f| (f.path.as_str(), f.line))
            .collect()
    };
    assert_eq!(find("atomics-facade"), vec![("src/facade.rs", 4)]);
    assert_eq!(find("memory-ordering"), vec![("src/handshake.rs", 11)]);
    assert_eq!(find("hot-path"), vec![("src/hot.rs", 6)]);
    assert_eq!(find("single-writer"), vec![("src/writer.rs", 8)]);
    // The justified Relaxed and the correct-role store must NOT appear.
    assert!(!report
        .findings
        .iter()
        .any(|f| f.line == 9 && f.path == "src/handshake.rs"));
    assert!(!report
        .findings
        .iter()
        .any(|f| f.line == 12 && f.path == "src/writer.rs"));
    // The allowlisted finding is present but marked.
    let allowed: Vec<_> = report.findings.iter().filter(|f| f.allowlisted).collect();
    assert_eq!(allowed.len(), 1);
    assert_eq!(allowed[0].symbol, "Pump::flush");
    assert!(report.stale_allows.is_empty());
    assert!(!report.clean(), "fixture must gate red");
}

#[test]
fn json_report_matches_golden() {
    let report = run_fixture();
    let mut actual = report.to_json().render_pretty();
    actual.push('\n');
    let golden_path = fixture_root().join("golden_report.json");
    let golden = std::fs::read_to_string(&golden_path).expect("golden report exists");
    if actual != golden {
        let actual_path = fixture_root().join("golden_report.actual.json");
        std::fs::write(&actual_path, &actual).expect("write actual");
        panic!(
            "analyzer JSON diverged from the golden report.\n  golden: {}\n  actual: {}\n\
             If the change is intentional (schema bump or rule change), review the \
             diff and replace the golden file.",
            golden_path.display(),
            actual_path.display()
        );
    }
}
