//! Findings, allowlist application, and the schema-versioned report.

use std::collections::BTreeMap;

use flipc_obs::json::Value;

use crate::config::Allowlist;

/// Report schema identifier. Bump on any shape change; the golden test
/// pins it.
pub const SCHEMA: &str = "flipc-analyzer-report/v1";

/// One rule violation at a source location.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule family id: `atomics-facade`, `memory-ordering`, `hot-path`,
    /// or `single-writer`.
    pub rule: &'static str,
    /// Root-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The function or item the finding is anchored to (`-` when the
    /// location is outside any function).
    pub symbol: String,
    /// Human-readable description, including the transitive call chain
    /// for hot-path findings.
    pub message: String,
    /// Set by allowlist application.
    pub allowlisted: bool,
    /// The allowlist entry's justification, when allowlisted.
    pub justification: Option<String>,
}

impl Finding {
    /// Creates an un-allowlisted finding.
    pub fn new(
        rule: &'static str,
        path: impl Into<String>,
        line: u32,
        symbol: impl Into<String>,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line,
            symbol: symbol.into(),
            message: message.into(),
            allowlisted: false,
            justification: None,
        }
    }
}

/// The full analysis result.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, allowlisted or not, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Functions indexed for the call graph.
    pub functions_indexed: usize,
    /// Workspace-wide census of `Ordering::*` mentions (the
    /// memory-ordering audit's classification output).
    pub ordering_census: BTreeMap<String, u64>,
    /// Allowlist entries that matched no finding (stale exceptions; these
    /// fail the run so the allowlist never rots).
    pub stale_allows: Vec<String>,
}

impl Report {
    /// Findings not covered by the allowlist.
    pub fn unallowlisted(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.allowlisted)
    }

    /// True when the gate should pass: no un-allowlisted findings and no
    /// stale allowlist entries.
    pub fn clean(&self) -> bool {
        self.unallowlisted().count() == 0 && self.stale_allows.is_empty()
    }

    /// Marks findings covered by `allow` and records stale entries.
    pub fn apply_allowlist(&mut self, allow: &Allowlist) {
        let mut used = vec![false; allow.entries.len()];
        for f in &mut self.findings {
            for (i, e) in allow.entries.iter().enumerate() {
                let rule_ok = e.rule == f.rule;
                let path_ok = f.path.ends_with(&e.path);
                let symbol_ok = e.symbol.is_empty() || e.symbol == f.symbol;
                let msg_ok = e.contains.is_empty() || f.message.contains(&e.contains);
                if rule_ok && path_ok && symbol_ok && msg_ok {
                    f.allowlisted = true;
                    f.justification = Some(e.justification.clone());
                    used[i] = true;
                    break;
                }
            }
        }
        for (e, used) in allow.entries.iter().zip(used) {
            if !used {
                self.stale_allows
                    .push(format!("{} {} {}", e.rule, e.path, e.symbol));
            }
        }
    }

    /// Sorts findings into the stable report order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }

    /// Renders the schema-versioned JSON document.
    pub fn to_json(&self) -> Value {
        let findings: Vec<Value> = self
            .findings
            .iter()
            .map(|f| {
                Value::object([
                    ("rule", f.rule.into()),
                    ("path", f.path.as_str().into()),
                    ("line", u64::from(f.line).into()),
                    ("symbol", f.symbol.as_str().into()),
                    ("message", f.message.as_str().into()),
                    ("allowlisted", Value::Bool(f.allowlisted)),
                    (
                        "justification",
                        match &f.justification {
                            Some(j) => j.as_str().into(),
                            None => Value::Null,
                        },
                    ),
                ])
            })
            .collect();
        let census: Vec<(&str, Value)> = self
            .ordering_census
            .iter()
            .map(|(k, v)| (k.as_str(), (*v).into()))
            .collect();
        Value::object([
            ("schema", SCHEMA.into()),
            ("findings", Value::Array(findings)),
            (
                "summary",
                Value::object([
                    ("total", (self.findings.len() as u64).into()),
                    (
                        "allowlisted",
                        (self.findings.iter().filter(|f| f.allowlisted).count() as u64).into(),
                    ),
                    (
                        "unallowlisted",
                        (self.unallowlisted().count() as u64).into(),
                    ),
                    ("files_scanned", (self.files_scanned as u64).into()),
                    ("functions_indexed", (self.functions_indexed as u64).into()),
                    ("ordering_census", Value::object(census)),
                    (
                        "stale_allowlist_entries",
                        Value::Array(
                            self.stale_allows
                                .iter()
                                .map(|s| s.as_str().into())
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }

    /// Renders human diagnostics: one `path:line: [rule] message` per
    /// finding, allowlisted ones marked, then a one-line summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let mark = if f.allowlisted { " (allowlisted)" } else { "" };
            out.push_str(&format!(
                "{}:{}: [{}] {}: {}{}\n",
                f.path, f.line, f.rule, f.symbol, f.message, mark
            ));
            if let Some(j) = &f.justification {
                out.push_str(&format!("    justification: {j}\n"));
            }
        }
        for s in &self.stale_allows {
            out.push_str(&format!("stale allowlist entry (matches nothing): {s}\n"));
        }
        out.push_str(&format!(
            "{} finding(s), {} allowlisted, {} blocking; {} files, {} functions\n",
            self.findings.len(),
            self.findings.iter().filter(|f| f.allowlisted).count(),
            self.unallowlisted().count(),
            self.files_scanned,
            self.functions_indexed,
        ));
        out
    }
}
