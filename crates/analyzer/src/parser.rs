//! Item extraction over the token stream: functions, their enclosing
//! `impl` blocks, and the cfg-gating that decides whether a function is
//! part of the default production build.
//!
//! This is deliberately not a grammar. The analyzer needs to know *which
//! function* a token belongs to, *which type* that function is implemented
//! on, and whether the function is compiled into the production build —
//! nothing more. Everything else (expressions, types, patterns) stays an
//! undifferentiated token soup that the rules pattern-match directly.

use crate::lexer::{Lexed, Tok, TokKind};

/// Why a function is excluded from production-build analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gate {
    /// Compiled in the default production build.
    None,
    /// Behind `#[cfg(test)]` or inside a `mod tests`.
    Test,
    /// Behind `#[cfg(feature = ...)]`, `#[cfg(loom)]`, or another
    /// non-default cfg.
    Cfg,
}

/// One function found in a file.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The `impl` type it is defined on, if any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body, including the outer braces.
    /// Empty for bodyless trait declarations.
    pub body: std::ops::Range<usize>,
    /// Whether the function is compiled in the default build.
    pub gate: Gate,
}

impl FnItem {
    /// `Type::name` when implemented on a type, else just `name`.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

struct Scope {
    /// Brace depth at which this scope was opened.
    depth: u32,
    /// `impl` type name, when the scope is an impl block.
    impl_type: Option<String>,
    /// Gate inherited by items inside this scope.
    gate: Gate,
}

/// Extracts every function in the lexed file.
pub fn functions(lx: &Lexed) -> Vec<FnItem> {
    let toks = &lx.toks;
    let mut out = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth: u32 = 0;
    // Gate from the most recent outer attribute, consumed by the next
    // item keyword.
    let mut pending_gate = Gate::None;
    // Scope opening is deferred until its `{`.
    let mut opening: Option<Scope> = None;

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.text == "#" => {
                // `#[...]` outer attribute (skip inner `#![...]`).
                let (gate, next) = parse_attr(toks, i);
                if let Some(g) = gate {
                    pending_gate = merge_gate(pending_gate, g);
                }
                i = next;
                continue;
            }
            TokKind::Punct if t.text == "{" => {
                depth += 1;
                if let Some(mut s) = opening.take() {
                    s.depth = depth;
                    scopes.push(s);
                }
                // A pending statement-level attribute (`#[cfg(..)] { .. }`)
                // must not leak onto the next item.
                pending_gate = Gate::None;
                i += 1;
                continue;
            }
            TokKind::Punct if t.text == "}" => {
                if scopes.last().is_some_and(|s| s.depth == depth) {
                    scopes.pop();
                }
                depth = depth.saturating_sub(1);
                pending_gate = Gate::None;
                i += 1;
                continue;
            }
            TokKind::Punct if t.text == ";" || t.text == "," => {
                // An `impl ...;` cannot happen, but `mod x;` can: drop any
                // deferred scope that never opened. Statement- and
                // field-level attributes end here too.
                opening = None;
                pending_gate = Gate::None;
                i += 1;
                continue;
            }
            TokKind::Ident if t.text == "impl" => {
                let (ty, next) = impl_type_name(toks, i + 1);
                opening = Some(Scope {
                    depth: 0,
                    impl_type: ty,
                    gate: merge_gate(
                        inherited(&scopes),
                        std::mem::replace(&mut pending_gate, Gate::None),
                    ),
                });
                i = next;
                continue;
            }
            TokKind::Ident if t.text == "mod" => {
                let name = toks.get(i + 1).map(|t| t.text.clone()).unwrap_or_default();
                let mut gate = merge_gate(
                    inherited(&scopes),
                    std::mem::replace(&mut pending_gate, Gate::None),
                );
                if name == "tests" || name == "test" {
                    gate = merge_gate(gate, Gate::Test);
                }
                opening = Some(Scope {
                    depth: 0,
                    impl_type: None,
                    gate,
                });
                i += 2;
                continue;
            }
            TokKind::Ident if t.text == "fn" => {
                let name = match toks.get(i + 1) {
                    Some(n) if n.kind == TokKind::Ident => n.text.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let gate = merge_gate(
                    inherited(&scopes),
                    std::mem::replace(&mut pending_gate, Gate::None),
                );
                let impl_type = scopes.iter().rev().find_map(|s| s.impl_type.clone());
                let body = fn_body_range(toks, i + 2);
                out.push(FnItem {
                    name,
                    impl_type,
                    line: t.line,
                    body: body.clone(),
                    gate,
                });
                // Keep walking *into* the body so nested items are seen;
                // the body range is only metadata.
                i += 2;
                continue;
            }
            TokKind::Ident
                if matches!(
                    t.text.as_str(),
                    "struct"
                        | "enum"
                        | "trait"
                        | "use"
                        | "const"
                        | "static"
                        | "type"
                        | "macro_rules"
                ) =>
            {
                // Any other item keyword consumes the pending attribute.
                pending_gate = Gate::None;
                i += 1;
                continue;
            }
            _ => {
                i += 1;
                continue;
            }
        }
    }
    out
}

fn inherited(scopes: &[Scope]) -> Gate {
    scopes.iter().fold(Gate::None, |g, s| merge_gate(g, s.gate))
}

fn merge_gate(a: Gate, b: Gate) -> Gate {
    // Test-gating wins (it is the strongest exclusion); any cfg beats none.
    match (a, b) {
        (Gate::Test, _) | (_, Gate::Test) => Gate::Test,
        (Gate::Cfg, _) | (_, Gate::Cfg) => Gate::Cfg,
        _ => Gate::None,
    }
}

/// Parses an attribute at `#`; returns its gate (if it is a cfg that
/// excludes the item from the default build) and the index past `]`.
fn parse_attr(toks: &[Tok], i: usize) -> (Option<Gate>, usize) {
    let mut j = i + 1;
    // Inner attribute `#![...]`.
    if toks.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_punct('[')) {
        return (None, i + 1);
    }
    let open = j;
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    let end = (j + 1).min(toks.len());
    let body = &toks[open + 1..j.min(toks.len())];
    (attr_gate(body), end)
}

/// Classifies a `cfg(...)` attribute body. The decision rule is the first
/// identifier inside `cfg(`: `test`/`feature`/`loom` gate the item out of
/// the default build; `not(...)` keeps it in (the default build is exactly
/// the not-gated world); `any`/`all` gate if they mention test/feature/loom
/// anywhere (a conservative over-approximation).
fn attr_gate(body: &[Tok]) -> Option<Gate> {
    if !body.first().is_some_and(|t| t.is_ident("cfg")) {
        return None;
    }
    let first = body.iter().skip(1).find(|t| t.kind == TokKind::Ident)?;
    match first.text.as_str() {
        "test" => Some(Gate::Test),
        "feature" | "loom" | "miri" => Some(Gate::Cfg),
        "not" => None,
        "any" | "all" => {
            if body.iter().any(|t| t.is_ident("test")) {
                Some(Gate::Test)
            } else if body
                .iter()
                .any(|t| t.is_ident("feature") || t.is_ident("loom") || t.is_ident("miri"))
            {
                Some(Gate::Cfg)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Extracts the implemented type's name from the tokens after `impl`:
/// the last path segment before the block opens, taken after `for` when a
/// trait is being implemented. Returns `(name, index of the token that
/// ends the header)`.
fn impl_type_name(toks: &[Tok], start: usize) -> (Option<String>, usize) {
    let mut angle = 0i32;
    let mut in_where = false;
    let mut candidate: Option<String> = None;
    let mut j = start;
    while j < toks.len() {
        let t = &toks[j];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" | ";" => return (candidate, j),
                _ => {}
            },
            TokKind::Ident if angle == 0 && !in_where => {
                if t.text == "for" {
                    // Trait impl: the implemented type follows.
                    candidate = None;
                } else if t.text == "where" {
                    in_where = true;
                } else {
                    // Last depth-0 path segment so far.
                    candidate = Some(t.text.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    (candidate, j)
}

/// Finds the body of a `fn` whose signature starts at `start` (just past
/// the name): the first `{` at bracket-depth 0, through its matching `}`.
/// Returns an empty range for bodyless declarations.
fn fn_body_range(toks: &[Tok], start: usize) -> std::ops::Range<usize> {
    let mut j = start;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                ";" if paren == 0 && bracket == 0 => return j..j,
                "{" if paren == 0 && bracket == 0 => {
                    // Matching close.
                    let open = j;
                    let mut depth = 0i32;
                    while j < toks.len() {
                        if toks[j].is_punct('{') {
                            depth += 1;
                        } else if toks[j].is_punct('}') {
                            depth -= 1;
                            if depth == 0 {
                                return open..j + 1;
                            }
                        }
                        j += 1;
                    }
                    return open..toks.len();
                }
                _ => {}
            }
        }
        j += 1;
    }
    j..j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_impl_methods_with_types() {
        let lx = lex(r#"
            impl<'a> AppQueue<'a> {
                pub fn release(&mut self, buf: u32) -> Result<()> { Ok(()) }
            }
            impl fmt::Display for Violation {
                fn fmt(&self) {}
            }
            fn free() {}
        "#);
        let fns = functions(&lx);
        let q: Vec<String> = fns.iter().map(FnItem::qualified).collect();
        assert!(q.contains(&"AppQueue::release".to_string()), "{q:?}");
        assert!(q.contains(&"Violation::fmt".to_string()), "{q:?}");
        assert!(q.contains(&"free".to_string()), "{q:?}");
    }

    #[test]
    fn cfg_gating_is_detected() {
        let lx = lex(r#"
            #[cfg(feature = "ownership-checks")]
            fn hooked() {}
            #[cfg(not(feature = "ownership-checks"))]
            fn unhooked() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
            }
            fn plain() {}
        "#);
        let fns = functions(&lx);
        let gate = |n: &str| fns.iter().find(|f| f.name == n).unwrap().gate;
        assert_eq!(gate("hooked"), Gate::Cfg);
        assert_eq!(gate("unhooked"), Gate::None);
        assert_eq!(gate("helper"), Gate::Test);
        assert_eq!(gate("plain"), Gate::None);
    }

    #[test]
    fn bodies_cover_nested_braces() {
        let lx = lex("fn f() { if x { y(); } else { z(); } } fn g() {}");
        let fns = functions(&lx);
        assert_eq!(fns.len(), 2);
        let body = &lx.toks[fns[0].body.clone()];
        assert!(body.iter().any(|t| t.is_ident("z")));
        assert!(!body.iter().any(|t| t.is_ident("g")));
    }

    #[test]
    fn trait_decls_without_bodies_are_empty_ranges() {
        let lx = lex("trait T { fn a(&self); fn b(&self) { self.a() } }");
        let fns = functions(&lx);
        assert!(fns.iter().find(|f| f.name == "a").unwrap().body.is_empty());
        assert!(!fns.iter().find(|f| f.name == "b").unwrap().body.is_empty());
    }
}
