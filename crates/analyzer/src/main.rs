//! The `flipc-analyzer` CLI.
//!
//! ```text
//! cargo run -p flipc-analyzer -- [--root DIR] [--config FILE]
//!     [--allowlist FILE] [--format text|json] [--out FILE]
//! ```
//!
//! Exit status 0 when the workspace is clean (no un-allowlisted findings
//! and no stale allowlist entries), 1 when the gate should fail, 2 on
//! usage or configuration errors.

use std::path::PathBuf;
use std::process::ExitCode;

use flipc_analyzer::config::{Allowlist, Config};

struct Opts {
    root: PathBuf,
    config: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    json: bool,
    out: Option<PathBuf>,
}

fn usage() -> String {
    "usage: flipc-analyzer [--root DIR] [--config FILE] [--allowlist FILE] \
     [--format text|json] [--out FILE]"
        .to_string()
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        config: None,
        allowlist: None,
        json: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--root" => opts.root = PathBuf::from(value("--root")?),
            "--config" => opts.config = Some(PathBuf::from(value("--config")?)),
            "--allowlist" => opts.allowlist = Some(PathBuf::from(value("--allowlist")?)),
            "--format" => match value("--format")?.as_str() {
                "json" => opts.json = true,
                "text" => opts.json = false,
                other => return Err(format!("unknown format `{other}`")),
            },
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "-h" | "--help" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let config_path = opts
        .config
        .clone()
        .unwrap_or_else(|| opts.root.join("analyzer.toml"));
    let allow_path = opts
        .allowlist
        .clone()
        .unwrap_or_else(|| opts.root.join("analyzer-allowlist.toml"));
    let cfg = match Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let allow = match Allowlist::load(&allow_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
    };
    let report = match flipc_analyzer::analyze(&opts.root, &cfg, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let rendered = if opts.json {
        let mut s = report.to_json().render_pretty();
        s.push('\n');
        s
    } else {
        report.render_text()
    };
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        None => print!("{rendered}"),
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        if opts.out.is_some() || opts.json {
            // Make the failure visible even when the report went to a file
            // or a machine-readable stream.
            eprintln!(
                "flipc-analyzer: {} blocking finding(s), {} stale allowlist entr(ies)",
                report.unallowlisted().count(),
                report.stale_allows.len()
            );
        }
        ExitCode::from(1)
    }
}
