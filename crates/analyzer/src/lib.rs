//! flipc-analyzer: a workspace-wide static discipline checker.
//!
//! FLIPC's wait-free protocols rest on invariants the compiler cannot see:
//! every shared-memory location has exactly one writer role, every atomic
//! access goes through the instrumentable facade, orderings in cross-thread
//! handshakes are deliberate, and the drain loop never allocates, locks,
//! blocks, or panics. This crate checks those invariants *statically*, on
//! stable Rust, with no compiler plugin: a small lexer ([`lexer`]) and item
//! parser ([`parser`]) feed four rule families ([`rules`]) configured by
//! `analyzer.toml` ([`config`]), producing a schema-versioned report
//! ([`report`]) that CI gates on.
//!
//! The single-writer rule is a genuine cross-check, not a second copy of
//! the map: field owners are derived at run time from
//! [`flipc_core::layout::Layout::classify`], the same map the runtime
//! ownership checker uses, so the static and dynamic checkers can never
//! drift apart silently.

pub mod config;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;

use std::io;
use std::path::{Path, PathBuf};

use config::{Allowlist, Config};
use report::Report;
use rules::SourceFile;

/// Collects every `.rs` file under the configured include roots, minus
/// exclusions, as root-relative forward-slash paths in sorted order.
pub fn collect_files(root: &Path, cfg: &Config) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for inc in &cfg.include {
        let dir = if inc == "." {
            root.to_path_buf()
        } else {
            root.join(inc)
        };
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        } else if dir.extension().is_some_and(|e| e == "rs") {
            out.push(dir);
        }
    }
    out.sort();
    out.dedup();
    let excluded = |p: &Path| {
        let rel = rel_path(root, p);
        rel.contains("/target/")
            || rel.starts_with("target/")
            || cfg.exclude.iter().any(|e| rel.contains(e.as_str()))
    };
    out.retain(|p| !excluded(p));
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Lexes and parses every file in scope.
pub fn scan(root: &Path, cfg: &Config) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for path in collect_files(root, cfg)? {
        let src = std::fs::read_to_string(&path)?;
        let lexed = lexer::lex(&src);
        let fns = parser::functions(&lexed);
        files.push(SourceFile {
            path: rel_path(root, &path),
            lexed,
            fns,
        });
    }
    Ok(files)
}

/// Runs the full analysis: scan, all four rule families, allowlist.
pub fn analyze(root: &Path, cfg: &Config, allow: &Allowlist) -> io::Result<Report> {
    let files = scan(root, cfg)?;
    let mut report = rules::run_all(&files, cfg);
    report.apply_allowlist(allow);
    report.sort();
    Ok(report)
}
