//! `analyzer.toml` / `analyzer-allowlist.toml` loading.
//!
//! The build environment has no crates.io access, so this module includes a
//! small parser for the TOML subset the two config files use: `[table]`
//! headers, `[[array-of-tables]]` headers, and `key = value` pairs where a
//! value is a string, integer, boolean, or (possibly multi-line) array of
//! strings. Unknown keys are errors — a typo in a discipline config must
//! not silently relax a rule.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// A parsed TOML value (subset).
#[derive(Clone, Debug, PartialEq)]
pub enum TomlValue {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An array of strings.
    StrArray(Vec<String>),
}

impl TomlValue {
    fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_array(&self) -> Option<&[String]> {
        match self {
            TomlValue::StrArray(v) => Some(v),
            _ => None,
        }
    }
}

/// One `[table]` or one element of a `[[table]]` array.
pub type TomlTable = BTreeMap<String, TomlValue>;

/// A parsed document: named tables plus named arrays-of-tables.
#[derive(Debug, Default)]
pub struct TomlDoc {
    /// `[a.b]` tables, keyed by the dotted header.
    pub tables: BTreeMap<String, TomlTable>,
    /// `[[a.b]]` arrays, keyed by the dotted header.
    pub arrays: BTreeMap<String, Vec<TomlTable>>,
}

/// A config-loading error with its source line.
#[derive(Debug)]
pub struct ConfigError {
    /// Human-readable description.
    pub msg: String,
    /// 1-based line, 0 when not line-specific.
    pub line: usize,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.msg)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ConfigError> {
    Err(ConfigError {
        msg: msg.into(),
        line,
    })
}

/// Parses the TOML subset.
pub fn parse_toml(src: &str) -> Result<TomlDoc, ConfigError> {
    let mut doc = TomlDoc::default();
    // Where `key = value` lines currently land.
    enum Cursor {
        Root,
        Table(String),
        Array(String),
    }
    let mut cur = Cursor::Root;
    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix("[[") {
            let Some(name) = h.strip_suffix("]]") else {
                return err(lineno, "unterminated [[header]]");
            };
            let name = name.trim().to_string();
            doc.arrays
                .entry(name.clone())
                .or_default()
                .push(TomlTable::new());
            cur = Cursor::Array(name);
            continue;
        }
        if let Some(h) = line.strip_prefix('[') {
            let Some(name) = h.strip_suffix(']') else {
                return err(lineno, "unterminated [header]");
            };
            let name = name.trim().to_string();
            doc.tables.entry(name.clone()).or_default();
            cur = Cursor::Table(name);
            continue;
        }
        let Some(eq) = line.find('=') else {
            return err(lineno, format!("expected `key = value`, got `{line}`"));
        };
        let key = line[..eq].trim().to_string();
        let mut rest = line[eq + 1..].trim().to_string();
        // Multi-line arrays: keep consuming lines until brackets balance.
        while rest.starts_with('[') && !balanced(&rest) {
            match lines.next() {
                Some((_, more)) => {
                    rest.push(' ');
                    rest.push_str(strip_comment(more).trim());
                }
                None => return err(lineno, "unterminated array"),
            }
        }
        let value = parse_value(&rest, lineno)?;
        let table = match &cur {
            Cursor::Root => doc.tables.entry(String::new()).or_default(),
            Cursor::Table(n) => doc.tables.get_mut(n).expect("cursor table exists"),
            Cursor::Array(n) => doc
                .arrays
                .get_mut(n)
                .and_then(|v| v.last_mut())
                .expect("cursor array exists"),
        };
        if table.insert(key.clone(), value).is_some() {
            return err(lineno, format!("duplicate key `{key}`"));
        }
    }
    Ok(doc)
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut esc = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !esc => {
                esc = true;
                continue;
            }
            '"' if !esc => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        esc = false;
    }
    line
}

fn balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut esc = false;
    for c in s.chars() {
        match c {
            '\\' if in_str && !esc => {
                esc = true;
                continue;
            }
            '"' if !esc => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
        esc = false;
    }
    depth == 0 && !in_str
}

fn parse_value(s: &str, lineno: usize) -> Result<TomlValue, ConfigError> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return err(lineno, "unterminated array");
        };
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part, lineno)? {
                TomlValue::Str(v) => items.push(v),
                other => {
                    return err(
                        lineno,
                        format!("only string arrays are supported, got {other:?}"),
                    )
                }
            }
        }
        return Ok(TomlValue::StrArray(items));
    }
    if let Some(inner) = s.strip_prefix('"') {
        let Some(inner) = inner.strip_suffix('"') else {
            return err(lineno, "unterminated string");
        };
        return Ok(TomlValue::Str(unescape(inner)));
    }
    match s {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    match s.replace('_', "").parse::<i64>() {
        Ok(v) => Ok(TomlValue::Int(v)),
        Err(_) => err(lineno, format!("unsupported value `{s}`")),
    }
}

/// Splits on commas outside quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut esc = false;
    for c in s.chars() {
        match c {
            '\\' if in_str && !esc => {
                esc = true;
                cur.push(c);
                continue;
            }
            '"' if !esc => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
        esc = false;
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Typed configuration
// ---------------------------------------------------------------------

/// A single-writer role scope: one `impl` block audited under one role.
#[derive(Clone, Debug)]
pub struct WriterScope {
    /// Path suffix of the file holding the impl.
    pub path: String,
    /// The `impl` type name.
    pub impl_type: String,
    /// `"app"` or `"engine"`.
    pub role: String,
}

/// The analyzer's rule configuration (`analyzer.toml`).
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Directories (relative to the root) to scan.
    pub include: Vec<String>,
    /// Path substrings excluded from every rule.
    pub exclude: Vec<String>,
    /// Files (path suffixes) where `std::sync::atomic` is legitimate —
    /// the facade itself.
    pub facade_exempt: Vec<String>,
    /// `"path::fn"` or `"path::Type::fn"` entries naming cross-thread
    /// handshake functions audited by the ordering rule.
    pub handshake: Vec<String>,
    /// Hot-path roots (same syntax as `handshake`) audited transitively.
    pub hot_path: Vec<String>,
    /// Maximum transitive call depth explored from a hot-path root.
    pub hot_path_max_depth: usize,
    /// Path substrings excluded from the call-graph *index* (but still
    /// scanned by the other rules): cfg-switched model crates and tooling
    /// that can never be linked into a production hot path.
    pub graph_exclude: Vec<String>,
    /// Single-writer role scopes.
    pub writer_scopes: Vec<WriterScope>,
    /// Struct-field name → layout constant name, for resolving receiver
    /// expressions to layout fields.
    pub writer_fields: Vec<(String, String)>,
}

/// One allowlist entry: a justified, committed exception.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule id the entry applies to.
    pub rule: String,
    /// Path suffix the finding must be in.
    pub path: String,
    /// Symbol the finding must carry (empty = any in the file).
    pub symbol: String,
    /// Substring of the finding message (empty = any).
    pub contains: String,
    /// The written justification. Required to be non-empty.
    pub justification: String,
}

/// The committed allowlist (`analyzer-allowlist.toml`).
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// All entries, in file order.
    pub entries: Vec<AllowEntry>,
}

fn get_strings(t: &TomlTable, key: &str) -> Vec<String> {
    t.get(key)
        .and_then(TomlValue::as_array)
        .map(<[String]>::to_vec)
        .unwrap_or_default()
}

fn known_keys(t: &TomlTable, allowed: &[&str], ctx: &str) -> Result<(), ConfigError> {
    for k in t.keys() {
        if !allowed.contains(&k.as_str()) {
            return err(0, format!("unknown key `{k}` in {ctx}"));
        }
    }
    Ok(())
}

impl Config {
    /// Loads and validates `analyzer.toml`.
    pub fn load(path: &Path) -> Result<Config, ConfigError> {
        let src = std::fs::read_to_string(path).map_err(|e| ConfigError {
            msg: format!("cannot read {}: {e}", path.display()),
            line: 0,
        })?;
        Config::parse_str(&src)
    }

    /// Parses a config from TOML text.
    pub fn parse_str(src: &str) -> Result<Config, ConfigError> {
        let doc = parse_toml(src)?;
        let mut cfg = Config {
            hot_path_max_depth: 8,
            ..Config::default()
        };
        for (name, table) in &doc.tables {
            match name.as_str() {
                "" => known_keys(table, &[], "top level")?,
                "scan" => {
                    known_keys(table, &["include", "exclude"], "[scan]")?;
                    cfg.include = get_strings(table, "include");
                    cfg.exclude = get_strings(table, "exclude");
                }
                "facade" => {
                    known_keys(table, &["exempt"], "[facade]")?;
                    cfg.facade_exempt = get_strings(table, "exempt");
                }
                "ordering" => {
                    known_keys(table, &["handshake"], "[ordering]")?;
                    cfg.handshake = get_strings(table, "handshake");
                }
                "hot_path" => {
                    known_keys(
                        table,
                        &["functions", "max_depth", "graph_exclude"],
                        "[hot_path]",
                    )?;
                    cfg.hot_path = get_strings(table, "functions");
                    cfg.graph_exclude = get_strings(table, "graph_exclude");
                    if let Some(TomlValue::Int(d)) = table.get("max_depth") {
                        cfg.hot_path_max_depth = (*d).clamp(1, 64) as usize;
                    }
                }
                "single_writer" => {
                    known_keys(table, &[], "[single_writer]")?;
                }
                "single_writer.fields" => {
                    for (field, v) in table {
                        match v {
                            TomlValue::Str(c) => cfg.writer_fields.push((field.clone(), c.clone())),
                            _ => return err(0, "field mappings must be strings"),
                        }
                    }
                }
                other => return err(0, format!("unknown section [{other}]")),
            }
        }
        for (name, tables) in &doc.arrays {
            if name != "single_writer.scope" {
                return err(0, format!("unknown array section [[{name}]]"));
            }
            for t in tables {
                known_keys(t, &["path", "impl", "role"], "[[single_writer.scope]]")?;
                let get = |k: &str| -> Result<String, ConfigError> {
                    t.get(k)
                        .and_then(TomlValue::as_str)
                        .map(str::to_string)
                        .ok_or(ConfigError {
                            msg: format!("[[single_writer.scope]] missing `{k}`"),
                            line: 0,
                        })
                };
                let scope = WriterScope {
                    path: get("path")?,
                    impl_type: get("impl")?,
                    role: get("role")?,
                };
                if scope.role != "app" && scope.role != "engine" {
                    return err(
                        0,
                        format!("scope role must be app|engine, got `{}`", scope.role),
                    );
                }
                cfg.writer_scopes.push(scope);
            }
        }
        if cfg.include.is_empty() {
            cfg.include.push(".".to_string());
        }
        Ok(cfg)
    }
}

impl Allowlist {
    /// Loads and validates `analyzer-allowlist.toml`. A missing file is an
    /// empty allowlist; an entry without a justification is an error.
    pub fn load(path: &Path) -> Result<Allowlist, ConfigError> {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Allowlist::default()),
            Err(e) => {
                return err(0, format!("cannot read {}: {e}", path.display()));
            }
        };
        Allowlist::parse_str(&src)
    }

    /// Parses an allowlist from TOML text.
    pub fn parse_str(src: &str) -> Result<Allowlist, ConfigError> {
        let doc = parse_toml(src)?;
        for name in doc.tables.keys() {
            if !name.is_empty() && name != "allow" {
                return err(0, format!("unknown section [{name}] in allowlist"));
            }
        }
        let mut list = Allowlist::default();
        for t in doc.arrays.get("allow").map(Vec::as_slice).unwrap_or(&[]) {
            known_keys(
                t,
                &["rule", "path", "symbol", "contains", "justification"],
                "[[allow]]",
            )?;
            let get = |k: &str| {
                t.get(k)
                    .and_then(TomlValue::as_str)
                    .unwrap_or("")
                    .to_string()
            };
            let entry = AllowEntry {
                rule: get("rule"),
                path: get("path"),
                symbol: get("symbol"),
                contains: get("contains"),
                justification: get("justification"),
            };
            if entry.rule.is_empty() || entry.path.is_empty() {
                return err(0, "[[allow]] entries need `rule` and `path`");
            }
            if entry.justification.trim().is_empty() {
                return err(
                    0,
                    format!(
                        "[[allow]] entry for {}:{} has no justification — every \
                         exception must explain itself",
                        entry.rule, entry.path
                    ),
                );
            }
            list.entries.push(entry);
        }
        Ok(list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_subset() {
        let doc = parse_toml(
            r#"
            # comment
            [scan]
            include = ["crates", "src"] # trailing
            exclude = [
                "crates/shims",
                "target",
            ]
            [hot_path]
            max_depth = 6
            functions = ["a::b"]
            [[single_writer.scope]]
            path = "crates/core/src/queue.rs"
            impl = "EngineQueue"
            role = "engine"
            "#,
        )
        .unwrap();
        assert_eq!(
            doc.tables["scan"]["include"],
            TomlValue::StrArray(vec!["crates".into(), "src".into()])
        );
        assert_eq!(doc.arrays["single_writer.scope"].len(), 1);
    }

    #[test]
    fn config_rejects_unknown_keys() {
        assert!(Config::parse_str("[scan]\ninclud = [\"x\"]\n").is_err());
        assert!(Config::parse_str("[typo]\n").is_err());
    }

    #[test]
    fn allowlist_requires_justification() {
        let bad = r#"
            [[allow]]
            rule = "hot-path"
            path = "crates/x.rs"
        "#;
        assert!(Allowlist::parse_str(bad).is_err());
        let good = r#"
            [[allow]]
            rule = "hot-path"
            path = "crates/x.rs"
            justification = "cold error branch"
        "#;
        assert_eq!(Allowlist::parse_str(good).unwrap().entries.len(), 1);
    }

    #[test]
    fn comments_inside_strings_survive() {
        let doc = parse_toml("[facade]\nexempt = [\"a#b.rs\"] # real comment\n").unwrap();
        assert_eq!(
            doc.tables["facade"]["exempt"],
            TomlValue::StrArray(vec!["a#b.rs".into()])
        );
    }
}
