//! The four rule families.
//!
//! * `atomics-facade` — any `std::sync::atomic` / `core::sync::atomic`
//!   path outside the facade is a violation: raw atomics silently escape
//!   both the ownership checker's write hook and loom model switching.
//! * `memory-ordering` — in registered cross-thread handshake functions,
//!   every `Relaxed` ordering must carry an `// ordering:` justification;
//!   the full workspace ordering census lands in the report summary.
//! * `hot-path` — functions registered as hot paths must be transitively
//!   free of allocation, locking, blocking calls, and panics in the
//!   default production build.
//! * `single-writer` — inside role-tagged accessor impls, a store to a
//!   layout field whose `WriteOwner` (cross-checked against the real
//!   `flipc_core::layout::Layout`) is the *other* role is a violation.

use std::collections::{BTreeMap, HashMap, HashSet};

use flipc_core::layout::{self, Geometry, Layout, WriteOwner};

use crate::config::Config;
use crate::lexer::{Lexed, Tok, TokKind};
use crate::parser::{FnItem, Gate};
use crate::report::{Finding, Report};

/// One scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Root-relative path with forward slashes.
    pub path: String,
    /// Its token stream and comments.
    pub lexed: Lexed,
    /// Functions found in it.
    pub fns: Vec<FnItem>,
}

impl SourceFile {
    /// The innermost function whose body contains token index `i`.
    fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.contains(&i))
            .min_by_key(|f| f.body.len())
    }

    /// Symbol name for diagnostics at token index `i`.
    fn symbol_at(&self, i: usize) -> String {
        self.enclosing_fn(i)
            .map(FnItem::qualified)
            .unwrap_or_else(|| "-".to_string())
    }
}

/// Runs every rule family over the scanned files.
pub fn run_all(files: &[SourceFile], cfg: &Config) -> Report {
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    facade_rule(files, cfg, &mut report);
    ordering_rule(files, cfg, &mut report);
    hot_path_rule(files, cfg, &mut report);
    single_writer_rule(files, cfg, &mut report);
    report.sort();
    report
}

// ---------------------------------------------------------------------
// Rule 1: atomics-facade
// ---------------------------------------------------------------------

fn facade_rule(files: &[SourceFile], cfg: &Config, report: &mut Report) {
    for file in files {
        // A `.rs` entry exempts that file; anything else is a directory
        // prefix (the loom shim crate is exempt wholesale).
        let exempt = cfg.facade_exempt.iter().any(|e| {
            if e.ends_with(".rs") {
                file.path.ends_with(e)
            } else {
                file.path.starts_with(e) || file.path.contains(&format!("/{e}"))
            }
        });
        if exempt {
            continue;
        }
        let toks = &file.lexed.toks;
        let mut i = 0;
        while i < toks.len() {
            let root_crate =
                toks[i].kind == TokKind::Ident && (toks[i].text == "std" || toks[i].text == "core");
            if root_crate && path_follows(toks, i + 1, &["sync"]) {
                // `std::sync` — direct `::atomic` segment, or a grouped
                // `::{ ... atomic ... }` import.
                let after_sync = i + 4;
                if path_follows(toks, after_sync, &["atomic"])
                    || grouped_contains(toks, after_sync, "atomic")
                {
                    report.findings.push(Finding::new(
                        "atomics-facade",
                        file.path.clone(),
                        toks[i].line,
                        file.symbol_at(i),
                        format!(
                            "`{}::sync::atomic` used directly; go through \
                             `flipc_core::sync::atomic` so the access gets loom \
                             instrumentation and the ownership-checks write hook",
                            toks[i].text
                        ),
                    ));
                    // One finding per site even if both patterns match.
                    i = after_sync + 2;
                    continue;
                }
            }
            i += 1;
        }
    }
}

/// True when tokens at `i` are `:: seg1 [:: seg2 ...]` for the given
/// identifier segments.
fn path_follows(toks: &[Tok], mut i: usize, segs: &[&str]) -> bool {
    for seg in segs {
        if !(toks.get(i).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_ident(seg)))
        {
            return false;
        }
        i += 3;
    }
    true
}

/// True when tokens at `i` are `:: { ... ident ... }` containing `ident`.
fn grouped_contains(toks: &[Tok], i: usize, ident: &str) -> bool {
    if !(toks.get(i).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct('{')))
    {
        return false;
    }
    let mut depth = 0i32;
    let mut j = i + 2;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if t.is_ident(ident) {
            return true;
        }
        j += 1;
    }
    false
}

// ---------------------------------------------------------------------
// Rule 2: memory-ordering
// ---------------------------------------------------------------------

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn ordering_rule(files: &[SourceFile], cfg: &Config, report: &mut Report) {
    // Workspace-wide census: every `Ordering::X` mention, classified.
    for file in files {
        let toks = &file.lexed.toks;
        for i in 2..toks.len() {
            if toks[i].kind == TokKind::Ident
                && ORDERINGS.contains(&toks[i].text.as_str())
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
            {
                *report
                    .ordering_census
                    .entry(toks[i].text.clone())
                    .or_insert(0) += 1;
            }
        }
    }
    // Justification audit inside registered handshake functions.
    for spec in &cfg.handshake {
        for (file, f) in resolve_fns(files, spec) {
            let toks = &file.lexed.toks;
            for i in f.body.clone() {
                if !toks[i].is_ident("Relaxed") {
                    continue;
                }
                let line = toks[i].line;
                // Justified by an `// ordering:` comment on the same line
                // or the line directly above.
                let justified =
                    file.lexed.comments.iter().any(|c| {
                        c.line + 1 >= line && c.line <= line && c.text.contains("ordering:")
                    });
                if !justified {
                    report.findings.push(Finding::new(
                        "memory-ordering",
                        file.path.clone(),
                        line,
                        f.qualified(),
                        "`Relaxed` in a cross-thread handshake path without an \
                         `// ordering:` justification — downgrades here are how \
                         wakeups get lost"
                            .to_string(),
                    ));
                }
            }
        }
    }
}

/// Resolves a `"path::fn"` / `"path::Type::fn"` spec against the scanned
/// files. Returns every match (an overloaded name may match several).
fn resolve_fns<'a>(files: &'a [SourceFile], spec: &str) -> Vec<(&'a SourceFile, &'a FnItem)> {
    let Some((path, rest)) = spec.split_once("::") else {
        return Vec::new();
    };
    let (impl_type, fn_name) = match rest.split_once("::") {
        Some((t, f)) => (Some(t), f),
        None => (None, rest),
    };
    let mut out = Vec::new();
    for file in files {
        if !file.path.ends_with(path) {
            continue;
        }
        for f in &file.fns {
            if f.name == fn_name && impl_type.is_none_or(|t| f.impl_type.as_deref() == Some(t)) {
                out.push((file, f));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 3: hot-path
// ---------------------------------------------------------------------

/// Why a token sequence violates hot-path discipline.
struct Banned {
    what: String,
    class: &'static str,
    line: u32,
}

/// Method names whose call allocates.
const ALLOC_METHODS: [&str; 6] = [
    "to_string",
    "to_owned",
    "to_vec",
    "with_capacity",
    "collect",
    "clone_into",
];
/// `A::b` path calls that allocate.
const ALLOC_PATHS: [(&str, &str); 6] = [
    ("Box", "new"),
    ("Arc", "new"),
    ("Rc", "new"),
    ("String", "from"),
    ("Vec", "with_capacity"),
    ("String", "with_capacity"),
];
/// Macros that allocate or panic.
const BANNED_MACROS: [(&str, &str); 5] = [
    ("panic", "panics"),
    ("todo", "panics"),
    ("unimplemented", "panics"),
    ("format", "allocates"),
    ("vec", "allocates"),
];
/// Blocking calls (scheduler or kernel waits).
const BLOCKING_CALLS: [&str; 4] = ["sleep", "park", "wait_timeout", "recv_timeout"];

fn scan_banned(toks: &[Tok], body: std::ops::Range<usize>) -> Vec<Banned> {
    let mut out = Vec::new();
    let mut push = |what: String, class: &'static str, line: u32| {
        out.push(Banned { what, class, line });
    };
    for i in body.clone() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |c: char| toks.get(i + 1).is_some_and(|t| t.is_punct(c));
        let prev_is_dot = i > 0 && toks[i - 1].is_punct('.');
        // Macros.
        if next_is('!') {
            if let Some((m, class)) = BANNED_MACROS.iter().find(|(m, _)| t.text == *m) {
                push(format!("{m}!"), class, t.line);
            }
            continue;
        }
        // `.unwrap()` / `.expect()` and allocating methods.
        if prev_is_dot && next_is('(') {
            match t.text.as_str() {
                "unwrap" | "expect" => push(format!(".{}()", t.text), "panics", t.line),
                "lock" => push(".lock()".to_string(), "locks", t.line),
                m if ALLOC_METHODS.contains(&m) => push(format!(".{m}()"), "allocates", t.line),
                _ => {}
            }
            continue;
        }
        // `Box::new`-style path calls.
        if let Some((a, b)) = ALLOC_PATHS.iter().find(|(a, _)| t.text == *a) {
            if path_follows(toks, i + 1, &[b]) {
                push(format!("{a}::{b}"), "allocates", t.line);
                continue;
            }
        }
        // Lock types anywhere in the body (construction, type ascription,
        // `Mutex::lock` paths).
        if t.text == "Mutex" || t.text == "RwLock" {
            push(t.text.clone(), "locks", t.line);
            continue;
        }
        // Blocking calls.
        if BLOCKING_CALLS.contains(&t.text.as_str()) && next_is('(') {
            push(format!("{}()", t.text), "blocks", t.line);
        }
    }
    out
}

/// Rust keywords and flow-control words that look like calls.
const NOT_CALLS: [&str; 14] = [
    "if", "for", "while", "match", "loop", "return", "fn", "let", "as", "in", "move", "ref",
    "break", "continue",
];

/// Names too generic to resolve through the index (ubiquitous trait
/// methods); the direct banned-token scan still covers their call sites.
const TOO_GENERIC: [&str; 12] = [
    "new", "default", "clone", "fmt", "from", "into", "get", "iter", "next", "drop",
    // Pointer arithmetic (`ptr.add`/`ptr.sub`) shares its name with every
    // `fn add` in the crate.
    "add", "sub",
];

/// Extracts callee names from a body: `name(`, `.name(`, and
/// `Type::name(` sequences. The qualifier (when it is a capitalized path
/// segment) lets resolution pick the right `decode` out of a crate full
/// of them.
fn calls_in(toks: &[Tok], body: std::ops::Range<usize>) -> Vec<(Option<String>, String)> {
    let mut out = Vec::new();
    for i in body {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !NOT_CALLS.contains(&t.text.as_str())
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            let qual = (i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].kind == TokKind::Ident
                && toks[i - 3].text.starts_with(char::is_uppercase))
            .then(|| toks[i - 3].text.clone());
            out.push((qual, t.text.clone()));
        }
    }
    out
}

/// The crate-ish prefix of a path: `crates/<name>` or the first component.
fn crate_of(path: &str) -> &str {
    let mut it = path.split('/');
    match (it.next(), it.next()) {
        (Some("crates"), Some(c)) => &path[..7 + c.len()],
        (Some(first), _) => first,
        _ => path,
    }
}

/// True when a file can never be linked into a production hot path: test,
/// bench, and example sources, plus configured graph exclusions.
fn off_graph(path: &str, cfg: &Config) -> bool {
    ["/tests/", "/benches/", "/examples/"]
        .iter()
        .any(|d| path.contains(d))
        || cfg.graph_exclude.iter().any(|e| path.contains(e.as_str()))
}

fn hot_path_rule(files: &[SourceFile], cfg: &Config, report: &mut Report) {
    // Index production-build functions by bare name.
    let mut index: HashMap<&str, Vec<(usize, usize)>> = HashMap::new();
    let mut indexed = 0usize;
    for (fi, file) in files.iter().enumerate() {
        if off_graph(&file.path, cfg) {
            continue;
        }
        for (gi, f) in file.fns.iter().enumerate() {
            if f.gate == Gate::None && !f.body.is_empty() {
                index.entry(f.name.as_str()).or_default().push((fi, gi));
                indexed += 1;
            }
        }
    }
    report.functions_indexed = indexed;

    for spec in &cfg.hot_path {
        let roots = resolve_fns(files, spec);
        if roots.is_empty() {
            report.findings.push(Finding::new(
                "hot-path",
                spec.split("::").next().unwrap_or(spec),
                0,
                spec.clone(),
                "registered hot-path function not found — fix analyzer.toml \
                 so the discipline surface cannot silently shrink",
            ));
            continue;
        }
        for (root_file, root_fn) in roots {
            let mut seen_sites: HashSet<(String, u32, String)> = HashSet::new();
            let mut visited: HashSet<(String, String)> = HashSet::new();
            walk_hot(
                files,
                &index,
                root_file,
                root_fn,
                cfg.hot_path_max_depth,
                &mut Vec::new(),
                &mut visited,
                &mut seen_sites,
                root_fn.qualified(),
                &root_file.path.clone(),
                root_fn.line,
                report,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn walk_hot(
    files: &[SourceFile],
    index: &HashMap<&str, Vec<(usize, usize)>>,
    file: &SourceFile,
    f: &FnItem,
    depth_left: usize,
    chain: &mut Vec<String>,
    visited: &mut HashSet<(String, String)>,
    seen_sites: &mut HashSet<(String, u32, String)>,
    root_symbol: String,
    root_path: &str,
    root_line: u32,
    report: &mut Report,
) {
    if !visited.insert((file.path.clone(), f.qualified())) {
        return;
    }
    chain.push(f.qualified());
    // Direct violations in this body.
    for b in scan_banned(&file.lexed.toks, f.body.clone()) {
        let site = (file.path.clone(), b.line, b.what.clone());
        if !seen_sites.insert(site) {
            continue;
        }
        let via = if chain.len() > 1 {
            format!(" (via {})", chain.join(" → "))
        } else {
            String::new()
        };
        report.findings.push(Finding::new(
            "hot-path",
            root_path.to_string(),
            if chain.len() > 1 { root_line } else { b.line },
            root_symbol.clone(),
            format!(
                "hot path {} `{}` at {}:{}{}",
                b.class, b.what, file.path, b.line, via
            ),
        ));
    }
    // Transitive calls.
    if depth_left > 0 {
        for (qual, callee) in calls_in(&file.lexed.toks, f.body.clone()) {
            if qual.is_none() && TOO_GENERIC.contains(&callee.as_str()) {
                continue;
            }
            let Some(cands) = index.get(callee.as_str()) else {
                continue;
            };
            if cands.len() > 8 {
                // Too ambiguous to resolve by name; the direct scan of
                // whatever we *can* reach still applies.
                continue;
            }
            // A `Type::name(..)` call resolves by impl type (with `Self`
            // standing for the enclosing impl); no fallback — a qualified
            // call to an unindexed type is not a graph edge.
            let qual = match qual.as_deref() {
                Some("Self") => f.impl_type.clone(),
                other => other.map(str::to_string),
            };
            let chosen: Vec<(usize, usize)> = if let Some(q) = &qual {
                cands
                    .iter()
                    .filter(|(fi, gi)| files[*fi].fns[*gi].impl_type.as_deref() == Some(q.as_str()))
                    .copied()
                    .collect()
            } else {
                // Bare-name policy: same file, else same crate, else across
                // crates only when unambiguous. Anything looser wires
                // unrelated `load`s and `send`s into the graph.
                let same_file: Vec<(usize, usize)> = cands
                    .iter()
                    .filter(|(fi, _)| files[*fi].path == file.path)
                    .copied()
                    .collect();
                let same_crate: Vec<(usize, usize)> = cands
                    .iter()
                    .filter(|(fi, _)| crate_of(&files[*fi].path) == crate_of(&file.path))
                    .copied()
                    .collect();
                if !same_file.is_empty() {
                    same_file
                } else if !same_crate.is_empty() {
                    same_crate
                } else if cands.len() == 1 {
                    cands.clone()
                } else {
                    Vec::new()
                }
            };
            for (fi, gi) in chosen {
                let nf = &files[fi];
                let nfn = &nf.fns[gi];
                walk_hot(
                    files,
                    index,
                    nf,
                    nfn,
                    depth_left - 1,
                    chain,
                    visited,
                    seen_sites,
                    root_symbol.clone(),
                    root_path,
                    root_line,
                    report,
                );
            }
        }
    }
    chain.pop();
}

// ---------------------------------------------------------------------
// Rule 4: single-writer
// ---------------------------------------------------------------------

/// Facade methods that write.
const MUTATORS: [&str; 8] = [
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Builds the layout-constant → owner map by *asking the real layout*:
/// each named constant is resolved to a representative byte offset and
/// classified through `Layout::classify`, so this rule can never drift
/// from the runtime checker's map.
fn owner_map() -> BTreeMap<&'static str, WriteOwner> {
    let lay = Layout::new(Geometry::small()).expect("small geometry is valid");
    let ep0 = lay.endpoint(0);
    let fl = lay.freelist();
    let entries: [(&str, usize); 21] = [
        ("HDR_MAGIC", layout::HDR_MAGIC),
        ("HDR_ENDPOINTS", layout::HDR_ENDPOINTS),
        ("HDR_RING_CAP", layout::HDR_RING_CAP),
        ("HDR_BUFFERS", layout::HDR_BUFFERS),
        ("HDR_MSG_SIZE", layout::HDR_MSG_SIZE),
        ("HDR_EP_ALLOC_LOCK", layout::HDR_EP_ALLOC_LOCK),
        ("HDR_MISADDR_DROPS", layout::HDR_MISADDR_DROPS),
        ("HDR_MISADDR_TAKEN", layout::HDR_MISADDR_TAKEN),
        ("FREE_LOCK", fl + layout::FREE_LOCK),
        ("FREE_TOP", fl + layout::FREE_TOP),
        ("FREE_SLOTS", fl + layout::FREE_SLOTS),
        ("EP_TYPE", ep0 + layout::EP_TYPE),
        ("EP_GEN_ACTIVE", ep0 + layout::EP_GEN_ACTIVE),
        ("EP_IMPORTANCE", ep0 + layout::EP_IMPORTANCE),
        ("EP_RELEASE", ep0 + layout::EP_RELEASE),
        ("EP_ACQUIRE", ep0 + layout::EP_ACQUIRE),
        ("EP_DROPS_TAKEN", ep0 + layout::EP_DROPS_TAKEN),
        ("EP_WAITERS", ep0 + layout::EP_WAITERS),
        ("EP_PROCESS", ep0 + layout::EP_PROCESS),
        ("EP_DROPS", ep0 + layout::EP_DROPS),
        ("EP_LOCK", ep0 + layout::EP_LOCK),
    ];
    let mut map: BTreeMap<&'static str, WriteOwner> = entries
        .into_iter()
        .map(|(name, off)| {
            let fc = lay.classify(off).expect("constant offsets classify");
            (name, fc.owner)
        })
        .collect();
    map.insert(
        "RING_SLOT",
        lay.classify(lay.ring_slot(0, 0))
            .expect("ring classifies")
            .owner,
    );
    map.insert(
        "BUF_HEADER",
        lay.classify(lay.buffer(0))
            .expect("buffer classifies")
            .owner,
    );
    map.insert(
        "BUF_PAYLOAD",
        lay.classify(lay.buffer_payload(0))
            .expect("payload classifies")
            .owner,
    );
    map
}

fn role_matches(owner: WriteOwner, role: &str) -> bool {
    match owner {
        WriteOwner::Dynamic => true,
        WriteOwner::App => role == "app",
        WriteOwner::Engine => role == "engine",
    }
}

fn owner_name(owner: WriteOwner) -> &'static str {
    match owner {
        WriteOwner::App => "app",
        WriteOwner::Engine => "engine",
        WriteOwner::Dynamic => "dynamic",
    }
}

fn single_writer_rule(files: &[SourceFile], cfg: &Config, report: &mut Report) {
    if cfg.writer_scopes.is_empty() {
        return;
    }
    let owners = owner_map();
    // field name → layout constant, from config.
    let field_map: BTreeMap<&str, &str> = cfg
        .writer_fields
        .iter()
        .map(|(f, c)| (f.as_str(), c.as_str()))
        .collect();

    for scope in &cfg.writer_scopes {
        let mut matched = false;
        for file in files.iter().filter(|f| f.path.ends_with(&scope.path)) {
            for f in &file.fns {
                if f.impl_type.as_deref() != Some(scope.impl_type.as_str()) || f.gate == Gate::Test
                {
                    continue;
                }
                matched = true;
                audit_writes(file, f, scope, &owners, &field_map, report);
            }
        }
        if !matched {
            report.findings.push(Finding::new(
                "single-writer",
                scope.path.clone(),
                0,
                scope.impl_type.clone(),
                "registered single-writer scope matches no impl — fix \
                 analyzer.toml so the audited surface cannot silently shrink",
            ));
        }
    }
}

fn audit_writes(
    file: &SourceFile,
    f: &FnItem,
    scope: &crate::config::WriterScope,
    owners: &BTreeMap<&'static str, WriteOwner>,
    field_map: &BTreeMap<&str, &str>,
    report: &mut Report,
) {
    let toks = &file.lexed.toks;
    for i in f.body.clone() {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || !MUTATORS.contains(&t.text.as_str())
            || i == 0
            || !toks[i - 1].is_punct('.')
            || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        let recv = receiver_range(toks, i - 1, f.body.start);
        // Last recognized layout key in the receiver expression: either a
        // layout constant name or a configured struct-field name.
        let mut key: Option<&str> = None;
        for rt in &toks[recv] {
            if rt.kind != TokKind::Ident {
                continue;
            }
            if owners.contains_key(rt.text.as_str()) {
                key = owners.get_key_value(rt.text.as_str()).map(|(k, _)| *k);
            } else if let Some(c) = field_map.get(rt.text.as_str()) {
                key = Some(*c);
            }
        }
        let Some(key) = key else { continue };
        let Some(&owner) = owners.get(key) else {
            report.findings.push(Finding::new(
                "single-writer",
                file.path.clone(),
                t.line,
                f.qualified(),
                format!(
                    "`{key}` maps to no known layout constant — fix the \
                     [single_writer.fields] table in analyzer.toml"
                ),
            ));
            continue;
        };
        if !role_matches(owner, &scope.role) {
            report.findings.push(Finding::new(
                "single-writer",
                file.path.clone(),
                t.line,
                f.qualified(),
                format!(
                    "`{}`-role code writes `{key}` (single writer: {}) — a \
                     wrong-role store is a protocol violation per the paper's \
                     one-writer-per-location rule",
                    scope.role,
                    owner_name(owner),
                ),
            ));
        }
    }
}

/// Walks backwards from the `.` before a mutator call, over a postfix
/// chain (`a.b.c`, `a.b(args)`, `a[i]`, `a::b(..)`), returning the token
/// range of the receiver expression.
fn receiver_range(toks: &[Tok], dot: usize, floor: usize) -> std::ops::Range<usize> {
    let mut i = dot as isize - 1;
    let floor = floor as isize;
    let mut start = dot;
    while i >= floor {
        let t = &toks[i as usize];
        match t.kind {
            TokKind::Punct if t.text == ")" || t.text == "]" => {
                // Jump to the matching opener.
                let (open, close) = if t.text == ")" {
                    ('(', ')')
                } else {
                    ('[', ']')
                };
                let mut depth = 0i32;
                while i >= floor {
                    let u = &toks[i as usize];
                    if u.is_punct(close) {
                        depth += 1;
                    } else if u.is_punct(open) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    i -= 1;
                }
                start = i.max(floor) as usize;
                i -= 1;
            }
            TokKind::Ident | TokKind::Num => {
                start = i as usize;
                // Continue the chain only through `.` or `::`.
                if i > floor && toks[(i - 1) as usize].is_punct('.') {
                    i -= 2;
                } else if i - 2 >= floor
                    && toks[(i - 1) as usize].is_punct(':')
                    && toks[(i - 2) as usize].is_punct(':')
                {
                    i -= 3;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    start..dot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::functions;

    fn file(path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let fns = functions(&lexed);
        SourceFile {
            path: path.to_string(),
            lexed,
            fns,
        }
    }

    fn cfg() -> Config {
        Config::parse_str(
            r#"
            [scan]
            include = ["."]
            "#,
        )
        .unwrap()
    }

    #[test]
    fn facade_rule_catches_direct_and_grouped_paths() {
        let f = file(
            "x/a.rs",
            "use std::sync::atomic::AtomicU32;\nuse core::sync::{atomic, Mutex};\nuse crate::sync::atomic::Ordering;\n",
        );
        let r = run_all(&[f], &cfg());
        let hits: Vec<u32> = r
            .findings
            .iter()
            .filter(|f| f.rule == "atomics-facade")
            .map(|f| f.line)
            .collect();
        assert_eq!(hits, vec![1, 2], "{:?}", r.findings);
    }

    #[test]
    fn ordering_rule_respects_justifications() {
        let src = r#"
            impl Q {
                fn handshake(&self) {
                    // ordering: single-writer location, release pairs below
                    let a = x.load(Ordering::Relaxed);
                    let b = y.load(Ordering::Relaxed);
                }
            }
        "#;
        // Only the *second* Relaxed (line 6) lacks a nearby justification.
        let f = file("x/q.rs", src);
        let mut c = cfg();
        c.handshake = vec!["x/q.rs::Q::handshake".to_string()];
        let r = run_all(&[f], &c);
        let hits: Vec<u32> = r
            .findings
            .iter()
            .filter(|f| f.rule == "memory-ordering")
            .map(|f| f.line)
            .collect();
        assert_eq!(hits, vec![6], "{:?}", r.findings);
        assert!(r.ordering_census["Relaxed"] >= 2);
    }

    #[test]
    fn hot_path_rule_is_transitive() {
        let src = r#"
            fn hot(&mut self) { helper(); }
            fn helper() { let g = m.lock().unwrap(); }
        "#;
        let f = file("x/h.rs", src);
        let mut c = cfg();
        c.hot_path = vec!["x/h.rs::hot".to_string()];
        let r = run_all(&[f], &c);
        let msgs: Vec<&str> = r
            .findings
            .iter()
            .filter(|f| f.rule == "hot-path")
            .map(|f| f.message.as_str())
            .collect();
        assert!(
            msgs.iter()
                .any(|m| m.contains(".lock()") && m.contains("via hot → helper")),
            "{msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.contains(".unwrap()")), "{msgs:?}");
    }

    #[test]
    fn hot_path_skips_cfg_gated_functions() {
        let src = r#"
            fn hot() { on_write(); }
            #[cfg(feature = "ownership-checks")]
            fn on_write() { reg.lock(); }
            #[cfg(not(feature = "ownership-checks"))]
            fn on_write() {}
        "#;
        let f = file("x/g.rs", src);
        let mut c = cfg();
        c.hot_path = vec!["x/g.rs::hot".to_string()];
        let r = run_all(&[f], &c);
        assert_eq!(
            r.findings.iter().filter(|f| f.rule == "hot-path").count(),
            0,
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn single_writer_rule_cross_checks_the_layout() {
        let src = r#"
            impl EngineSide {
                fn bad(&self) {
                    self.raw.release.store(1, Ordering::Release);
                }
                fn good(&self) {
                    self.raw.process.store(1, Ordering::Release);
                }
            }
        "#;
        let f = file("x/w.rs", src);
        let mut c = cfg();
        c.writer_scopes = vec![crate::config::WriterScope {
            path: "x/w.rs".to_string(),
            impl_type: "EngineSide".to_string(),
            role: "engine".to_string(),
        }];
        c.writer_fields = vec![
            ("release".to_string(), "EP_RELEASE".to_string()),
            ("process".to_string(), "EP_PROCESS".to_string()),
        ];
        let r = run_all(&[f], &c);
        let hits: Vec<(u32, &str)> = r
            .findings
            .iter()
            .filter(|f| f.rule == "single-writer")
            .map(|f| (f.line, f.symbol.as_str()))
            .collect();
        assert_eq!(hits, vec![(4, "EngineSide::bad")], "{:?}", r.findings);
    }

    #[test]
    fn owner_map_agrees_with_layout_classify() {
        let m = owner_map();
        assert_eq!(m["EP_RELEASE"], WriteOwner::App);
        assert_eq!(m["EP_PROCESS"], WriteOwner::Engine);
        assert_eq!(m["EP_DROPS"], WriteOwner::Engine);
        assert_eq!(m["HDR_MISADDR_DROPS"], WriteOwner::Engine);
        assert_eq!(m["RING_SLOT"], WriteOwner::App);
        assert_eq!(m["BUF_PAYLOAD"], WriteOwner::Dynamic);
    }
}
