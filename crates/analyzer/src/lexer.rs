//! A minimal Rust lexer: enough token structure to audit discipline.
//!
//! The analyzer needs identifiers, punctuation, and line numbers — not a
//! full grammar. Comments and string/char literals are consumed here so no
//! rule ever matches text inside them; line comments are additionally
//! retained (with their line numbers) because the ordering rule looks for
//! `// ordering:` justifications.

/// What kind of token this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (lexed loosely; the analyzer never interprets it).
    Num,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
    /// A lifetime such as `'a` (kept so `'a` is never confused with a
    /// char literal).
    Lifetime,
}

/// One token with its source position.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token text. For `Punct` this is a single character.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Token class.
    pub kind: TokKind,
}

impl Tok {
    /// True if this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A line comment retained for justification matching.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text including the leading `//`.
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Line comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and retained line comments.
///
/// The lexer is forgiving: anything it does not recognize is consumed as
/// single-character punctuation, so a pathological file degrades to noisy
/// punctuation rather than a crash.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();

    let bump_lines = |s: &[char], line: &mut u32| {
        *line += s.iter().filter(|&&c| c == '\n').count() as u32;
    };

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: b[start..i].iter().collect(),
                });
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                // Block comment, nesting like Rust's.
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if i + 1 < n && b[i] == '/' && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == '*' && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                bump_lines(&b[start..i], &mut line);
            }
            '"' => {
                let start = i;
                i += 1;
                while i < n {
                    match b[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                bump_lines(&b[start..i.min(n)], &mut line);
            }
            'r' | 'b' if is_raw_or_byte_string(&b, i) => {
                let start = i;
                i = consume_raw_or_byte_string(&b, i);
                bump_lines(&b[start..i], &mut line);
            }
            '\'' => {
                // Lifetime vs char literal: `'ident` not followed by a
                // closing quote is a lifetime.
                let mut j = i + 1;
                if j < n && (b[j].is_alphabetic() || b[j] == '_') {
                    let mut k = j + 1;
                    while k < n && (b[k].is_alphanumeric() || b[k] == '_') {
                        k += 1;
                    }
                    if k < n && b[k] == '\'' {
                        // Char literal like 'a'.
                        i = k + 1;
                    } else {
                        out.toks.push(Tok {
                            text: b[j..k].iter().collect(),
                            line,
                            kind: TokKind::Lifetime,
                        });
                        i = k;
                    }
                } else {
                    // Escaped or symbolic char literal: consume to the
                    // closing quote.
                    while j < n {
                        match b[j] {
                            '\\' => j += 2,
                            '\'' => {
                                j += 1;
                                break;
                            }
                            '\n' => break,
                            _ => j += 1,
                        }
                    }
                    i = j;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.toks.push(Tok {
                    text: b[start..i].iter().collect(),
                    line,
                    kind: TokKind::Ident,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                // Loose: covers 0xF11C, 1_000, 1e9; `1.0` lexes as
                // `1` `.` `0`, which is fine for discipline checks.
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.toks.push(Tok {
                    text: b[start..i].iter().collect(),
                    line,
                    kind: TokKind::Num,
                });
            }
            c => {
                out.toks.push(Tok {
                    text: c.to_string(),
                    line,
                    kind: TokKind::Punct,
                });
                i += 1;
            }
        }
    }
    out
}

/// True at `r"`, `r#"`, `b"`, `br"`, `br#"` etc.
fn is_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let n = b.len();
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if j < n && b[j] == 'r' {
        j += 1;
        while j < n && b[j] == '#' {
            j += 1;
        }
    }
    // Must end at a quote AND have consumed at least one prefix char;
    // otherwise this is an ordinary identifier starting with r/b.
    j > i && j < n && b[j] == '"'
}

/// Consumes a raw/byte string starting at `i`; returns the index past it.
fn consume_raw_or_byte_string(b: &[char], i: usize) -> usize {
    let n = b.len();
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    let raw = j < n && b[j] == 'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0;
    while j < n && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < n && b[j] == '"');
    j += 1; // opening quote
    if raw {
        // Scan for `"` followed by `hashes` hash marks.
        while j < n {
            if b[j] == '"' {
                let mut k = j + 1;
                let mut h = 0;
                while k < n && h < hashes && b[k] == '#' {
                    h += 1;
                    k += 1;
                }
                if h == hashes {
                    return k;
                }
            }
            j += 1;
        }
        n
    } else {
        // b"..." with escapes.
        while j < n {
            match b[j] {
                '\\' => j += 2,
                '"' => return j + 1,
                _ => j += 1,
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_never_produce_code_tokens() {
        let l = lex("let s = \"std::sync::atomic\"; // std::sync::atomic\nx");
        assert!(!l.toks.iter().any(|t| t.is_ident("atomic")));
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("std::sync::atomic"));
        assert_eq!(l.toks.last().unwrap().line, 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        // The char literals disappear entirely.
        assert!(!l.toks.iter().any(|t| t.is_ident("x") && t.line == 0));
    }

    #[test]
    fn raw_strings_are_opaque() {
        let l = lex("let s = r#\"Mutex \"quoted\" panic!\"#; ok");
        assert!(!l.toks.iter().any(|t| t.is_ident("Mutex")));
        assert!(l.toks.iter().any(|t| t.is_ident("ok")));
    }

    #[test]
    fn block_comments_nest_and_count_lines() {
        let l = lex("/* a /* b\n */ still\n */ after");
        assert_eq!(l.toks.len(), 1);
        assert!(l.toks[0].is_ident("after"));
        assert_eq!(l.toks[0].line, 3);
    }
}
