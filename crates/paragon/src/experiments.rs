//! Experiment harnesses for every simulated table and figure.
//!
//! Each function regenerates one of the paper's results (see DESIGN.md's
//! experiment index); the `flipc-bench` crate prints them as report rows,
//! and the workspace integration tests assert the expected *shapes*
//! (orderings, deltas, crossovers) rather than exact numbers.

use flipc_baselines::model::{pingpong, stream_bandwidth, MessagingModel, SimEnv};
use flipc_baselines::nx::NxModel;
use flipc_baselines::pam::PamModel;
use flipc_baselines::sunmos::SunmosModel;
use flipc_mesh::topology::NodeId;
use flipc_sim::stats::{linear_fit, LineFit, RunningStats};
use flipc_sim::time::SimTime;

use crate::model::{FlipcModelConfig, FlipcParagonModel};

/// One point of the Figure 4 latency curve.
#[derive(Clone, Copy, Debug)]
pub struct Fig4Row {
    /// Application message size in bytes.
    pub msg_bytes: u64,
    /// Mean one-way latency, µs.
    pub mean_us: f64,
    /// Standard deviation, µs.
    pub stddev_us: f64,
}

/// Experiment E1 (Figure 4): FLIPC one-way latency vs message size, steady
/// state, optimized configuration. Sizes step by 32 from the 56-byte
/// minimum so each is an exact DMA transfer.
pub fn fig4_sweep(seed: u64, max_bytes: u64, exchanges: u32) -> Vec<Fig4Row> {
    let mut rows = Vec::new();
    let mut size = 56u64;
    while size <= max_bytes {
        let mut env = SimEnv::paragon_pair(seed ^ size);
        let mut model = FlipcParagonModel::tuned();
        let stats = pingpong(
            &mut model,
            &mut env,
            NodeId(0),
            NodeId(1),
            size,
            50,
            exchanges,
        );
        rows.push(Fig4Row {
            msg_bytes: size,
            mean_us: stats.mean() / 1000.0,
            stddev_us: stats.stddev() / 1000.0,
        });
        size += 32;
    }
    rows
}

/// Fits `latency = base + slope * size` over rows with `size >= min_bytes`
/// (the paper fits at 96 bytes and above). Returns the fit in (µs, ns/B).
pub fn fig4_fit(rows: &[Fig4Row], min_bytes: u64) -> LineFit {
    let pts: Vec<(f64, f64)> = rows
        .iter()
        .filter(|r| r.msg_bytes >= min_bytes)
        .map(|r| (r.msg_bytes as f64, r.mean_us * 1000.0))
        .collect();
    let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
    let f = linear_fit(&xs, &ys);
    // Report intercept in µs, slope in ns/B.
    LineFit {
        intercept: f.intercept / 1000.0,
        slope: f.slope,
        r2: f.r2,
    }
}

/// One comparison-table row.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// System name.
    pub system: &'static str,
    /// Mean 120-byte one-way latency, µs.
    pub latency_us: f64,
    /// The paper's reported value, µs.
    pub paper_us: f64,
}

/// Experiment E2: the Related Work comparison — 120-byte message latency
/// for FLIPC, PAM, SUNMOS and NX on the same simulated machine.
pub fn comparison_table(seed: u64) -> Vec<ComparisonRow> {
    fn measure(model: &mut dyn MessagingModel, seed: u64) -> f64 {
        let mut env = SimEnv::paragon_pair(seed);
        pingpong(model, &mut env, NodeId(0), NodeId(1), 120, 20, 200).mean() / 1000.0
    }
    vec![
        ComparisonRow {
            system: "FLIPC",
            latency_us: measure(&mut FlipcParagonModel::tuned(), seed),
            paper_us: 16.2,
        },
        ComparisonRow {
            system: "PAM",
            latency_us: measure(&mut PamModel::default(), seed),
            paper_us: 26.0,
        },
        ComparisonRow {
            system: "SUNMOS",
            latency_us: measure(&mut SunmosModel::default(), seed),
            paper_us: 28.0,
        },
        ComparisonRow {
            system: "NX",
            latency_us: measure(&mut NxModel::default(), seed),
            paper_us: 46.0,
        },
    ]
}

/// One tuning-ablation row (experiment E3).
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Configuration label.
    pub config: &'static str,
    /// Mean 120-byte latency, µs.
    pub latency_us: f64,
}

/// Experiment E3: the cache-tuning ablation — 120-byte latency across
/// {locked, lockless} x {false-shared, padded}. The paper reports the two
/// fixes together bought ~15µs, "almost a factor of two".
pub fn ablation_cache_tuning(seed: u64) -> Vec<AblationRow> {
    let configs = [
        (
            "locked + false-shared (untuned)",
            FlipcModelConfig::untuned(),
        ),
        (
            "locked + padded",
            FlipcModelConfig {
                locked_ops: true,
                padded_layout: true,
                checks: false,
            },
        ),
        (
            "lockless + false-shared",
            FlipcModelConfig {
                locked_ops: false,
                padded_layout: false,
                checks: false,
            },
        ),
        ("lockless + padded (tuned)", FlipcModelConfig::tuned()),
    ];
    configs
        .into_iter()
        .map(|(name, cfg)| {
            let mut env = SimEnv::paragon_pair(seed);
            let mut m = FlipcParagonModel::new(cfg);
            let us = pingpong(&mut m, &mut env, NodeId(0), NodeId(1), 120, 20, 200).mean() / 1000.0;
            AblationRow {
                config: name,
                latency_us: us,
            }
        })
        .collect()
}

/// Experiment E4: validity checks on vs off (paper: +~2µs).
pub fn ablation_validity_checks(seed: u64) -> (f64, f64) {
    let measure = |checks: bool| {
        let mut env = SimEnv::paragon_pair(seed);
        let mut m = FlipcParagonModel::new(FlipcModelConfig {
            checks,
            ..FlipcModelConfig::tuned()
        });
        pingpong(&mut m, &mut env, NodeId(0), NodeId(1), 120, 20, 200).mean() / 1000.0
    };
    (measure(false), measure(true))
}

/// Experiment E5: the cold-start transient. Returns (short-run mean µs,
/// steady-state mean µs): short runs start with flushed caches and include
/// every exchange; the paper saw them ~3µs faster than steady state.
pub fn startup_transient(seed: u64, short_exchanges: u32) -> (f64, f64) {
    // Short runs: flush, then measure a handful of exchanges from cold,
    // repeating to accumulate samples.
    let mut short = RunningStats::new();
    for rep in 0..50u64 {
        let mut env = SimEnv::paragon_pair(seed ^ rep);
        let mut m = FlipcParagonModel::tuned();
        FlipcParagonModel::cold_start(&mut env);
        let s = pingpong(
            &mut m,
            &mut env,
            NodeId(0),
            NodeId(1),
            120,
            0,
            short_exchanges,
        );
        short.push(s.mean());
    }
    // Steady state: hundreds of exchanges, warmup excluded.
    let mut env = SimEnv::paragon_pair(seed);
    let mut m = FlipcParagonModel::tuned();
    let steady = pingpong(&mut m, &mut env, NodeId(0), NodeId(1), 120, 100, 400);
    (short.mean() / 1000.0, steady.mean() / 1000.0)
}

/// One bandwidth-table row (experiment E7).
#[derive(Clone, Debug)]
pub struct BandwidthRow {
    /// Label (system + workload).
    pub label: &'static str,
    /// Measured MB/s.
    pub mb_per_s: f64,
    /// The paper's point of comparison, MB/s.
    pub paper_mb_per_s: f64,
}

/// Experiment E7: bandwidth points — FLIPC streaming medium/large fixed
/// messages (paper: the 6.25 ns/B slope implies >150 MB/s on the 200 MB/s
/// mesh), NX bulk (>140), SUNMOS bulk (~160).
pub fn bandwidth_table(seed: u64) -> Vec<BandwidthRow> {
    let flipc = {
        let mut env = SimEnv::paragon_pair(seed);
        let mut m = FlipcParagonModel::tuned();
        stream_bandwidth(&mut m, &mut env, NodeId(0), NodeId(1), 1016, 2000)
    };
    let nx = {
        let mut env = SimEnv::paragon_pair(seed);
        let mut m = NxModel::default();
        stream_bandwidth(&mut m, &mut env, NodeId(0), NodeId(1), 4 << 20, 4)
    };
    let sunmos = {
        let mut env = SimEnv::paragon_pair(seed);
        let mut m = SunmosModel::default();
        stream_bandwidth(&mut m, &mut env, NodeId(0), NodeId(1), 4 << 20, 4)
    };
    vec![
        BandwidthRow {
            label: "FLIPC (1016B msgs)",
            mb_per_s: flipc,
            paper_mb_per_s: 150.0,
        },
        BandwidthRow {
            label: "NX (4MB bulk)",
            mb_per_s: nx,
            paper_mb_per_s: 140.0,
        },
        BandwidthRow {
            label: "SUNMOS (4MB bulk)",
            mb_per_s: sunmos,
            paper_mb_per_s: 160.0,
        },
    ]
}

/// Result of the responsiveness experiment (E8).
#[derive(Clone, Copy, Debug)]
pub struct ResponsivenessResult {
    /// Stream latency with no competing bulk transfer: mean µs.
    pub baseline_mean_us: f64,
    /// Worst stream latency with no bulk, µs.
    pub baseline_max_us: f64,
    /// Worst stream latency while a SUNMOS 4MB single-packet transfer
    /// crosses the path, µs.
    pub sunmos_max_us: f64,
    /// Worst stream latency while the same 4MB moves as FLIPC fixed-size
    /// messages, µs.
    pub flipc_chunked_max_us: f64,
}

/// Experiment E8: a periodic 120-byte real-time stream (node 1 -> 2 on a
/// 4x1 mesh) crossed by a 4MB transfer (node 0 -> 3, sharing the 1->2
/// link). SUNMOS sends the 4MB as one wormhole packet that owns the path
/// for its full serialization; FLIPC moves it as fixed-size messages that
/// interleave with the stream.
pub fn responsiveness(seed: u64) -> ResponsivenessResult {
    const STREAM_PERIOD_NS: u64 = 150_000;
    const STREAM_COUNT: u64 = 300;
    const BULK_BYTES: u64 = 4 << 20;
    const BULK_AT_NS: u64 = 5_000_000;
    const CHUNK: u64 = 1016;

    /// A bulk-traffic injector: called at its scheduled time, returns the
    /// next injection time (or `None` when the transfer is finished).
    type BulkInjector = Box<dyn FnMut(&mut SimEnv, SimTime) -> Option<SimTime>>;

    fn stream_latencies(seed: u64, mut bulk: Option<BulkInjector>) -> (f64, f64) {
        let mut env = SimEnv::new(4, 1, flipc_sim::cost::CostModel::paragon(), seed);
        let mut stream_model = FlipcParagonModel::tuned();
        // Warm the stream's caches.
        for i in 0..20 {
            let t = SimTime::from_ns(i * 1_000);
            stream_model.one_way(&mut env, t, NodeId(1), NodeId(2), 120);
        }
        let mut stats = RunningStats::new();
        let mut next_bulk_time = SimTime::from_ns(BULK_AT_NS);
        for i in 0..STREAM_COUNT {
            let t = SimTime::from_ns(100_000 + i * STREAM_PERIOD_NS);
            // Inject any bulk activity that happens before this stream
            // message (time-ordered interleaving of the two traffics).
            if let Some(b) = bulk.as_mut() {
                while next_bulk_time <= t {
                    match b(&mut env, next_bulk_time) {
                        Some(next) => next_bulk_time = next,
                        None => {
                            bulk = None;
                            break;
                        }
                    }
                }
            }
            let done = stream_model.one_way(&mut env, t, NodeId(1), NodeId(2), 120);
            stats.push((done - t).as_ns() as f64);
        }
        (stats.mean() / 1000.0, stats.max() / 1000.0)
    }

    // Baseline: stream alone.
    let (baseline_mean, baseline_max) = stream_latencies(seed, None);

    // SUNMOS: one 4MB packet injected at BULK_AT.
    let mut fired = false;
    let (_, sunmos_max) = stream_latencies(
        seed,
        Some(Box::new(move |env, now| {
            if fired {
                return None;
            }
            fired = true;
            let mut s = SunmosModel::default();
            s.one_way(env, now, NodeId(0), NodeId(3), BULK_BYTES);
            None
        })),
    );

    // FLIPC: the same bytes as back-to-back fixed-size messages; the
    // closure sends one chunk and returns the next injection time.
    let mut remaining = BULK_BYTES.div_ceil(CHUNK);
    let mut chunk_model = FlipcParagonModel::tuned();
    let (_, flipc_max) = stream_latencies(
        seed,
        Some(Box::new(move |env, now| {
            if remaining == 0 {
                return None;
            }
            remaining -= 1;
            chunk_model.one_way(env, now, NodeId(0), NodeId(3), CHUNK);
            let gap = chunk_model.source_gap(env, CHUNK);
            Some(now + gap)
        })),
    );

    ResponsivenessResult {
        baseline_mean_us: baseline_mean,
        baseline_max_us: baseline_max,
        sunmos_max_us: sunmos_max,
        flipc_chunked_max_us: flipc_max,
    }
}

/// Experiment E6: the PAM small-message point — 20-byte latency for PAM vs
/// FLIPC (paper: PAM under 10µs, "about a third faster than FLIPC would be
/// on a 20 byte message"), plus PAM's per-message copy cost in ns.
pub fn pam_small_message(seed: u64) -> (f64, f64, u64) {
    let mut env = SimEnv::paragon_pair(seed);
    let mut pam = PamModel::default();
    let pam_us = pingpong(&mut pam, &mut env, NodeId(0), NodeId(1), 20, 20, 200).mean() / 1000.0;
    let mut env = SimEnv::paragon_pair(seed);
    let mut flipc = FlipcParagonModel::tuned();
    let flipc_us =
        pingpong(&mut flipc, &mut env, NodeId(0), NodeId(1), 20, 20, 200).mean() / 1000.0;
    (pam_us, flipc_us, flipc_baselines::pam::PAM_COPY.as_ns())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_sweep_produces_32_byte_steps_from_56() {
        let rows = fig4_sweep(1, 248, 40);
        let sizes: Vec<u64> = rows.iter().map(|r| r.msg_bytes).collect();
        assert_eq!(sizes, vec![56, 88, 120, 152, 184, 216, 248]);
        for r in &rows {
            assert!(r.mean_us > 10.0 && r.mean_us < 25.0, "wild point: {r:?}");
            assert!(r.stddev_us >= 0.0);
        }
    }

    #[test]
    fn fig4_fit_respects_min_bytes_filter() {
        let rows = fig4_sweep(1, 504, 60);
        let all = fig4_fit(&rows, 0);
        let filtered = fig4_fit(&rows, 96);
        // The 56-byte discount point drags the unfiltered fit; excluding it
        // (as the paper does) must change the intercept.
        assert!((all.intercept - filtered.intercept).abs() > 1e-6);
    }

    #[test]
    fn comparison_table_has_all_four_systems_with_paper_values() {
        let rows = comparison_table(9);
        let names: Vec<&str> = rows.iter().map(|r| r.system).collect();
        assert_eq!(names, vec!["FLIPC", "PAM", "SUNMOS", "NX"]);
        for r in &rows {
            assert!(r.paper_us > 0.0);
            assert!(r.latency_us > 0.0);
        }
    }

    #[test]
    fn ablation_rows_cover_the_four_configurations() {
        let rows = ablation_cache_tuning(9);
        assert_eq!(rows.len(), 4);
        assert!(rows[0].config.contains("untuned"));
        assert!(rows[3].config.contains("tuned"));
    }

    #[test]
    fn experiments_are_deterministic_per_seed() {
        assert_eq!(
            comparison_table(7)
                .iter()
                .map(|r| r.latency_us)
                .collect::<Vec<_>>(),
            comparison_table(7)
                .iter()
                .map(|r| r.latency_us)
                .collect::<Vec<_>>()
        );
        let a = responsiveness(7);
        let b = responsiveness(7);
        assert_eq!(a.sunmos_max_us, b.sunmos_max_us);
        assert_eq!(a.flipc_chunked_max_us, b.flipc_chunked_max_us);
    }

    #[test]
    fn different_seeds_jitter_the_means_but_not_the_shapes() {
        let a = comparison_table(1);
        let b = comparison_table(2);
        // Jitter within a fraction of a microsecond.
        for (x, y) in a.iter().zip(&b) {
            assert!(
                (x.latency_us - y.latency_us).abs() < 0.5,
                "{}: {x:?} vs {y:?}",
                x.system
            );
        }
        // Ordering identical.
        let order = |rows: &[ComparisonRow]| {
            let mut v: Vec<(&str, f64)> = rows.iter().map(|r| (r.system, r.latency_us)).collect();
            v.sort_by(|p, q| p.1.partial_cmp(&q.1).expect("no NaN"));
            v.into_iter().map(|p| p.0).collect::<Vec<_>>()
        };
        assert_eq!(order(&a), order(&b));
    }
}

/// One offered-load row (extension experiment E11).
#[derive(Clone, Copy, Debug)]
pub struct LoadRow {
    /// Offered load in MB/s of application payload.
    pub offered_mb_s: f64,
    /// Mean end-to-end latency, µs (including source queueing).
    pub mean_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// Delivered throughput, MB/s.
    pub delivered_mb_s: f64,
}

/// Extension experiment E11: latency of a 120-byte FLIPC stream vs offered
/// load. The paper gives the two endpoints of this curve — ~16.2µs at low
/// load (Figure 4) and >150 MB/s saturation (the slope) — and this
/// experiment fills in the queueing behaviour between them: latency stays
/// near the floor until the source approaches the per-message service
/// bound, then queueing delay takes over.
pub fn load_latency(seed: u64, payload: u64, offered_mb_s: &[f64]) -> Vec<LoadRow> {
    const MESSAGES: usize = 1_000;
    let mut rows = Vec::new();
    for &load in offered_mb_s {
        let mut env = SimEnv::paragon_pair(seed ^ load.to_bits());
        let mut model = FlipcParagonModel::tuned();
        // Warm the caches to steady state.
        pingpong(&mut model, &mut env, NodeId(0), NodeId(1), payload, 30, 1);

        // Poisson arrivals at the offered rate; the source (app + engine +
        // NIC) serves them no faster than the per-message source gap.
        let mean_gap_ns = payload as f64 / load * 1_000.0;
        let mut stats = RunningStats::new();
        let mut samples = Vec::with_capacity(MESSAGES);
        let mut arrival = 10_000_000.0f64; // clear of warmup traffic
        let mut source_free = SimTime::from_ns(10_000_000);
        let mut last_delivery = SimTime::ZERO;
        let first_arrival = arrival;
        for _ in 0..MESSAGES {
            arrival += -mean_gap_ns * env.rng.f64().max(1e-12).ln();
            let at = SimTime::from_ns(arrival as u64);
            let start = at.max(source_free);
            let done = model.one_way(&mut env, start, NodeId(0), NodeId(1), payload);
            source_free = start + model.source_gap(&env, payload);
            let latency_ns = (done - at).as_ns() as f64;
            stats.push(latency_ns);
            samples.push(latency_ns);
            last_delivery = done;
        }
        let span_ns = last_delivery.as_ns() as f64 - first_arrival;
        rows.push(LoadRow {
            offered_mb_s: load,
            mean_us: stats.mean() / 1000.0,
            p99_us: crate::experiments::percentile_us(&mut samples),
            delivered_mb_s: (MESSAGES as u64 * payload) as f64 / span_ns * 1_000.0,
        });
    }
    rows
}

fn percentile_us(samples: &mut [f64]) -> f64 {
    flipc_sim::stats::percentile(samples, 99.0) / 1000.0
}
