//! The calibrated MP3-node model of the FLIPC protocol.
//!
//! [`FlipcParagonModel`] executes the *actual* FLIPC transfer sequence —
//! the same step order as the real implementation in `flipc-core` /
//! `flipc-engine` — against the coherent-cache model of `flipc-sim` and the
//! wormhole mesh of `flipc-mesh`, charging each load, store, locked RMW,
//! DMA setup, and wire byte its Paragon cost. Four switches select the
//! configurations the paper measured:
//!
//! * `locked_ops` — TAS mutual exclusion per application call (the
//!   Paragon's bus-locked, uncached test-and-set) vs the unlocked variants
//!   all of the paper's results use;
//! * `padded_layout` — application-written and engine-written fields on
//!   separate 32-byte lines vs the pre-fix false-shared layout;
//! * `checks` — engine validity checks (+~2µs);
//! * the cold-start transient needs no switch: it emerges from starting
//!   the caches Invalid ([`FlipcParagonModel::cold_start`]).
//!
//! Calibration: the two anchors are 16.2µs @ 120 application bytes and the
//! 6.25 ns/byte slope (wire 5 ns/B + 1.25 ns/B of DMA per-line handling).
//! Everything else — the ~2x tuning ablation, the +2µs checks delta, the
//! ~3µs cold-start effect — is emergent from protocol structure and the
//! shared cache-cost parameters.

use flipc_baselines::model::{MessagingModel, SimEnv};
use flipc_mesh::dma::DmaConstraints;
use flipc_mesh::topology::NodeId;
use flipc_sim::cache::{CoherentBus, CpuId, CPU_APP, CPU_MCP};
use flipc_sim::time::{SimDuration, SimTime};

/// FLIPC's per-message header bytes (addressing + synchronization).
const MSG_HEADER: u64 = 8;

/// Per-node virtual addresses of the protocol's shared fields.
///
/// Only *relative line placement* matters to the cache model; the numbers
/// are arbitrary line-aligned offsets.
#[derive(Clone, Copy, Debug)]
struct FieldMap {
    /// Send endpoint, application-written line (release, acquire, waiters).
    send_app: u64,
    /// Send endpoint, engine-written line (process, drops).
    send_engine: u64,
    /// Send endpoint TAS lock word.
    send_lock: u64,
    /// Send endpoint ring slots (application-written, engine-read).
    send_slot: u64,
    /// Send endpoint config line (read-only after allocation).
    send_cfg: u64,
    /// Receive endpoint equivalents.
    recv_app: u64,
    recv_engine: u64,
    recv_lock: u64,
    recv_slot: u64,
    recv_cfg: u64,
    /// Send-direction message buffer header word.
    send_buf_hdr: u64,
    /// Receive-direction message buffer header word.
    recv_buf_hdr: u64,
    /// The engine event loop's per-endpoint scan bookkeeping, written on
    /// every poll iteration. The tuning fix moved this onto an
    /// engine-private line; the pre-fix layout kept it beside the
    /// application's queue words — the concurrent-writers false sharing
    /// the paper eliminated.
    engine_scan: u64,
}

fn field_map(padded: bool) -> FieldMap {
    if padded {
        // One 32-byte line per field group: no line is written by both
        // sides (the post-tuning layout, as in `flipc_core::layout`).
        FieldMap {
            send_app: 0,
            send_engine: 32,
            send_lock: 64,
            send_slot: 96,
            send_cfg: 128,
            recv_app: 160,
            recv_engine: 192,
            recv_lock: 224,
            recv_slot: 256,
            recv_cfg: 288,
            send_buf_hdr: 320,
            recv_buf_hdr: 352,
            engine_scan: 384,
        }
    } else {
        // The pre-fix layout: each endpoint's app-written and engine-
        // written variables share one 32-byte line (offsets 0 and 16 land
        // in the same line), so every handshake write invalidates the
        // other processor's copy of the *other* side's variables too.
        FieldMap {
            send_app: 0,
            send_engine: 16,
            send_lock: 64,
            send_slot: 8, // same line as send_app/send_engine
            send_cfg: 128,
            recv_app: 160,
            recv_engine: 176,
            recv_lock: 224,
            recv_slot: 168, // same line as recv_app/recv_engine
            recv_cfg: 288,
            send_buf_hdr: 320,
            recv_buf_hdr: 352,
            engine_scan: 12, // same line as send_app/send_slot
        }
    }
}

/// Configuration switches of the model.
#[derive(Clone, Copy, Debug)]
pub struct FlipcModelConfig {
    /// TAS-locked application calls (vs the unlocked single-thread
    /// variants used for all of the paper's measurements).
    pub locked_ops: bool,
    /// Cache-line-separated layout (vs the false-shared pre-fix layout).
    pub padded_layout: bool,
    /// Engine validity checks configured in.
    pub checks: bool,
}

impl FlipcModelConfig {
    /// The optimized configuration of Figure 4: unlocked, padded, checks
    /// off.
    pub fn tuned() -> Self {
        FlipcModelConfig {
            locked_ops: false,
            padded_layout: true,
            checks: false,
        }
    }

    /// The pre-tuning configuration: locked operations on a false-shared
    /// layout (what the implementation section started from).
    pub fn untuned() -> Self {
        FlipcModelConfig {
            locked_ops: true,
            padded_layout: false,
            checks: false,
        }
    }
}

/// Fixed software costs of the model, calibrated once (see module docs).
#[derive(Clone, Copy, Debug)]
pub struct FlipcSoftwareCosts {
    /// Mean gap of the coprocessor's event loop (a message arriving at a
    /// random phase waits U(0, poll_gap)); also the jitter source that
    /// reproduces the paper's 0.5–0.65µs standard deviations.
    pub poll_gap: SimDuration,
    /// Per-message fixed work in the coprocessor's protocol framework on
    /// the sending side (the FLIPC protocol coexists with the OSF/1 AD
    /// protocols in one event loop).
    pub engine_sw_tx: SimDuration,
    /// Same, receiving side.
    pub engine_sw_rx: SimDuration,
    /// Fixed library-call overhead per application call on the path.
    pub call_overhead: SimDuration,
    /// Validity-check work per engine pass when configured (paper: the
    /// checks add ~2µs per message; they run on both coprocessors).
    pub checks_cost: SimDuration,
    /// DMA programming cost per transfer.
    pub dma_setup: SimDuration,
    /// Per-32-byte-line DMA streaming cost (with the 5 ns/B wire this
    /// yields the 6.25 ns/B slope: 40ns / 32B = 1.25 ns/B).
    pub dma_per_line: SimDuration,
    /// Discount for messages that fit one minimum DMA transfer ("shorter
    /// messages can be sent slightly faster due to changes in hardware
    /// behavior").
    pub small_msg_discount: SimDuration,
    /// Application receive-poll granularity (tight loop on the process
    /// pointer).
    pub app_poll_gap: SimDuration,
}

impl Default for FlipcSoftwareCosts {
    fn default() -> Self {
        FlipcSoftwareCosts {
            poll_gap: SimDuration::from_ns(2_600),
            engine_sw_tx: SimDuration::from_ns(250),
            engine_sw_rx: SimDuration::from_ns(300),
            call_overhead: SimDuration::from_ns(150),
            checks_cost: SimDuration::from_ns(1_000),
            dma_setup: SimDuration::from_ns(550),
            dma_per_line: SimDuration::from_ns(40),
            small_msg_discount: SimDuration::from_ns(400),
            app_poll_gap: SimDuration::from_ns(200),
        }
    }
}

/// Per-phase decomposition of the last modeled message (for reports).
#[derive(Clone, Copy, Debug, Default)]
pub struct Breakdown {
    /// Sender application library work.
    pub sender_app_ns: u64,
    /// Source coprocessor work (including poll pickup).
    pub src_engine_ns: u64,
    /// Mesh + DMA transfer.
    pub wire_ns: u64,
    /// Destination coprocessor work.
    pub dst_engine_ns: u64,
    /// Receiver application library work (including poll pickup).
    pub dst_app_ns: u64,
}

/// Message buffers in rotation per direction. Real FLIPC applications
/// cycle buffers through the endpoint ring, so consecutive messages touch
/// *different* buffer headers; this is what makes the paper's cold-start
/// transient span several exchanges rather than one.
const BUFFER_POOL: u64 = 8;

/// The FLIPC-on-Paragon timing model.
pub struct FlipcParagonModel {
    cfg: FlipcModelConfig,
    sw: FlipcSoftwareCosts,
    fields: FieldMap,
    /// Messages modeled so far (selects the rotating buffer slot).
    seq: u64,
    /// Decomposition of the most recent `one_way`.
    pub last: Breakdown,
}

impl FlipcParagonModel {
    /// Builds a model in the given configuration with default calibrated
    /// software costs.
    pub fn new(cfg: FlipcModelConfig) -> FlipcParagonModel {
        FlipcParagonModel {
            cfg,
            sw: FlipcSoftwareCosts::default(),
            fields: field_map(cfg.padded_layout),
            seq: 0,
            last: Breakdown::default(),
        }
    }

    /// The paper's optimized configuration.
    pub fn tuned() -> FlipcParagonModel {
        FlipcParagonModel::new(FlipcModelConfig::tuned())
    }

    /// Replaces the software-cost parameters (sensitivity analysis).
    pub fn set_software_costs(&mut self, sw: FlipcSoftwareCosts) {
        self.sw = sw;
    }

    /// The current software-cost parameters.
    pub fn software_costs(&self) -> FlipcSoftwareCosts {
        self.sw
    }

    /// Flushes every cache on the machine — the start-of-run state for the
    /// cold-start-transient experiment (E5).
    pub fn cold_start(env: &mut SimEnv) {
        for bus in &mut env.caches {
            bus.flush_machine();
        }
    }

    /// Total wire bytes for `payload` application bytes (header + DMA
    /// padding).
    pub fn wire_bytes(payload: u64) -> u64 {
        DmaConstraints::PARAGON.pad_size(payload + MSG_HEADER)
    }

    /// Current send-buffer header address (rotates through the pool).
    fn send_hdr(&self) -> u64 {
        self.fields.send_buf_hdr + (self.seq % BUFFER_POOL) * 1024
    }

    /// Current receive-buffer header address (rotates through the pool).
    fn recv_hdr(&self) -> u64 {
        self.fields.recv_buf_hdr + (self.seq % BUFFER_POOL) * 1024
    }

    // ---- protocol phases -------------------------------------------------
    //
    // The other processor never sits idle while a phase runs: the
    // coprocessor's event loop keeps polling the send-endpoint release
    // lines while the application works, and a ping-ponging application
    // keeps polling the receive-endpoint process line while the
    // coprocessor works. `Seq` interleaves one such "spy" read before every
    // access, which is precisely what makes false sharing expensive: with
    // app- and engine-written fields in one line, every spy poll steals the
    // line back and the actor's next access misses again. With the padded
    // layout the spy only disturbs the one line it legitimately polls.

    /// Sender application: reclaim the previous buffer, fill and queue this
    /// one (API calls: reclaim_send + send; the unlocked variants skip the
    /// TAS pair per call). The source coprocessor concurrently polls the
    /// send endpoint's release line.
    fn sender_app(&self, bus: &mut CoherentBus, app: CpuId) -> SimDuration {
        let f = &self.fields;
        let mut s = Seq {
            bus,
            actor: app,
            spy: CPU_MCP,
            spy_addr: f.send_app,
            spy_write: Some(f.engine_scan),
            t: SimDuration::ZERO,
        };
        if self.cfg.locked_ops {
            s.rmw(f.send_lock); // reclaim: lock
            s.write(f.send_lock, 4); //      unlock
        }
        // Reclaim previous send buffer (steady-state ping-pong keeps one
        // buffer cycling): read process, bump acquire.
        s.read(f.send_engine, 4);
        s.write(f.send_app + 4, 4);
        s.fixed(self.sw.call_overhead);
        if self.cfg.locked_ops {
            s.rmw(f.send_lock); // send: lock
        }
        // Queue the message: header (dest + Queued), ring slot, release.
        s.write(self.send_hdr(), 8);
        s.read(f.send_app, 4); // release
        s.read(f.send_app + 4, 4); // acquire (full check)
        s.write(f.send_slot, 4);
        s.write(f.send_app, 4); // release++
        if self.cfg.locked_ops {
            s.write(f.send_lock, 4); // unlock
        }
        s.fixed(self.sw.call_overhead);
        s.t
    }

    /// Source coprocessor: poll pickup, read the queue, program the DMA.
    /// The sending application has moved on to polling its receive
    /// endpoint for the reply.
    fn src_engine(&self, env: &mut SimEnv, node: usize, pickup: SimDuration) -> SimDuration {
        let f = self.fields;
        let bus = &mut env.caches[node];
        let mut s = Seq {
            bus,
            actor: CPU_MCP,
            spy: CPU_APP,
            spy_addr: f.recv_engine,
            spy_write: None,
            t: pickup,
        };
        s.read(f.send_app, 4); // release (new value)
        s.read(f.send_slot, 4);
        s.read(self.send_hdr(), 8); // dest address
        s.read(f.send_cfg, 4); // endpoint state
        if self.cfg.checks {
            s.fixed(self.sw.checks_cost);
        }
        s.fixed(self.sw.dma_setup);
        s.write(f.send_engine, 4); // process++
        s.write(self.send_hdr(), 8); // state = Processed
        s.fixed(self.sw.engine_sw_tx);
        s.t
    }

    /// Destination coprocessor: validate, deliver into the queued buffer.
    /// The receiving application is concurrently polling the receive
    /// endpoint's process line.
    fn dst_engine(&self, env: &mut SimEnv, node: usize) -> SimDuration {
        let f = self.fields;
        let bus = &mut env.caches[node];
        let mut s = Seq {
            bus,
            actor: CPU_MCP,
            spy: CPU_APP,
            spy_addr: f.recv_engine,
            spy_write: None,
            t: SimDuration::ZERO,
        };
        s.read(f.recv_cfg, 4); // gen/active/type
        if self.cfg.checks {
            s.fixed(self.sw.checks_cost);
        }
        s.read(f.recv_app, 4); // release: buffer available?
        s.read(f.recv_slot, 4);
        s.write(self.recv_hdr(), 8); // src + Processed
        s.write(f.recv_engine, 4); // process++
        s.read(f.recv_app + 8, 4); // waiters
        s.fixed(self.sw.engine_sw_rx);
        s.t
    }

    /// Receiver application: poll, dequeue, recycle the buffer back onto
    /// the ring (API calls: recv + provide_receive_buffer). The coprocessor
    /// is back in its event loop, polling the send endpoint's release line.
    fn dst_app(&self, bus: &mut CoherentBus, app: CpuId, pickup: SimDuration) -> SimDuration {
        let f = &self.fields;
        let mut s = Seq {
            bus,
            actor: app,
            spy: CPU_MCP,
            spy_addr: f.send_app,
            spy_write: Some(f.engine_scan),
            t: pickup,
        };
        if self.cfg.locked_ops {
            s.rmw(f.recv_lock); // recv: lock
        }
        s.read(f.recv_engine, 4); // process (new value)
        s.read(f.recv_slot, 4);
        s.read(self.recv_hdr(), 8); // source address + state
        s.write(self.recv_hdr(), 8); // state = Free
        s.write(f.recv_app + 4, 4); // acquire++
        if self.cfg.locked_ops {
            s.write(f.recv_lock, 4); // unlock
        }
        s.fixed(self.sw.call_overhead);
        // Re-provide the buffer for the next arrival.
        if self.cfg.locked_ops {
            s.rmw(f.recv_lock);
        }
        s.write(self.recv_hdr(), 8); // state = Queued
        s.write(f.recv_slot, 4);
        s.write(f.recv_app, 4); // release++
        if self.cfg.locked_ops {
            s.write(f.recv_lock, 4);
        }
        s.fixed(self.sw.call_overhead);
        s.t
    }
}

/// A phase's access sequence: charges the actor for its accesses while a
/// concurrent "spy" read (the other processor's poll loop) is interleaved
/// before each one.
///
/// The spy's reads are free when they hit in the spy's own cache (a quiet
/// line polls for free — the padded-layout case). But when the actor keeps
/// dirtying the polled line — the false-sharing pathology — every poll
/// becomes a bus transaction (miss + cache-to-cache transfer), and on the
/// MP3 node's single shared bus that transaction stalls the actor's own
/// next access. That serialization is what the paper observed as
/// "excessive numbers of cache invalidations" costing almost 2x, and it is
/// charged here as actor time whenever a spy poll misses.
struct Seq<'a> {
    bus: &'a mut CoherentBus,
    actor: CpuId,
    spy: CpuId,
    spy_addr: u64,
    /// Bookkeeping word the spy *writes* each poll (the engine's scan
    /// state); `None` for application spies, which only read.
    spy_write: Option<u64>,
    t: SimDuration,
}

impl Seq<'_> {
    fn spy_poll(&mut self) {
        let hit = {
            // Establish the hit cost (a second read always hits).
            let first = self.bus.read(self.spy, self.spy_addr, 4);
            let second = self.bus.read(self.spy, self.spy_addr, 4);
            debug_assert!(second <= first, "second read must hit");
            if first > second {
                // The poll missed: the bus is busy transferring the line
                // while the actor waits.
                self.t += first - second;
            }
            second
        };
        if let Some(addr) = self.spy_write {
            // The engine's scan-state update. On a line nobody else
            // touches this is a free cache hit; in the false-shared layout
            // it invalidates the application's queue words and the bus
            // transaction stalls the actor.
            let w = self.bus.write(self.spy, addr, 4);
            if w > hit {
                self.t += w - hit;
            }
        }
    }

    fn read(&mut self, addr: u64, len: u64) {
        self.spy_poll();
        self.t += self.bus.read(self.actor, addr, len);
    }

    fn write(&mut self, addr: u64, len: u64) {
        self.spy_poll();
        self.t += self.bus.write(self.actor, addr, len);
    }

    fn rmw(&mut self, addr: u64) {
        self.spy_poll();
        self.t += self.bus.locked_rmw(self.actor, addr);
    }

    fn fixed(&mut self, d: SimDuration) {
        self.t += d;
    }
}

impl MessagingModel for FlipcParagonModel {
    fn name(&self) -> &'static str {
        "FLIPC"
    }

    fn one_way(
        &mut self,
        env: &mut SimEnv,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        payload: u64,
    ) -> SimTime {
        let sn = src.0 as usize;
        let dn = dst.0 as usize;

        // Phase A: sender application queues the message.
        let a = self.sender_app(&mut env.caches[sn], CPU_APP);

        // Phase B: source coprocessor picks it up at a random point in its
        // event loop and programs the DMA.
        let pickup = SimDuration::from_ns(env.rng.below(self.sw.poll_gap.as_ns().max(1)));
        let b = self.src_engine(env, sn, pickup);

        // Wire: wormhole mesh + per-line DMA streaming.
        let bytes = Self::wire_bytes(payload);
        let injected = now + a + b;
        let mut arrival = env.net.transmit(injected, src, dst, bytes);
        arrival += self.sw.dma_per_line * bytes.div_ceil(32);
        if bytes <= DmaConstraints::PARAGON.min_size {
            // Single-minimum-transfer messages ride a cheaper hardware
            // path; never discount below half the flight time.
            let flight = arrival - injected;
            arrival = arrival - self.sw.small_msg_discount.min(flight / 2);
        }
        let w = arrival - injected;

        // Phase C: destination coprocessor delivers.
        let c = self.dst_engine(env, dn);

        // Phase D: receiver application polls it out and recycles.
        let pickup_rx = SimDuration::from_ns(env.rng.below(self.sw.app_poll_gap.as_ns().max(1)));
        let d = self.dst_app(&mut env.caches[dn], CPU_APP, pickup_rx);

        self.seq += 1;
        self.last = Breakdown {
            sender_app_ns: a.as_ns(),
            src_engine_ns: b.as_ns(),
            wire_ns: w.as_ns(),
            dst_engine_ns: c.as_ns(),
            dst_app_ns: d.as_ns(),
        };
        arrival + c + d
    }

    fn source_gap(&self, env: &SimEnv, payload: u64) -> SimDuration {
        // Streaming is paced by the slower of the wire (6.25 ns/B
        // effective) and the per-message engine occupancy.
        let bytes = Self::wire_bytes(payload);
        let wire = env.cost.wire_time(bytes) + self.sw.dma_per_line * bytes.div_ceil(32);
        let engine = self.sw.engine_sw_tx + self.sw.dma_setup + SimDuration::from_ns(2_500);
        wire.max(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipc_baselines::model::pingpong;
    use flipc_mesh::topology::NodeId;

    #[test]
    fn wire_bytes_pads_to_dma_rules() {
        // 8-byte header added, then padded to >=64 in 32-byte steps.
        assert_eq!(FlipcParagonModel::wire_bytes(0), 64);
        assert_eq!(FlipcParagonModel::wire_bytes(56), 64);
        assert_eq!(FlipcParagonModel::wire_bytes(57), 96);
        assert_eq!(FlipcParagonModel::wire_bytes(120), 128);
        assert_eq!(FlipcParagonModel::wire_bytes(1016), 1024);
    }

    #[test]
    fn model_is_deterministic_for_a_seed() {
        let run = || {
            let mut env = SimEnv::paragon_pair(99);
            let mut m = FlipcParagonModel::tuned();
            pingpong(&mut m, &mut env, NodeId(0), NodeId(1), 120, 10, 50).mean()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn breakdown_sums_to_one_way_latency() {
        let mut env = SimEnv::paragon_pair(5);
        let mut m = FlipcParagonModel::tuned();
        // Warm up, then check one steady message.
        pingpong(&mut m, &mut env, NodeId(0), NodeId(1), 120, 10, 1);
        let now = flipc_sim::time::SimTime::from_ns(10_000_000);
        let done = m.one_way(&mut env, now, NodeId(0), NodeId(1), 120);
        let b = m.last;
        let sum = b.sender_app_ns + b.src_engine_ns + b.wire_ns + b.dst_engine_ns + b.dst_app_ns;
        assert_eq!(
            (done - now).as_ns(),
            sum,
            "breakdown must account for every ns"
        );
    }

    #[test]
    fn latency_is_monotone_in_message_size() {
        let sample = |payload: u64| {
            let mut env = SimEnv::paragon_pair(7);
            let mut m = FlipcParagonModel::tuned();
            pingpong(&mut m, &mut env, NodeId(0), NodeId(1), payload, 20, 100).mean()
        };
        let sizes = [56u64, 120, 248, 504, 1016];
        let means: Vec<f64> = sizes.iter().map(|&s| sample(s)).collect();
        for w in means.windows(2) {
            assert!(w[0] < w[1], "latency must grow with size: {means:?}");
        }
    }

    #[test]
    fn locked_config_pays_the_bus_locked_tas() {
        let run = |cfg: FlipcModelConfig| {
            let mut env = SimEnv::paragon_pair(3);
            let mut m = FlipcParagonModel::new(cfg);
            pingpong(&mut m, &mut env, NodeId(0), NodeId(1), 120, 20, 100).mean()
        };
        let unlocked = run(FlipcModelConfig::tuned());
        let locked = run(FlipcModelConfig {
            locked_ops: true,
            ..FlipcModelConfig::tuned()
        });
        // 6 lock acquisitions on the round-trip path at 2.5us each -> the
        // gap per one-way must be several microseconds.
        assert!(
            locked - unlocked > 5_000.0,
            "locked {locked} vs unlocked {unlocked}"
        );
    }

    #[test]
    fn checks_cost_applies_on_both_coprocessors() {
        let run = |checks: bool| {
            let mut env = SimEnv::paragon_pair(3);
            let mut m = FlipcParagonModel::new(FlipcModelConfig {
                checks,
                ..FlipcModelConfig::tuned()
            });
            pingpong(&mut m, &mut env, NodeId(0), NodeId(1), 120, 20, 100).mean()
        };
        let delta = run(true) - run(false);
        let expect = 2.0 * FlipcSoftwareCosts::default().checks_cost.as_ns() as f64;
        assert!(
            (delta - expect).abs() < 50.0,
            "checks delta {delta} vs {expect}"
        );
    }

    #[test]
    fn cold_start_flushes_every_node() {
        let mut env = SimEnv::paragon_pair(4);
        let mut m = FlipcParagonModel::tuned();
        pingpong(&mut m, &mut env, NodeId(0), NodeId(1), 120, 0, 5);
        // After warmup there is cached state; flushing makes the next read
        // a miss again on both nodes.
        FlipcParagonModel::cold_start(&mut env);
        for node in 0..2 {
            let cost = env.caches[node].read(flipc_sim::cache::CPU_APP, 0, 4);
            assert!(cost >= flipc_sim::cost::CostModel::paragon().cache.miss);
        }
    }

    #[test]
    fn false_shared_map_actually_shares_lines() {
        let fs = field_map(false);
        assert_eq!(fs.send_app / 32, fs.send_engine / 32);
        assert_eq!(fs.send_app / 32, fs.engine_scan / 32);
        assert_eq!(fs.recv_app / 32, fs.recv_engine / 32);
        let padded = field_map(true);
        assert_ne!(padded.send_app / 32, padded.send_engine / 32);
        assert_ne!(padded.send_app / 32, padded.engine_scan / 32);
        assert_ne!(padded.recv_app / 32, padded.recv_engine / 32);
    }

    #[test]
    fn source_gap_is_wire_bound_for_large_and_engine_bound_for_small() {
        let env = SimEnv::paragon_pair(1);
        let m = FlipcParagonModel::tuned();
        let small = m.source_gap(&env, 56);
        let large = m.source_gap(&env, 1016);
        // Large messages: the wire dominates (6.25 ns/B of 1024 wire bytes).
        assert_eq!(large.as_ns(), 6400);
        // Small messages: the engine's per-message work dominates.
        assert!(small.as_ns() > 400);
        assert!(small < large);
    }
}
