//! FLIPC on the simulated Intel Paragon: the evaluation platform.
//!
//! The paper's measurements were taken on Paragon MP3 nodes (three 50MHz
//! i860s, one reserved as a message coprocessor, 32-byte cache lines, no
//! L2) over the Paragon wormhole mesh. This crate models the FLIPC
//! protocol's exact step sequence on that hardware:
//!
//! * [`model`] — [`model::FlipcParagonModel`], which charges every shared-
//!   memory access through the coherent-cache model and every transfer
//!   through the mesh simulator, with switches for the paper's
//!   configurations (locked/lockless, padded/false-shared, checks on/off);
//! * [`experiments`] — harnesses regenerating each simulated table and
//!   figure (Figure 4, the comparison table, both ablations, the
//!   cold-start transient, the bandwidth points, and the SUNMOS
//!   responsiveness experiment).
//!
//! Calibration policy (see DESIGN.md §5): two anchors — 16.2µs at 120
//! bytes and the 6.25 ns/byte slope — fix the free software-cost
//! parameters; every other number is emergent and is asserted by shape,
//! not by value.

pub mod experiments;
pub mod model;

pub use experiments::{
    ablation_cache_tuning, ablation_validity_checks, bandwidth_table, comparison_table, fig4_fit,
    fig4_sweep, pam_small_message, responsiveness, startup_transient, AblationRow, BandwidthRow,
    ComparisonRow, Fig4Row, ResponsivenessResult,
};
pub use model::{Breakdown, FlipcModelConfig, FlipcParagonModel, FlipcSoftwareCosts};
