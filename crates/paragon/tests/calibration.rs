//! Calibration anchors and shape assertions for the simulated evaluation.
//!
//! Per DESIGN.md §5: two anchors (16.2µs @ 120B and the 6.25 ns/B slope)
//! fix the model's free parameters; every other paper result must then
//! hold by *shape* — orderings, deltas, crossovers — and those shapes are
//! what these tests lock down. Exact-value matching beyond the anchors is
//! neither expected nor asserted.

use flipc_paragon::*;

// ---------------------------------------------------------------------
// E1 / Figure 4.
// ---------------------------------------------------------------------

#[test]
fn fig4_anchors_base_and_slope() {
    let rows = fig4_sweep(42, 1016, 200);
    let fit = fig4_fit(&rows, 96);
    // Paper: Latency = 15.45µs + 6.25 ns/B for sizes >= 96 bytes.
    assert!(
        (fit.intercept - 15.45).abs() < 0.4,
        "base {:.2}µs vs paper 15.45µs",
        fit.intercept
    );
    assert!(
        (fit.slope - 6.25).abs() < 0.15,
        "slope {:.3} vs paper 6.25 ns/B",
        fit.slope
    );
    assert!(
        fit.r2 > 0.99,
        "latency must be linear in size (r2 = {:.4})",
        fit.r2
    );
}

#[test]
fn fig4_latency_range_matches_paper_window() {
    // Paper: measured latencies for the plotted sizes range ~15.5–17µs.
    let rows = fig4_sweep(7, 248, 200);
    for r in &rows {
        assert!(
            (15.0..17.8).contains(&r.mean_us),
            "{}B: {:.2}µs outside the paper's plotted window",
            r.msg_bytes,
            r.mean_us
        );
    }
}

#[test]
fn fig4_standard_deviations_match_paper_band() {
    // Paper: standard deviations 0.5–0.65µs ("approximately the size of
    // the symbols").
    let rows = fig4_sweep(42, 504, 300);
    for r in &rows {
        assert!(
            (0.35..0.8).contains(&r.stddev_us),
            "{}B: stddev {:.2}µs outside the paper's band",
            r.msg_bytes,
            r.stddev_us
        );
    }
}

#[test]
fn fig4_shortest_messages_are_slightly_faster() {
    // Paper: "Shorter messages can be sent slightly faster due to changes
    // in hardware behavior" (below the 96-byte fit region).
    let rows = fig4_sweep(42, 504, 300);
    let fit = fig4_fit(&rows, 96);
    let smallest = &rows[0];
    assert_eq!(smallest.msg_bytes, 56);
    let predicted = fit.intercept + fit.slope * smallest.msg_bytes as f64 / 1000.0;
    assert!(
        smallest.mean_us < predicted - 0.1,
        "56B: {:.2}µs should undercut the fit ({predicted:.2}µs)",
        smallest.mean_us
    );
}

#[test]
fn fig4_slope_implies_more_than_150_mb_per_s() {
    // Paper: the 6.25 ns/B slope means medium-message streams use mesh
    // bandwidth at over 150 MB/s of the 200 MB/s peak.
    let rows = fig4_sweep(42, 1016, 200);
    let fit = fig4_fit(&rows, 96);
    let implied_mb_s = 1000.0 / fit.slope;
    assert!(
        implied_mb_s > 150.0,
        "implied bandwidth {implied_mb_s:.0} MB/s"
    );
    assert!(implied_mb_s < 200.0, "cannot exceed the mesh peak");
}

// ---------------------------------------------------------------------
// E2: the comparison table.
// ---------------------------------------------------------------------

#[test]
fn comparison_anchor_flipc_at_120_bytes() {
    let rows = comparison_table(42);
    let flipc = rows.iter().find(|r| r.system == "FLIPC").unwrap();
    assert!(
        (flipc.latency_us - 16.2).abs() < 0.4,
        "FLIPC 120B: {:.2}µs vs paper 16.2µs",
        flipc.latency_us
    );
}

#[test]
fn comparison_ordering_and_factors_hold() {
    let rows = comparison_table(42);
    let get = |name: &str| rows.iter().find(|r| r.system == name).unwrap().latency_us;
    let (flipc, pam, sunmos, nx) = (get("FLIPC"), get("PAM"), get("SUNMOS"), get("NX"));
    // Ordering: FLIPC < PAM < SUNMOS < NX.
    assert!(
        flipc < pam && pam < sunmos && sunmos < nx,
        "{flipc} {pam} {sunmos} {nx}"
    );
    // Factors: paper has 26/16.2 = 1.6, 28/16.2 = 1.7, 46/16.2 = 2.8.
    assert!((1.3..2.0).contains(&(pam / flipc)));
    assert!((1.4..2.1).contains(&(sunmos / flipc)));
    assert!((2.3..3.4).contains(&(nx / flipc)));
    // Each baseline lands near its published value (they are calibrated,
    // so this is a regression check on the calibration).
    assert!((pam - 26.0).abs() < 1.5);
    assert!((sunmos - 28.0).abs() < 1.5);
    assert!((nx - 46.0).abs() < 2.0);
}

// ---------------------------------------------------------------------
// E3: the cache-tuning ablation.
// ---------------------------------------------------------------------

#[test]
fn tuning_ablation_is_about_15us_and_almost_2x() {
    let rows = ablation_cache_tuning(42);
    let get = |name: &str| {
        rows.iter()
            .find(|r| r.config.starts_with(name))
            .unwrap()
            .latency_us
    };
    let untuned = get("locked + false-shared");
    let tuned = get("lockless + padded");
    let delta = untuned - tuned;
    let factor = untuned / tuned;
    // Paper: "improved latency by 15µs or almost a factor of two".
    assert!(
        (11.0..19.0).contains(&delta),
        "tuning delta {delta:.1}µs vs paper ~15µs"
    );
    assert!(
        (1.6..2.2).contains(&factor),
        "tuning factor {factor:.2} vs paper ~2x"
    );
}

#[test]
fn each_fix_helps_independently() {
    let rows = ablation_cache_tuning(42);
    let get = |name: &str| {
        rows.iter()
            .find(|r| r.config.starts_with(name))
            .unwrap()
            .latency_us
    };
    // Removing locks helps at either layout; padding helps at either lock
    // setting.
    assert!(get("lockless + false-shared") < get("locked + false-shared"));
    assert!(get("lockless + padded") < get("locked + padded"));
    assert!(get("locked + padded") < get("locked + false-shared"));
    assert!(get("lockless + padded") < get("lockless + false-shared"));
}

// ---------------------------------------------------------------------
// E4: validity checks.
// ---------------------------------------------------------------------

#[test]
fn validity_checks_add_about_2us() {
    let (off, on) = ablation_validity_checks(42);
    let delta = on - off;
    // Paper: "Configuring these checks adds an additional 2µs".
    assert!(
        (1.5..2.5).contains(&delta),
        "checks delta {delta:.2}µs vs paper ~2µs"
    );
}

// ---------------------------------------------------------------------
// E5: the cold-start transient.
// ---------------------------------------------------------------------

#[test]
fn short_runs_are_faster_than_steady_state() {
    // Paper: runs with a small number of exchanges are ~3µs faster than
    // steady state because lines shared in steady state are not yet
    // shared, so writes pay fewer invalidations. We assert the sign and
    // a conservative magnitude (>= 1µs); the gap shrinks as the short run
    // grows, which we also verify.
    let (short3, steady) = startup_transient(42, 3);
    assert!(
        steady - short3 > 1.0,
        "3-exchange runs ({short3:.2}µs) must undercut steady state ({steady:.2}µs)"
    );
    let (short10, _) = startup_transient(42, 10);
    assert!(
        short10 > short3,
        "the transient decays as the run lengthens"
    );
}

// ---------------------------------------------------------------------
// E6: PAM's small-message point.
// ---------------------------------------------------------------------

#[test]
fn pam_beats_flipc_at_20_bytes_by_about_a_third() {
    let (pam_us, flipc_us, copy_ns) = pam_small_message(42);
    // Paper: PAM < 10µs, "about a third faster than FLIPC would be on a
    // 20 byte message"; PAM copy < 0.2µs.
    assert!(pam_us < 10.0, "PAM 20B: {pam_us:.1}µs");
    let advantage = (flipc_us - pam_us) / flipc_us;
    assert!(
        (0.25..0.48).contains(&advantage),
        "PAM advantage {advantage:.2} vs paper ~1/3 (PAM {pam_us:.1} vs FLIPC {flipc_us:.1})"
    );
    assert!(copy_ns < 200);
}

// ---------------------------------------------------------------------
// E7: bandwidth points.
// ---------------------------------------------------------------------

#[test]
fn bandwidth_table_matches_published_points() {
    let rows = bandwidth_table(42);
    let get = |label: &str| {
        rows.iter()
            .find(|r| r.label.starts_with(label))
            .unwrap()
            .mb_per_s
    };
    assert!(
        get("FLIPC") > 150.0,
        "FLIPC stream {:.0} MB/s (paper: >150)",
        get("FLIPC")
    );
    assert!(
        (135.0..160.0).contains(&get("NX")),
        "NX {:.0} (paper: >140)",
        get("NX")
    );
    assert!(
        (150.0..165.0).contains(&get("SUNMOS")),
        "SUNMOS {:.0} (paper: ~160)",
        get("SUNMOS")
    );
    // Everything stays below the 200 MB/s hardware peak.
    for r in &rows {
        assert!(
            r.mb_per_s < 200.0,
            "{}: {:.0} exceeds the mesh peak",
            r.label,
            r.mb_per_s
        );
    }
}

// ---------------------------------------------------------------------
// E8: real-time responsiveness under a competing bulk transfer.
// ---------------------------------------------------------------------

#[test]
fn sunmos_single_packet_stalls_the_stream_flipc_chunks_do_not() {
    let r = responsiveness(42);
    // The paper's critique: a multi-megabyte single-packet message
    // occupies the interconnect path for its duration. A 4MB packet at
    // 200 MB/s holds its links ~21ms, so the crossing 120B stream's worst
    // case explodes by three orders of magnitude.
    assert!(
        r.sunmos_max_us > 1_000.0,
        "stream max under SUNMOS bulk: {:.0}µs — should be milliseconds",
        r.sunmos_max_us
    );
    // FLIPC moves the same bytes as fixed-size messages: the stream waits
    // at most a few chunk serializations.
    assert!(
        r.flipc_chunked_max_us < r.baseline_max_us + 50.0,
        "stream max under FLIPC-chunked bulk: {:.0}µs (baseline {:.0}µs)",
        r.flipc_chunked_max_us,
        r.baseline_max_us
    );
    assert!(r.sunmos_max_us / r.flipc_chunked_max_us > 100.0);
    // And the baseline itself is ordinary medium-message latency.
    assert!((15.0..19.0).contains(&r.baseline_mean_us));
}

// ---------------------------------------------------------------------
// E11 (extension): latency vs offered load.
// ---------------------------------------------------------------------

#[test]
fn load_latency_floor_and_saturation_match_the_anchors() {
    use flipc_paragon::experiments::load_latency;
    // Low offered load: latency sits at the Figure 4 floor.
    let low = &load_latency(42, 120, &[5.0])[0];
    assert!(
        (15.5..18.5).contains(&low.mean_us),
        "low-load 120B latency {:.1}µs should sit near the 16.2µs floor",
        low.mean_us
    );
    // 1KB messages deliver >150 MB/s when offered it (the slope's claim).
    let hot = &load_latency(42, 1016, &[150.0])[0];
    assert!(
        hot.delivered_mb_s > 145.0,
        "delivered {:.0} MB/s",
        hot.delivered_mb_s
    );
    // And latency grows monotonically toward saturation.
    let sweep = load_latency(42, 1016, &[20.0, 80.0, 140.0]);
    assert!(sweep[0].mean_us < sweep[1].mean_us);
    assert!(sweep[1].mean_us < sweep[2].mean_us);
}
