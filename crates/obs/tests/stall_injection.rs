//! Deterministic stall injection against a real engine.
//!
//! Uses the engine's existing capacity-control fault hook
//! (`set_rate_limit(ep, 0, 0)` fully blocks an endpoint; messages stay
//! queued, nothing is dropped) to freeze traffic for several detector
//! thresholds with a backlog queued, then unblocks and asserts the stall
//! analyzer reports exactly the injected stall — and, in the control run
//! without injection, reports nothing.
//!
//! The caller-pumped [`InlineCluster`] keeps everything single-threaded
//! and schedule-deterministic: the only nondeterminism left is the wall
//! clock, and the margins (threshold 200 ms, freeze 3×) are wide enough
//! that detection is a certainty, not a race.

use std::time::{Duration, Instant};

use flipc_core::endpoint::{EndpointType, Importance};
use flipc_core::layout::Geometry;
use flipc_engine::engine::EngineConfig;
use flipc_engine::node::InlineCluster;
use flipc_obs::stall::{scan, StallCause, StallConfig};
use flipc_obs::timeline::TimelineBuilder;
use flipc_obs::trace::TraceEvent;

const THRESHOLD: Duration = Duration::from_millis(200);
/// Enough queued messages that the resume flush trips the busy-work
/// attribution on both prongs (long-tail iteration and resume burst).
const BACKLOG: usize = 24;

/// Drives ping traffic node 0 → node 1 for `dur`, pumping continuously
/// so inter-event gaps stay far below the detector threshold.
fn drive(
    cl: &mut InlineCluster,
    tx: &flipc_core::api::LocalEndpoint,
    rx: &flipc_core::api::LocalEndpoint,
    dur: Duration,
) {
    let app0 = cl.node(0).attach();
    let app1 = cl.node(1).attach();
    let dest = app1.address(rx);
    let deadline = Instant::now() + dur;
    while Instant::now() < deadline {
        if let Ok(b) = app1.buffer_allocate() {
            if let Err(r) = app1.provide_receive_buffer_unlocked(rx, b) {
                app1.buffer_free(r.token);
            }
        }
        while let Ok(Some(t)) = app0.reclaim_send_unlocked(tx) {
            app0.buffer_free(t);
        }
        if let Ok(b) = app0.buffer_allocate() {
            if let Err(r) = app0.send_unlocked(tx, b, dest) {
                app0.buffer_free(r.token);
            }
        }
        cl.pump_until_idle(16);
        while let Ok(Some(got)) = app1.recv_unlocked(rx) {
            app1.buffer_free(got.token);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Builds the cluster, runs warmup traffic, optionally injects a
/// rate-limit freeze with a queued backlog, and returns the scan output.
fn run_scenario(inject: bool) -> Vec<flipc_obs::StallReport> {
    let geo = Geometry {
        ring_capacity: 64,
        buffers: 128,
        ..Geometry::small()
    };
    let mut cl = InlineCluster::new(2, geo, EngineConfig::default()).expect("cluster");
    let mut reader = cl.engine_mut(0).install_trace(8192);
    let telemetry = cl.engine_telemetry(0);

    let app0 = cl.node(0).attach();
    let app1 = cl.node(1).attach();
    let tx = app0
        .endpoint_allocate(EndpointType::Send, Importance::Normal)
        .expect("tx");
    let rx = app1
        .endpoint_allocate(EndpointType::Receive, Importance::Normal)
        .expect("rx");
    let dest = app1.address(&rx);

    drive(&mut cl, &tx, &rx, THRESHOLD / 4);

    if inject {
        // Fault hook: fully block the send endpoint, queue a backlog
        // behind it, and keep pumping — the engine runs but can move
        // nothing, so the trace goes silent for 3 thresholds.
        cl.engine_mut(0).set_rate_limit(tx.index(), 0, 0);
        for _ in 0..BACKLOG {
            if let Ok(b) = app1.buffer_allocate() {
                if let Err(r) = app1.provide_receive_buffer_unlocked(&rx, b) {
                    app1.buffer_free(r.token);
                }
            }
            let Ok(b) = app0.buffer_allocate() else { break };
            if let Err(r) = app0.send_unlocked(&tx, b, dest) {
                app0.buffer_free(r.token);
                break;
            }
        }
        let frozen_until = Instant::now() + 3 * THRESHOLD;
        while Instant::now() < frozen_until {
            cl.pump();
            std::thread::sleep(Duration::from_millis(5));
        }
        cl.engine_mut(0).clear_rate_limit(tx.index());
        cl.pump_until_idle(64);
    }

    drive(&mut cl, &tx, &rx, THRESHOLD / 4);

    let mut events: Vec<TraceEvent> = Vec::new();
    reader.drain_into(&mut events);
    assert!(!events.is_empty(), "warmup produced no trace events");
    let work = telemetry.harvest();
    let cfg = StallConfig {
        threshold_ns: THRESHOLD.as_nanos() as u64,
        ..StallConfig::default()
    };
    let reports = scan(&events, &[], &work.iteration_work, 0, 0, &cfg);

    // The timeline reconstruction sees the same gap the detector saw.
    let mut b = TimelineBuilder::new();
    b.ingest(&events);
    let tl = b.timeline();
    assert_eq!(tl.accounted_events(), events.len() as u64);
    if inject {
        let node_max = tl.node_gaps.get(&0).expect("node 0 gaps").max_ns;
        assert!(
            node_max >= cfg.threshold_ns,
            "timeline max gap {node_max} below threshold"
        );
    }
    reports
}

#[test]
fn injected_rate_limit_stall_is_detected_and_attributed() {
    let reports = run_scenario(true);
    assert!(
        !reports.is_empty(),
        "injected a {:?} freeze but scan reported nothing",
        3 * THRESHOLD
    );
    let r = &reports[0];
    assert_eq!(r.node, 0);
    assert!(
        r.gap_ns >= THRESHOLD.as_nanos() as u64,
        "reported gap {} shorter than the threshold",
        r.gap_ns
    );
    // A backlog of BACKLOG messages flushes on resume: busy on both the
    // iteration-work and resume-burst prongs.
    assert_eq!(
        r.cause,
        StallCause::EngineBusy,
        "freeze-with-backlog must attribute engine-busy, got {r}"
    );
    assert!(
        u64::from(r.resume_burst) >= BACKLOG as u64 / 2,
        "resume burst {} does not reflect the queued backlog",
        r.resume_burst
    );
}

#[test]
fn undisturbed_traffic_reports_no_stall() {
    let reports = run_scenario(false);
    assert!(
        reports.is_empty(),
        "control run with continuous traffic reported stalls: {reports:?}"
    );
}
