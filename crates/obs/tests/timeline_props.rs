//! Property tests of the timeline reconstruction layer
//! ([`flipc_obs::timeline`]) and the trace ring's loss accounting.
//!
//! Three properties carry the consumer side's correctness argument:
//! per-endpoint timelines (and their gap statistics) depend only on each
//! endpoint's own event subsequence, so any interleaving and any batch
//! chunking that preserve per-endpoint order reconstruct identical
//! timelines; every ingested event is accounted for exactly once; and
//! the ring conserves events — everything recorded is either drained or
//! tallied as lost, never both, never neither.

use proptest::prelude::*;

use flipc_obs::timeline::{Timeline, TimelineBuilder};
use flipc_obs::trace::{trace_ring, TraceEvent, TraceKind};

/// Decodes a proptest-generated tuple into a trace event. Kinds cycle
/// through all six variants; timestamps are made nondecreasing by the
/// caller so per-endpoint order is meaningful.
fn event(node: u16, endpoint: u16, kind_sel: u8, t_ns: u64, arg: u32) -> TraceEvent {
    let kind = match kind_sel % 6 {
        0 => TraceKind::Send,
        1 => TraceKind::Deliver,
        2 => TraceKind::Drop,
        3 => TraceKind::Misaddressed,
        4 => TraceKind::Retransmit,
        _ => TraceKind::Wakeup,
    };
    TraceEvent {
        t_ns,
        kind,
        node,
        endpoint,
        arg,
    }
}

/// A generated event stream: small node/endpoint spaces (so streams
/// actually collide on endpoints) and strictly accumulating timestamps.
fn event_stream(raw: &[(u8, u8, u8, u16, u32)]) -> Vec<TraceEvent> {
    let mut t = 0u64;
    raw.iter()
        .map(|&(node, ep, kind, dt, arg)| {
            t += u64::from(dt);
            event(u16::from(node % 3), u16::from(ep % 4), kind, t, arg)
        })
        .collect()
}

/// Builds a timeline ingesting `events` split at `cut` (clamped).
fn timeline_chunked(events: &[TraceEvent], cut: usize) -> Timeline {
    let cut = cut.min(events.len());
    let mut b = TimelineBuilder::new();
    b.ingest(&events[..cut]);
    b.ingest(&events[cut..]);
    b.timeline()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Per-endpoint timelines — counts, byte totals, and gap statistics —
    /// are invariant under (a) any interleaving that preserves each
    /// endpoint's relative order (here: a stable sort by endpoint key)
    /// and (b) any batch-boundary placement.
    #[test]
    fn endpoint_timelines_invariant_under_interleaving(
        raw in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u16>(), any::<u32>()),
            0..96,
        ),
        cut_a in any::<u8>(),
        cut_b in any::<u8>(),
    ) {
        let events = event_stream(&raw);

        // Interleaving B: stable-sorted by endpoint key. Stability keeps
        // every endpoint's own subsequence in its original order, which is
        // exactly the class of reorderings a per-endpoint view must not
        // distinguish.
        let mut regrouped = events.clone();
        regrouped.sort_by_key(|ev| (ev.node, ev.endpoint));

        let a = timeline_chunked(&events, cut_a as usize);
        let b = timeline_chunked(&regrouped, cut_b as usize);
        prop_assert_eq!(&a.endpoints, &b.endpoints);

        // Batch chunking alone never changes anything observable except
        // chain pairing (documented): compare against a single-batch build
        // on the same order.
        let whole = Timeline::from_events(&events);
        prop_assert_eq!(&a.endpoints, &whole.endpoints);
        prop_assert_eq!(a.node_gaps, whole.node_gaps);
        prop_assert_eq!(a.retransmit_bursts, whole.retransmit_bursts);
        prop_assert_eq!(a.retransmit_frames, whole.retransmit_frames);
    }

    /// Conservation inside the builder: every ingested event lands in
    /// exactly one bucket of the accounting — some endpoint's tally or
    /// the node-scope retransmit tally.
    #[test]
    fn every_event_is_accounted_exactly_once(
        raw in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u16>(), any::<u32>()),
            0..96,
        ),
        cut in any::<u8>(),
    ) {
        let events = event_stream(&raw);
        let tl = timeline_chunked(&events, cut as usize);
        prop_assert_eq!(tl.total_events, events.len() as u64);
        prop_assert_eq!(tl.accounted_events(), tl.total_events);

        // Gap-stat internal consistency: an endpoint with n events has
        // exactly n-1 recorded gaps, and min ≤ mean ≤ max.
        for ept in tl.endpoints.values() {
            prop_assert_eq!(ept.gaps.count, ept.events().saturating_sub(1));
            if let Some(mean) = ept.gaps.mean_ns() {
                prop_assert!(ept.gaps.min_ns as f64 <= mean + 1e-9);
                prop_assert!(mean <= ept.gaps.max_ns as f64 + 1e-9);
            }
        }
    }

    /// Ring conservation: recorded == drained + lost, at every drain
    /// schedule. The lossy ring may discard events, but it must say so.
    #[test]
    fn ring_conserves_events(
        cap_exp in 1usize..6,
        ops in proptest::collection::vec((any::<u8>(), any::<bool>()), 0..64),
    ) {
        let (mut w, mut r) = trace_ring(1 << cap_exp);
        let mut recorded: u64 = 0;
        let mut drained: Vec<TraceEvent> = Vec::new();
        let mut lost: u64 = 0;
        for (i, &(burst, drain)) in ops.iter().enumerate() {
            for k in 0..burst {
                w.record(event(0, 0, 0, (i as u64) << 8 | u64::from(k), recorded as u32));
                recorded += 1;
            }
            if drain {
                r.drain_into(&mut drained);
                lost += r.lost();
            }
        }
        r.drain_into(&mut drained);
        lost += r.lost();
        prop_assert_eq!(drained.len() as u64 + lost, recorded);

        // What did survive is a subsequence in recording order: the
        // per-event payload we stamped is strictly increasing.
        for pair in drained.windows(2) {
            prop_assert!(pair[0].arg < pair[1].arg);
        }

        // And the builder's lost tally flows straight through.
        let mut b = TimelineBuilder::new();
        b.ingest(&drained);
        b.note_lost(lost);
        let tl = b.timeline();
        prop_assert_eq!(tl.lost, lost);
        prop_assert_eq!(tl.total_events + tl.lost, recorded);
    }
}
