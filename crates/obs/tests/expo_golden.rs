//! Golden test of the Prometheus-style exposition format.
//!
//! Dashboards scrape by metric name and label: once shipped, those are a
//! public contract. This test renders a fully deterministic, hand-built
//! snapshot set through every exposer and compares the page byte for
//! byte. If it fails because you *intentionally* renamed or relabelled a
//! metric, update the golden below AND the contract table in
//! `flipc_obs::expo`'s module docs — and expect to migrate dashboards.

use flipc_core::endpoint::FlipcNodeId;
use flipc_core::hist::{bucket_index, HistogramSnapshot, BUCKETS};
use flipc_core::inspect::{PathSnapshot, PeerLiveness, TransportSnapshot};
use flipc_obs::{
    expose_engine, expose_trace_lost, expose_transport, expose_workload, EngineTelemetrySnapshot,
    Exposition, WorkloadClass, WorkloadSnapshot,
};

/// A histogram snapshot with `values` recorded — built arithmetically,
/// no clocks involved.
fn hist_of(values: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::empty(BUCKETS);
    for &v in values {
        h.buckets[bucket_index(v)] += 1;
        h.sum = h.sum.wrapping_add(v);
    }
    h
}

fn page() -> String {
    let engine = EngineTelemetrySnapshot {
        iteration_work: hist_of(&[0, 0, 1, 2, 3]),
        deliver_latency: vec![
            hist_of(&[]),           // quiet endpoint: must be skipped
            hist_of(&[900, 4_000]), // active endpoint 1
        ],
    };
    let transport = TransportSnapshot {
        local: FlipcNodeId(0),
        paths: vec![PathSnapshot {
            peer: FlipcNodeId(1),
            sent: 120,
            retransmitted: 3,
            delivered: 117,
            dup_dropped: 2,
            out_of_window: 1,
            wire_dropped: 4,
            in_flight: 5,
            failed: 6,
            stale_epoch: 2,
            pings: 9,
            credit_stalls: 13,
            credit_shrinks: 4,
            credit_window: 12,
            liveness: PeerLiveness::Healthy,
            srtt: 150,
            rttvar: 25,
            rto: 250,
            epoch: 2,
            clock_offset_ns: -1_250,
            clock_dispersion_ns: 300,
            clock_samples: 8,
        }],
        decode_errors: 1,
        unknown_peer: 0,
        epoch_resyncs: 1,
        rto: hist_of(&[2_000]),
        retransmit_burst: hist_of(&[2, 1]),
        batch_datagrams: 2,
        batch_frames: 5,
        batch_size: hist_of(&[2, 3]),
    };
    let mut workload = WorkloadSnapshot::new("tiers", 1);
    workload.published = 42;
    workload.delivered = 40;
    workload.dropped = 2;
    workload.retried = 5;
    workload.replayed = 3;
    workload.acked = 38;
    workload.invariant_violations = 0;
    workload.backlog = 4;
    workload.classes.push(WorkloadClass {
        class: "high".to_string(),
        latency: hist_of(&[900, 4_000]),
    });
    workload.classes.push(WorkloadClass {
        class: "quiet".to_string(), // empty class: must be skipped
        latency: hist_of(&[]),
    });
    let mut expo = Exposition::new();
    expose_engine(&mut expo, 0, &engine);
    expose_trace_lost(&mut expo, 0, 7);
    expose_transport(&mut expo, &transport);
    expose_workload(&mut expo, &workload);
    expo.render()
}

#[test]
fn exposition_page_matches_golden() {
    let golden = "\
# HELP flipc_iteration_work Messages moved per engine-loop pass.
# TYPE flipc_iteration_work histogram
flipc_iteration_work_bucket{node=\"0\",le=\"0\"} 2
flipc_iteration_work_bucket{node=\"0\",le=\"1\"} 3
flipc_iteration_work_bucket{node=\"0\",le=\"3\"} 5
flipc_iteration_work_bucket{node=\"0\",le=\"+Inf\"} 5
flipc_iteration_work_sum{node=\"0\"} 6
flipc_iteration_work_count{node=\"0\"} 5
# HELP flipc_deliver_latency_ns Send-to-deliver latency per receive endpoint, nanoseconds.
# TYPE flipc_deliver_latency_ns histogram
flipc_deliver_latency_ns_bucket{node=\"0\",endpoint=\"1\",le=\"1023\"} 1
flipc_deliver_latency_ns_bucket{node=\"0\",endpoint=\"1\",le=\"4095\"} 2
flipc_deliver_latency_ns_bucket{node=\"0\",endpoint=\"1\",le=\"+Inf\"} 2
flipc_deliver_latency_ns_sum{node=\"0\",endpoint=\"1\"} 4900
flipc_deliver_latency_ns_count{node=\"0\",endpoint=\"1\"} 2
# HELP flipc_trace_events_lost_total Trace events dropped because the ring was full.
# TYPE flipc_trace_events_lost_total counter
flipc_trace_events_lost_total{node=\"0\"} 7
# HELP flipc_net_sent_total Data frames transmitted for the first time.
# TYPE flipc_net_sent_total counter
flipc_net_sent_total{node=\"0\",peer=\"1\"} 120
# HELP flipc_net_retransmitted_total Data frames re-transmitted by the reliability layer.
# TYPE flipc_net_retransmitted_total counter
flipc_net_retransmitted_total{node=\"0\",peer=\"1\"} 3
# HELP flipc_net_delivered_total In-order frames handed up to the engine.
# TYPE flipc_net_delivered_total counter
flipc_net_delivered_total{node=\"0\",peer=\"1\"} 117
# HELP flipc_net_dup_dropped_total Duplicate arrivals discarded by the dedup window.
# TYPE flipc_net_dup_dropped_total counter
flipc_net_dup_dropped_total{node=\"0\",peer=\"1\"} 2
# HELP flipc_net_out_of_window_total Arrivals outside the reorder window, discarded.
# TYPE flipc_net_out_of_window_total counter
flipc_net_out_of_window_total{node=\"0\",peer=\"1\"} 1
# HELP flipc_net_wire_dropped_total First-transmission attempts the wire refused.
# TYPE flipc_net_wire_dropped_total counter
flipc_net_wire_dropped_total{node=\"0\",peer=\"1\"} 4
# HELP flipc_net_failed_total Sends failed back to the application by the peer lifecycle.
# TYPE flipc_net_failed_total counter
flipc_net_failed_total{node=\"0\",peer=\"1\"} 6
# HELP flipc_net_stale_epoch_total Datagrams from a stale session epoch, rejected.
# TYPE flipc_net_stale_epoch_total counter
flipc_net_stale_epoch_total{node=\"0\",peer=\"1\"} 2
# HELP flipc_net_pings_total Idle-path heartbeat pings sent.
# TYPE flipc_net_pings_total counter
flipc_net_pings_total{node=\"0\",peer=\"1\"} 9
# HELP flipc_net_credit_stalls_total Sends refused by the credit grant or fairness arbiter.
# TYPE flipc_net_credit_stalls_total counter
flipc_net_credit_stalls_total{node=\"0\",peer=\"1\"} 13
# HELP flipc_net_credit_shrinks_total Credit window shrink events (AIMD halvings and congestion clamps).
# TYPE flipc_net_credit_shrinks_total counter
flipc_net_credit_shrinks_total{node=\"0\",peer=\"1\"} 4
# HELP flipc_net_in_flight Frames sent and not yet cumulatively acknowledged.
# TYPE flipc_net_in_flight gauge
flipc_net_in_flight{node=\"0\",peer=\"1\"} 5
# HELP flipc_net_peer_state Failure-detector verdict: 0 healthy, 1 suspect, 2 dead.
# TYPE flipc_net_peer_state gauge
flipc_net_peer_state{node=\"0\",peer=\"1\"} 0
# HELP flipc_net_srtt_ticks Smoothed round-trip time estimate, transport clock ticks.
# TYPE flipc_net_srtt_ticks gauge
flipc_net_srtt_ticks{node=\"0\",peer=\"1\"} 150
# HELP flipc_net_rttvar_ticks Round-trip time variance estimate, transport clock ticks.
# TYPE flipc_net_rttvar_ticks gauge
flipc_net_rttvar_ticks{node=\"0\",peer=\"1\"} 25
# HELP flipc_net_rto_current_ticks Retransmit timeout currently armed for this path.
# TYPE flipc_net_rto_current_ticks gauge
flipc_net_rto_current_ticks{node=\"0\",peer=\"1\"} 250
# HELP flipc_net_epoch This node's current session epoch on the path.
# TYPE flipc_net_epoch gauge
flipc_net_epoch{node=\"0\",peer=\"1\"} 2
# HELP flipc_net_credit_window Effective send window under the peer's receiver-granted credit.
# TYPE flipc_net_credit_window gauge
flipc_net_credit_window{node=\"0\",peer=\"1\"} 12
# HELP flipc_net_clock_offset_ns Estimated offset of the peer's trace clock, nanoseconds (signed).
# TYPE flipc_net_clock_offset_ns gauge
flipc_net_clock_offset_ns{node=\"0\",peer=\"1\"} -1250
# HELP flipc_net_clock_dispersion_ns Error bound on the clock offset estimate, nanoseconds.
# TYPE flipc_net_clock_dispersion_ns gauge
flipc_net_clock_dispersion_ns{node=\"0\",peer=\"1\"} 300
# HELP flipc_net_clock_samples Clock-sync samples folded into the estimate this epoch.
# TYPE flipc_net_clock_samples gauge
flipc_net_clock_samples{node=\"0\",peer=\"1\"} 8
# HELP flipc_net_decode_errors_total Datagrams rejected before peer attribution.
# TYPE flipc_net_decode_errors_total counter
flipc_net_decode_errors_total{node=\"0\"} 1
# HELP flipc_net_unknown_peer_total Well-formed datagrams from unconfigured node ids.
# TYPE flipc_net_unknown_peer_total counter
flipc_net_unknown_peer_total{node=\"0\"} 0
# HELP flipc_net_epoch_resyncs_total Paths resynchronized after a peer arrived on a newer epoch.
# TYPE flipc_net_epoch_resyncs_total counter
flipc_net_epoch_resyncs_total{node=\"0\"} 1
# HELP flipc_net_rto_ticks Retransmit timeouts that fired, in transport clock ticks.
# TYPE flipc_net_rto_ticks histogram
flipc_net_rto_ticks_bucket{node=\"0\",le=\"2047\"} 1
flipc_net_rto_ticks_bucket{node=\"0\",le=\"+Inf\"} 1
flipc_net_rto_ticks_sum{node=\"0\"} 2000
flipc_net_rto_ticks_count{node=\"0\"} 1
# HELP flipc_net_retransmit_burst Frames re-sent per go-back-N retransmit round.
# TYPE flipc_net_retransmit_burst histogram
flipc_net_retransmit_burst_bucket{node=\"0\",le=\"1\"} 1
flipc_net_retransmit_burst_bucket{node=\"0\",le=\"3\"} 2
flipc_net_retransmit_burst_bucket{node=\"0\",le=\"+Inf\"} 2
flipc_net_retransmit_burst_sum{node=\"0\"} 3
flipc_net_retransmit_burst_count{node=\"0\"} 2
# HELP flipc_net_batch_datagrams_total Coalesced Batch datagrams transmitted.
# TYPE flipc_net_batch_datagrams_total counter
flipc_net_batch_datagrams_total{node=\"0\"} 2
# HELP flipc_net_batch_frames_total Sub-frames carried inside coalesced Batch datagrams.
# TYPE flipc_net_batch_frames_total counter
flipc_net_batch_frames_total{node=\"0\"} 5
# HELP flipc_net_batch_size Sub-frames per transmitted Batch datagram.
# TYPE flipc_net_batch_size histogram
flipc_net_batch_size_bucket{node=\"0\",le=\"3\"} 2
flipc_net_batch_size_bucket{node=\"0\",le=\"+Inf\"} 2
flipc_net_batch_size_sum{node=\"0\"} 5
flipc_net_batch_size_count{node=\"0\"} 2
# HELP flipc_workload_published_total Messages the application asked the workload to send.
# TYPE flipc_workload_published_total counter
flipc_workload_published_total{workload=\"tiers\",node=\"1\"} 42
# HELP flipc_workload_delivered_total Messages handed to the application in order.
# TYPE flipc_workload_delivered_total counter
flipc_workload_delivered_total{workload=\"tiers\",node=\"1\"} 40
# HELP flipc_workload_dropped_total Messages knowingly shed (at-most-once backpressure, expired deadlines).
# TYPE flipc_workload_dropped_total counter
flipc_workload_dropped_total{workload=\"tiers\",node=\"1\"} 2
# HELP flipc_workload_retried_total Application-level retransmissions on the reliable paths.
# TYPE flipc_workload_retried_total counter
flipc_workload_retried_total{workload=\"tiers\",node=\"1\"} 5
# HELP flipc_workload_replayed_total Log entries re-delivered through a replay-from-offset fetch.
# TYPE flipc_workload_replayed_total counter
flipc_workload_replayed_total{workload=\"tiers\",node=\"1\"} 3
# HELP flipc_workload_acked_total Application-level acknowledgements received.
# TYPE flipc_workload_acked_total counter
flipc_workload_acked_total{workload=\"tiers\",node=\"1\"} 38
# HELP flipc_workload_invariant_violations_total Workload invariant breaches observed (must stay zero).
# TYPE flipc_workload_invariant_violations_total counter
flipc_workload_invariant_violations_total{workload=\"tiers\",node=\"1\"} 0
# HELP flipc_workload_backlog Messages accepted but not yet deliverable (buffers, outboxes, queues).
# TYPE flipc_workload_backlog gauge
flipc_workload_backlog{workload=\"tiers\",node=\"1\"} 4
# HELP flipc_workload_latency_ns Workload send-to-deliver latency per traffic class, nanoseconds.
# TYPE flipc_workload_latency_ns histogram
flipc_workload_latency_ns_bucket{workload=\"tiers\",node=\"1\",class=\"high\",le=\"1023\"} 1
flipc_workload_latency_ns_bucket{workload=\"tiers\",node=\"1\",class=\"high\",le=\"4095\"} 2
flipc_workload_latency_ns_bucket{workload=\"tiers\",node=\"1\",class=\"high\",le=\"+Inf\"} 2
flipc_workload_latency_ns_sum{workload=\"tiers\",node=\"1\",class=\"high\"} 4900
flipc_workload_latency_ns_count{workload=\"tiers\",node=\"1\",class=\"high\"} 2
";
    let got = page();
    assert_eq!(
        got, golden,
        "exposition format drifted — if intentional, update the golden \
         and the contract table in flipc_obs::expo"
    );
}

#[test]
fn exposition_is_deterministic() {
    assert_eq!(page(), page());
}
