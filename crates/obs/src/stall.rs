//! Engine-loop stall detection and attribution.
//!
//! The ROADMAP's open question — *where do Wakeup/Deliver gaps come from?*
//! — needs more than a threshold: a gap in the trace is only actionable
//! once it is attributed to a cause. This module has two layers:
//!
//! * a **pure core** ([`scan`]) that walks a batch of trace events per
//!   node, flags inter-event gaps above a configurable threshold, and
//!   classifies each one by correlating against the iteration-work
//!   histogram harvested over the same window (engine-busy backlog vs
//!   engine-idle quiet) and the transport's retransmit delta
//!   (transport-retransmit);
//! * a **background consumer** ([`StallMonitor`]) that owns the
//!   [`TraceReader`], tails it on its own thread with the non-allocating
//!   [`TraceReader::drain_into`], and publishes structured
//!   [`StallReport`]s. The monitor never touches engine-owned state with
//!   anything but loads — recording stays wait-free; only the observer
//!   pays for analysis.

use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

use flipc_core::hist::HistogramSnapshot;

use crate::json::Value;
use crate::telemetry::EngineTelemetry;
use crate::timeline::TimelineBuilder;
use crate::trace::{TraceEvent, TraceKind, TraceReader};

/// Stall-detection tuning.
#[derive(Clone, Copy, Debug)]
pub struct StallConfig {
    /// Minimum inter-event gap (ns) that counts as a stall.
    pub threshold_ns: u64,
    /// Iteration-work sample at or above which a harvest is read as "the
    /// loop resumed into a backlog" (the long-tail bucket correlation).
    pub busy_work_threshold: u64,
    /// How often the background monitor polls the ring.
    pub poll_interval: Duration,
}

impl Default for StallConfig {
    fn default() -> StallConfig {
        StallConfig {
            // Engine-loop passes are microseconds; 10ms of silence between
            // events on an active node is three orders of magnitude off.
            threshold_ns: 10_000_000,
            busy_work_threshold: 16,
            poll_interval: Duration::from_millis(5),
        }
    }
}

/// Why a stall happened, as far as the recorded signals can tell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallCause {
    /// The transport's failure detector held one or more peers in
    /// `Suspect` or `Dead` during the window: the silence is a sick path,
    /// not a sick engine — deliveries stopped because the peer did.
    PeerSuspect,
    /// The gap ends in (or contains) a retransmit burst: the engine was
    /// waiting out the reliability layer's timers.
    TransportRetransmit,
    /// The iteration-work histogram shows a long-tail pass around the gap:
    /// the loop stopped while work was queued and resumed into a backlog
    /// (a scheduling stall, the paper's coprocessor-preemption hazard).
    EngineBusy,
    /// The work histogram shows only idle passes: nothing was queued — the
    /// gap is quiet traffic, not a service failure.
    EngineIdle,
}

impl StallCause {
    /// Stable lower-case name used by both dump formats.
    pub fn name(self) -> &'static str {
        match self {
            StallCause::PeerSuspect => "transport-peer-suspect",
            StallCause::TransportRetransmit => "transport-retransmit",
            StallCause::EngineBusy => "engine-busy",
            StallCause::EngineIdle => "engine-idle",
        }
    }

    /// Inverse of [`StallCause::name`], for consumers that read reports
    /// back out of a [`StallReport::to_json`] dump (the cluster plane
    /// ships per-node reports between processes as JSON).
    pub fn from_name(name: &str) -> Option<StallCause> {
        Some(match name {
            "transport-peer-suspect" => StallCause::PeerSuspect,
            "transport-retransmit" => StallCause::TransportRetransmit,
            "engine-busy" => StallCause::EngineBusy,
            "engine-idle" => StallCause::EngineIdle,
            _ => return None,
        })
    }
}

/// One attributed stall.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StallReport {
    /// Node whose trace showed the gap.
    pub node: u16,
    /// Stamp of the last event before the silence.
    pub start_ns: u64,
    /// Stamp of the first event after it.
    pub end_ns: u64,
    /// The silence itself (`end_ns - start_ns`).
    pub gap_ns: u64,
    /// Endpoint of the event that ended the stall (`u16::MAX` when the
    /// resuming event was not endpoint-scoped).
    pub endpoint: u16,
    /// Attributed cause.
    pub cause: StallCause,
    /// Events recorded in the first iteration burst after the gap — the
    /// size of the backlog the loop resumed into.
    pub resume_burst: u32,
}

impl StallReport {
    /// JSON object form used by `flipc-top --once --json`.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("node", Value::from(u64::from(self.node))),
            ("start_ns", Value::from(self.start_ns)),
            ("end_ns", Value::from(self.end_ns)),
            ("gap_ns", Value::from(self.gap_ns)),
            ("endpoint", Value::from(u64::from(self.endpoint))),
            ("cause", Value::from(self.cause.name())),
            ("resume_burst", Value::from(u64::from(self.resume_burst))),
        ])
    }
}

impl StallReport {
    /// Inverse of [`StallReport::to_json`]; `None` on any malformed or
    /// missing field. The cluster plane uses this to rebuild a child
    /// process's reports for cross-node ranking.
    pub fn from_json(v: &Value) -> Option<StallReport> {
        let num = |name: &str| -> Option<f64> { v.get(name)?.as_f64() };
        Some(StallReport {
            node: num("node")? as u16,
            start_ns: num("start_ns")? as u64,
            end_ns: num("end_ns")? as u64,
            gap_ns: num("gap_ns")? as u64,
            endpoint: num("endpoint")? as u16,
            cause: StallCause::from_name(v.get("cause")?.as_str()?)?,
            resume_burst: num("resume_burst")? as u32,
        })
    }
}

impl std::fmt::Display for StallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stall n{} ep{} {:.2} ms at {} ns ({}; resume burst {})",
            self.node,
            self.endpoint,
            self.gap_ns as f64 / 1e6,
            self.start_ns,
            self.cause.name(),
            self.resume_burst
        )
    }
}

/// Pure stall scan over one batch of events (per-node gap thresholding).
///
/// `carry_last` is the per-node stamp of the last event of the *previous*
/// batch (so stalls spanning a drain boundary are still seen); pass an
/// empty slice for a standalone scan. `iter_work` is the iteration-work
/// histogram harvested over the same window, `retransmit_delta` the
/// transport's retransmitted-frame delta, and `suspect_peers` the number
/// of peers the transport's failure detector currently holds in `Suspect`
/// or `Dead` — the three correlation signals, strongest first.
pub fn scan(
    events: &[TraceEvent],
    carry_last: &[(u16, u64)],
    iter_work: &HistogramSnapshot,
    retransmit_delta: u64,
    suspect_peers: u32,
    cfg: &StallConfig,
) -> Vec<StallReport> {
    let mut out = Vec::new();
    let mut last: Vec<(u16, u64)> = carry_last.to_vec();
    for (i, ev) in events.iter().enumerate() {
        let prev = last.iter_mut().find(|(n, _)| *n == ev.node);
        match prev {
            None => last.push((ev.node, ev.t_ns)),
            Some((_, t)) => {
                let gap = ev.t_ns.saturating_sub(*t);
                if gap >= cfg.threshold_ns {
                    // Backlog size: events in the immediate resume burst
                    // (stamps within one threshold of the resume point).
                    let resume_burst = events[i..]
                        .iter()
                        .take_while(|e| e.t_ns.saturating_sub(ev.t_ns) < cfg.threshold_ns)
                        .filter(|e| e.node == ev.node)
                        .count() as u32;
                    out.push(StallReport {
                        node: ev.node,
                        start_ns: *t,
                        end_ns: ev.t_ns,
                        gap_ns: gap,
                        endpoint: ev.endpoint,
                        cause: attribute(
                            ev,
                            resume_burst,
                            iter_work,
                            retransmit_delta,
                            suspect_peers,
                            cfg,
                        ),
                        resume_burst,
                    });
                }
                *t = ev.t_ns;
            }
        }
    }
    out
}

/// One node's aggregate stall burden, for cross-node ranking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeStallRank {
    /// The node.
    pub node: u16,
    /// Stalls attributed to it.
    pub stalls: u64,
    /// Total silent time across those stalls (ns) — the ranking key.
    pub total_gap_ns: u64,
    /// Its single worst gap (ns).
    pub worst_gap_ns: u64,
    /// Cause of the worst gap — the headline attribution.
    pub worst_cause: StallCause,
}

impl NodeStallRank {
    /// JSON object form used by `flipc-top --cluster --once --json`.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("node", Value::from(u64::from(self.node))),
            ("stalls", Value::from(self.stalls)),
            ("total_gap_ns", Value::from(self.total_gap_ns)),
            ("worst_gap_ns", Value::from(self.worst_gap_ns)),
            ("worst_cause", Value::from(self.worst_cause.name())),
        ])
    }
}

/// Ranks nodes by total stall burden, worst first — the cluster-plane
/// "who is the bottleneck" answer. Reports may come from many per-node
/// [`scan`] passes; nodes with no stalls simply do not appear.
pub fn rank_nodes(reports: &[StallReport]) -> Vec<NodeStallRank> {
    let mut ranks: Vec<NodeStallRank> = Vec::new();
    for r in reports {
        match ranks.iter_mut().find(|n| n.node == r.node) {
            Some(n) => {
                n.stalls += 1;
                n.total_gap_ns += r.gap_ns;
                if r.gap_ns > n.worst_gap_ns {
                    n.worst_gap_ns = r.gap_ns;
                    n.worst_cause = r.cause;
                }
            }
            None => ranks.push(NodeStallRank {
                node: r.node,
                stalls: 1,
                total_gap_ns: r.gap_ns,
                worst_gap_ns: r.gap_ns,
                worst_cause: r.cause,
            }),
        }
    }
    // Heaviest total silence first; tie-break on node id for stability.
    ranks.sort_by(|a, b| {
        b.total_gap_ns
            .cmp(&a.total_gap_ns)
            .then(a.node.cmp(&b.node))
    });
    ranks
}

/// The attribution decision, in evidence order: a sick peer wins (the
/// failure detector saw a path stall its whole strike budget — deliveries
/// stopped because the peer did), then a retransmit signal (the engine
/// was waiting out timers), then the backlog correlation (long-tail
/// iteration-work bucket or a dense resume burst means work was queued
/// while the loop stood still), else the gap was genuine idleness.
fn attribute(
    resume_event: &TraceEvent,
    resume_burst: u32,
    iter_work: &HistogramSnapshot,
    retransmit_delta: u64,
    suspect_peers: u32,
    cfg: &StallConfig,
) -> StallCause {
    if suspect_peers > 0 {
        return StallCause::PeerSuspect;
    }
    if retransmit_delta > 0 || resume_event.kind == TraceKind::Retransmit {
        return StallCause::TransportRetransmit;
    }
    let busy_tail = long_tail_samples(iter_work, cfg.busy_work_threshold) > 0;
    if busy_tail || u64::from(resume_burst) >= cfg.busy_work_threshold {
        StallCause::EngineBusy
    } else {
        StallCause::EngineIdle
    }
}

/// Samples at or above `threshold` in a log₂ histogram snapshot (whole
/// buckets only: a bucket counts once its lower bound reaches the
/// threshold).
fn long_tail_samples(h: &HistogramSnapshot, threshold: u64) -> u64 {
    h.buckets
        .iter()
        .enumerate()
        .filter(|&(i, _)| flipc_core::hist::bucket_bounds(i, h.buckets.len()).0 >= threshold)
        .map(|(_, &c)| c)
        .sum()
}

/// Handle to a running background stall monitor.
///
/// Dropping the handle stops the consumer thread. The monitor also feeds a
/// [`TimelineBuilder`], so one consumer serves both the stall feed and the
/// timeline rendering.
pub struct StallMonitor {
    stop: Sender<()>,
    reports: Receiver<StallReport>,
    join: Option<std::thread::JoinHandle<(TraceReader, TimelineBuilder)>>,
}

impl StallMonitor {
    /// Spawns a consumer thread tailing `reader` under `cfg`, correlating
    /// against `telemetry` (each poll harvests the iteration-work
    /// histogram — the monitor owns the application-role harvest side, so
    /// no other harvester may run concurrently).
    pub fn spawn(
        mut reader: TraceReader,
        telemetry: Arc<EngineTelemetry>,
        cfg: StallConfig,
    ) -> StallMonitor {
        let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
        let (rep_tx, rep_rx) = std::sync::mpsc::channel::<StallReport>();
        let join = std::thread::Builder::new()
            .name("flipc-stall-monitor".into())
            .spawn(move || {
                let mut builder = TimelineBuilder::new();
                let mut batch: Vec<TraceEvent> = Vec::with_capacity(1024);
                let mut carry: Vec<(u16, u64)> = Vec::new();
                loop {
                    // recv_timeout doubles as the poll interval and the
                    // stop signal (a disconnect or an explicit send both
                    // end the loop).
                    let stopping = !matches!(
                        stop_rx.recv_timeout(cfg.poll_interval),
                        Err(std::sync::mpsc::RecvTimeoutError::Timeout)
                    );
                    batch.clear();
                    reader.drain_into(&mut batch);
                    builder.note_lost(reader.lost());
                    let work = telemetry.harvest().iteration_work;
                    // The monitor has no transport handle: no retransmit
                    // delta or liveness signal, so those causes are the
                    // caller's business (flipc-top wires them in).
                    for report in scan(&batch, &carry, &work, 0, 0, &cfg) {
                        let _ = rep_tx.send(report);
                    }
                    // Carry the last stamp per node across drains so a
                    // stall spanning two polls is still one gap.
                    for ev in &batch {
                        match carry.iter_mut().find(|(n, _)| *n == ev.node) {
                            Some((_, t)) => *t = ev.t_ns,
                            None => carry.push((ev.node, ev.t_ns)),
                        }
                    }
                    builder.ingest(&batch);
                    if stopping {
                        return (reader, builder);
                    }
                }
            })
            .expect("failed to spawn stall monitor");
        StallMonitor {
            stop: stop_tx,
            reports: rep_rx,
            join: Some(join),
        }
    }

    /// Drains every stall reported so far (non-blocking).
    pub fn take_reports(&self) -> Vec<StallReport> {
        let mut out = Vec::new();
        loop {
            match self.reports.try_recv() {
                Ok(r) => out.push(r),
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => return out,
            }
        }
    }

    /// Stops the consumer after one final drain; returns the reader, the
    /// accumulated timeline, and any reports still queued.
    pub fn stop(mut self) -> (TraceReader, TimelineBuilder, Vec<StallReport>) {
        let _ = self.stop.send(());
        let (reader, builder) = self
            .join
            .take()
            .expect("monitor already stopped")
            .join()
            .expect("stall monitor panicked");
        let reports = self.take_reports();
        (reader, builder, reports)
    }
}

impl Drop for StallMonitor {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_ring;

    fn ev(t_ns: u64, kind: TraceKind, node: u16, endpoint: u16) -> TraceEvent {
        TraceEvent {
            t_ns,
            kind,
            node,
            endpoint,
            arg: 0,
        }
    }

    fn cfg() -> StallConfig {
        StallConfig {
            threshold_ns: 1_000,
            busy_work_threshold: 4,
            poll_interval: Duration::from_millis(1),
        }
    }

    fn idle_work() -> HistogramSnapshot {
        HistogramSnapshot::empty(flipc_core::hist::BUCKETS)
    }

    #[test]
    fn gaps_below_threshold_are_not_stalls() {
        let events: Vec<_> = (0..10)
            .map(|i| ev(i * 500, TraceKind::Deliver, 0, 1))
            .collect();
        assert!(scan(&events, &[], &idle_work(), 0, 0, &cfg()).is_empty());
    }

    #[test]
    fn a_quiet_gap_is_attributed_idle() {
        let events = [
            ev(0, TraceKind::Deliver, 0, 1),
            ev(5_000, TraceKind::Deliver, 0, 1),
        ];
        let stalls = scan(&events, &[], &idle_work(), 0, 0, &cfg());
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].gap_ns, 5_000);
        assert_eq!(stalls[0].cause, StallCause::EngineIdle);
        assert_eq!(stalls[0].endpoint, 1);
    }

    #[test]
    fn a_backlog_resume_is_attributed_busy() {
        // After the gap the loop flushes a dense burst: work was queued.
        let mut events = vec![ev(0, TraceKind::Deliver, 0, 1)];
        for i in 0..8 {
            events.push(ev(5_000 + i * 10, TraceKind::Deliver, 0, 1));
        }
        let stalls = scan(&events, &[], &idle_work(), 0, 0, &cfg());
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].cause, StallCause::EngineBusy);
        assert_eq!(stalls[0].resume_burst, 8);
    }

    #[test]
    fn long_tail_iteration_work_is_attributed_busy() {
        let mut work = idle_work();
        work.buckets[6] += 1; // one pass moved [32, 64) messages
        let events = [
            ev(0, TraceKind::Deliver, 0, 1),
            ev(5_000, TraceKind::Deliver, 0, 1),
        ];
        let stalls = scan(&events, &[], &work, 0, 0, &cfg());
        assert_eq!(stalls[0].cause, StallCause::EngineBusy);
    }

    #[test]
    fn retransmit_evidence_wins_attribution() {
        let events = [
            ev(0, TraceKind::Send, 0, 1),
            ev(5_000, TraceKind::Retransmit, 0, u16::MAX),
        ];
        let stalls = scan(&events, &[], &idle_work(), 0, 0, &cfg());
        assert_eq!(stalls[0].cause, StallCause::TransportRetransmit);
        // A retransmit delta from the transport snapshot also decides it.
        let events = [
            ev(0, TraceKind::Send, 0, 1),
            ev(5_000, TraceKind::Deliver, 0, 1),
        ];
        let stalls = scan(&events, &[], &idle_work(), 3, 0, &cfg());
        assert_eq!(stalls[0].cause, StallCause::TransportRetransmit);
    }

    #[test]
    fn a_sick_peer_outranks_every_other_cause() {
        // Retransmit evidence AND a backlog resume are both present, but
        // the failure detector holding a peer in Suspect/Dead explains the
        // silence better than either.
        let mut events = vec![ev(0, TraceKind::Send, 0, 1)];
        events.push(ev(5_000, TraceKind::Retransmit, 0, u16::MAX));
        for i in 0..8 {
            events.push(ev(5_010 + i * 10, TraceKind::Deliver, 0, 1));
        }
        let stalls = scan(&events, &[], &idle_work(), 3, 1, &cfg());
        assert_eq!(stalls[0].cause, StallCause::PeerSuspect);
        assert_eq!(stalls[0].cause.name(), "transport-peer-suspect");
    }

    #[test]
    fn nodes_are_scanned_independently_and_carry_spans_batches() {
        // Node 0 and node 1 interleave; neither has an intra-node gap.
        let events = [
            ev(0, TraceKind::Deliver, 0, 1),
            ev(400, TraceKind::Deliver, 1, 1),
            ev(800, TraceKind::Deliver, 0, 1),
            ev(1_200, TraceKind::Deliver, 1, 1),
        ];
        assert!(scan(&events, &[], &idle_work(), 0, 0, &cfg()).is_empty());
        // A carry stamp turns the first event of this batch into a gap end.
        let stalls = scan(&events[..1], &[(0, 0)], &idle_work(), 0, 0, &cfg());
        assert!(stalls.is_empty(), "zero gap from carry");
        let late = [ev(10_000, TraceKind::Deliver, 0, 1)];
        let stalls = scan(&late, &[(0, 0)], &idle_work(), 0, 0, &cfg());
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].gap_ns, 10_000);
    }

    #[test]
    fn monitor_tails_a_live_ring_and_reports() {
        let (mut w, r) = trace_ring(1024);
        let telemetry = EngineTelemetry::new(2);
        let monitor = StallMonitor::spawn(r, telemetry.clone(), cfg());
        // A synthetic stall: two bursts separated by far more than the
        // threshold, recorded with explicit stamps.
        for i in 0..5u64 {
            w.record(ev(i * 100, TraceKind::Deliver, 0, 1));
        }
        for i in 0..5u64 {
            w.record(ev(1_000_000 + i * 100, TraceKind::Deliver, 0, 1));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut reports = Vec::new();
        while reports.is_empty() && std::time::Instant::now() < deadline {
            reports.extend(monitor.take_reports());
            std::thread::sleep(Duration::from_millis(2));
        }
        let (_reader, builder, rest) = monitor.stop();
        reports.extend(rest);
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].gap_ns, 1_000_000 - 400);
        let t = builder.timeline();
        assert_eq!(t.total_events, 10);
        assert_eq!(t.endpoints[&(0, 1)].delivers, 10);
    }

    #[test]
    fn rank_nodes_orders_by_total_silence_and_keeps_worst_cause() {
        let rep = |node, gap_ns, cause| StallReport {
            node,
            start_ns: 0,
            end_ns: gap_ns,
            gap_ns,
            endpoint: 1,
            cause,
            resume_burst: 0,
        };
        let reports = [
            rep(0, 2_000, StallCause::EngineIdle),
            rep(1, 50_000, StallCause::EngineBusy),
            rep(1, 10_000, StallCause::TransportRetransmit),
            rep(0, 3_000, StallCause::EngineIdle),
        ];
        let ranks = rank_nodes(&reports);
        assert_eq!(ranks.len(), 2);
        // Node 1's 60µs of silence outranks node 0's 5µs.
        assert_eq!(ranks[0].node, 1);
        assert_eq!(ranks[0].stalls, 2);
        assert_eq!(ranks[0].total_gap_ns, 60_000);
        assert_eq!(ranks[0].worst_gap_ns, 50_000);
        assert_eq!(ranks[0].worst_cause, StallCause::EngineBusy);
        assert_eq!(ranks[1].node, 0);
        assert_eq!(ranks[1].total_gap_ns, 5_000);
        let json = ranks[0].to_json().render();
        assert!(json.contains("\"worst_cause\":\"engine-busy\""), "{json}");
        assert!(rank_nodes(&[]).is_empty());
    }

    #[test]
    fn report_renders_both_formats() {
        let r = StallReport {
            node: 3,
            start_ns: 100,
            end_ns: 5_000_100,
            gap_ns: 5_000_000,
            endpoint: 7,
            cause: StallCause::EngineBusy,
            resume_burst: 12,
        };
        let text = r.to_string();
        assert!(text.contains("n3 ep7"), "{text}");
        assert!(text.contains("engine-busy"), "{text}");
        let json = r.to_json().render();
        assert!(json.contains("\"cause\":\"engine-busy\""), "{json}");
        assert!(json.contains("\"gap_ns\":5000000"), "{json}");
        // JSON round-trips exactly (the cluster plane's wire format).
        let back = StallReport::from_json(&r.to_json()).expect("well-formed");
        assert_eq!(back, r);
        assert_eq!(
            StallCause::from_name("engine-idle"),
            Some(StallCause::EngineIdle)
        );
        assert_eq!(StallCause::from_name("nonsense"), None);
        assert!(StallReport::from_json(&Value::Null).is_none());
    }
}
