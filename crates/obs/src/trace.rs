//! A wait-free SPSC trace ring for engine events.
//!
//! The engine is the single producer: each pass through its loop may push
//! fixed-size [`TraceEvent`] records (send, deliver, drop, retransmit,
//! wakeup). An observer thread is the single consumer, draining events
//! for rendering or archival. Same construction as the engine's loopback
//! SPSC ring: loads and stores only, one writer per location, head/tail
//! on separate cache lines.
//!
//! Tracing must never stall or block the engine, so a full ring *drops
//! the event*, not the producer: losses are tallied in a two-location
//! [`OwnedCounter`](flipc_core::counter::OwnedCounter) the consumer can
//! harvest — the trace is lossy-but-honest, exactly like the paper's
//! discarded-message counters.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::Arc;

use flipc_core::counter::OwnedCounter;
use flipc_core::sync::atomic::{AtomicU32, Ordering};

use crate::json::Value;

/// What happened, in engine terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// The engine picked a message off a send ring and transmitted it.
    Send,
    /// The engine delivered an arriving message into a receive buffer.
    Deliver,
    /// The engine discarded an arrival (no receive buffer) and counted it.
    Drop,
    /// An arrival addressed no valid endpoint.
    Misaddressed,
    /// The reliability layer retransmitted unacknowledged frames.
    Retransmit,
    /// The engine woke a blocked receiver.
    Wakeup,
}

impl TraceKind {
    /// Stable lower-case name used by both dump formats.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Send => "send",
            TraceKind::Deliver => "deliver",
            TraceKind::Drop => "drop",
            TraceKind::Misaddressed => "misaddressed",
            TraceKind::Retransmit => "retransmit",
            TraceKind::Wakeup => "wakeup",
        }
    }

    /// Inverse of [`TraceKind::name`], for consumers that read events
    /// back out of a [`TraceReader::dump_json`] dump (the cross-process
    /// timeline merge ships traces between processes as JSON).
    pub fn from_name(name: &str) -> Option<TraceKind> {
        Some(match name {
            "send" => TraceKind::Send,
            "deliver" => TraceKind::Deliver,
            "drop" => TraceKind::Drop,
            "misaddressed" => TraceKind::Misaddressed,
            "retransmit" => TraceKind::Retransmit,
            "wakeup" => TraceKind::Wakeup,
            _ => return None,
        })
    }
}

/// One fixed-size trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// [`crate::now_ns`] stamp at the moment of recording.
    pub t_ns: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Node the recording engine serves.
    pub node: u16,
    /// Endpoint index involved (destination for deliver/drop/wakeup,
    /// source for send), `u16::MAX` when not endpoint-scoped.
    pub endpoint: u16,
    /// Kind-specific argument: payload length for send/deliver, burst
    /// length for retransmit, woken-waiter count for wakeup, 0 otherwise.
    pub arg: u32,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12} ns n{} ep{} {} {}",
            self.t_ns,
            self.node,
            self.endpoint,
            self.kind.name(),
            self.arg
        )
    }
}

/// Pads a value to a cache line to prevent false sharing between the
/// producer-written and consumer-written words.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Inner {
    /// Written only by the consumer.
    head: CachePadded<AtomicU32>,
    /// Written only by the producer.
    tail: CachePadded<AtomicU32>,
    slots: Box<[UnsafeCell<MaybeUninit<TraceEvent>>]>,
    /// Events dropped because the ring was full (producer-written events
    /// word, consumer-written taken word).
    lost: OwnedCounter,
}

// SAFETY: The SPSC protocol guarantees each slot is accessed by exactly one
// side at a time (ownership alternates via the Acquire/Release head/tail
// handshake); `TraceEvent` is `Copy + Send`.
unsafe impl Send for Inner {}
// SAFETY: As above — shared access is mediated entirely by atomics plus the
// alternating-ownership protocol.
unsafe impl Sync for Inner {}

impl Inner {
    #[inline]
    fn mask(&self) -> u32 {
        self.slots.len() as u32 - 1
    }
}

/// The engine's (producer) half of a trace ring.
pub struct TraceWriter {
    inner: Arc<Inner>,
}

/// The observer's (consumer) half of a trace ring.
pub struct TraceReader {
    inner: Arc<Inner>,
}

/// Creates a trace ring holding up to `capacity` events (rounded up to a
/// power of two, minimum 2).
pub fn trace_ring(capacity: usize) -> (TraceWriter, TraceReader) {
    let cap = capacity.max(2).next_power_of_two();
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(Inner {
        head: CachePadded(AtomicU32::new(0)),
        tail: CachePadded(AtomicU32::new(0)),
        slots,
        lost: OwnedCounter::new(),
    });
    (
        TraceWriter {
            inner: inner.clone(),
        },
        TraceReader { inner },
    )
}

impl TraceWriter {
    /// Records an event; when the ring is full the *event* is dropped
    /// (tallied in the lost counter) — the producer never waits.
    pub fn record(&mut self, ev: TraceEvent) {
        let inner = &*self.inner;
        let tail = inner.tail.0.load(Ordering::Relaxed);
        let head = inner.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == inner.slots.len() as u32 {
            inner.lost.writer().increment();
            return;
        }
        let slot = &inner.slots[(tail & inner.mask()) as usize];
        // SAFETY: `tail - head < capacity`, so this slot is empty and owned
        // by the producer; the consumer will not read it until the Release
        // store below publishes it.
        unsafe { (*slot.get()).write(ev) };
        inner.tail.0.store(tail.wrapping_add(1), Ordering::Release);
    }

    /// Convenience wrapper building the [`TraceEvent`] in place.
    pub fn event(&mut self, kind: TraceKind, node: u16, endpoint: u16, arg: u32) {
        self.record(TraceEvent {
            t_ns: crate::now_ns(),
            kind,
            node,
            endpoint,
            arg,
        });
    }
}

impl TraceReader {
    /// Dequeues one event.
    pub fn pop(&mut self) -> Option<TraceEvent> {
        let inner = &*self.inner;
        let head = inner.head.0.load(Ordering::Relaxed);
        let tail = inner.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &inner.slots[(head & inner.mask()) as usize];
        // SAFETY: `head != tail` with the Acquire load above means the
        // producer's write to this slot happens-before us; the slot is full
        // and owned by the consumer until the Release store below.
        let ev = unsafe { (*slot.get()).assume_init_read() };
        inner.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(ev)
    }

    /// Drains every currently visible event.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// Drains every currently visible event into `out`, appending —
    /// the non-allocating form for consumers that poll in a loop and
    /// reuse one buffer (clear it between polls if you want only the
    /// fresh batch).
    pub fn drain_into(&mut self, out: &mut Vec<TraceEvent>) {
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
    }

    /// Harvests the count of events lost to a full ring since the last
    /// harvest (two-location read-and-reset; concurrent losses surface in
    /// the next harvest).
    ///
    /// Returned as `u64` so callers can accumulate across harvests
    /// without overflow bookkeeping; the underlying two-location counter
    /// is still `u32`-wide, so more than `u32::MAX` losses *between two
    /// harvests* would wrap the hardware word — harvest at any sane
    /// interval and the tally is exact.
    pub fn lost(&self) -> u64 {
        u64::from(self.inner.lost.reader().read_and_reset())
    }

    /// Drains and renders one event per line.
    pub fn dump_text(&mut self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for ev in self.drain() {
            let _ = writeln!(out, "{ev}");
        }
        out
    }

    /// Drains into a JSON array of event objects.
    pub fn dump_json(&mut self) -> Value {
        Value::Array(
            self.drain()
                .into_iter()
                .map(|ev| {
                    Value::object([
                        ("t_ns", Value::from(ev.t_ns)),
                        ("kind", Value::from(ev.kind.name())),
                        ("node", Value::from(u64::from(ev.node))),
                        ("endpoint", Value::from(u64::from(ev.endpoint))),
                        ("arg", Value::from(u64::from(ev.arg))),
                    ])
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceKind, arg: u32) -> TraceEvent {
        TraceEvent {
            t_ns: 7,
            kind,
            node: 0,
            endpoint: 3,
            arg,
        }
    }

    #[test]
    fn fifo_and_lossy_when_full() {
        let (mut w, mut r) = trace_ring(4);
        for i in 0..4 {
            w.record(ev(TraceKind::Send, i));
        }
        // Full: the fifth event is dropped and counted, not blocked on.
        w.record(ev(TraceKind::Send, 99));
        assert_eq!(r.lost(), 1);
        assert_eq!(r.lost(), 0, "lost counter is read-and-reset");
        let got = r.drain();
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].arg, 0);
        assert_eq!(got[3].arg, 3);
        assert!(r.pop().is_none());
    }

    #[test]
    fn dumps_render_every_drained_event() {
        let (mut w, mut r) = trace_ring(8);
        w.event(TraceKind::Deliver, 1, 2, 100);
        w.event(TraceKind::Wakeup, 1, 2, 1);
        let text = r.dump_text();
        assert!(text.contains("deliver"), "{text}");
        assert!(text.contains("wakeup"), "{text}");
        w.event(TraceKind::Drop, 1, 2, 0);
        let json = r.dump_json().render();
        assert!(json.contains("\"kind\":\"drop\""), "{json}");
        assert!(json.contains("\"endpoint\":2"), "{json}");
    }

    #[test]
    fn cross_thread_stream_preserves_order() {
        let (mut w, mut r) = trace_ring(16);
        const N: u32 = 10_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                // record() is lossy under overrun; drained + lost must
                // still account for every one of the N attempts.
                w.record(ev(TraceKind::Send, i));
                if i % 64 == 0 {
                    std::thread::yield_now();
                }
            }
            w
        });
        let mut seen: Vec<u32> = Vec::new();
        while !producer.is_finished() {
            seen.extend(r.drain().into_iter().map(|e| e.arg));
        }
        let mut w = producer.join().unwrap();
        seen.extend(r.drain().into_iter().map(|e| e.arg));
        let lost = r.lost();
        assert_eq!(
            seen.len() as u64 + lost,
            u64::from(N),
            "events vanished untallied"
        );
        assert!(seen.windows(2).all(|p| p[0] < p[1]), "order broken");
        // The ring is reusable after a full drain.
        w.record(ev(TraceKind::Wakeup, 1));
        assert_eq!(r.drain().len(), 1);
    }
}
