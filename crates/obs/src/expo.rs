//! Dependency-free Prometheus-style text exposition.
//!
//! Dashboards need the telemetry the recorders gather, and the standard
//! transport for that is the Prometheus text format — `# HELP`/`# TYPE`
//! headers, one `name{labels} value` sample per line, histograms as
//! cumulative `_bucket{le="…"}` series. This module renders
//! [`EngineTelemetrySnapshot`] and [`TransportSnapshot`] into that format
//! with **stable metric names** (golden-tested in
//! `tests/expo_golden.rs`), entirely from the standard library.
//!
//! Serving is equally minimal: [`serve_once`] answers exactly one HTTP
//! request on an already-bound listener, and [`ExpoServer`] loops that in
//! a background thread. Both run strictly on the observer side — the
//! engine never blocks on, or even knows about, the listener.
//!
//! Metric-name contract (dashboards depend on these):
//!
//! | metric | type | labels |
//! |---|---|---|
//! | `flipc_iteration_work` | histogram | `node` |
//! | `flipc_deliver_latency_ns` | histogram | `node`, `endpoint` |
//! | `flipc_trace_events_lost_total` | counter | `node` |
//! | `flipc_net_sent_total` | counter | `node`, `peer` |
//! | `flipc_net_retransmitted_total` | counter | `node`, `peer` |
//! | `flipc_net_delivered_total` | counter | `node`, `peer` |
//! | `flipc_net_dup_dropped_total` | counter | `node`, `peer` |
//! | `flipc_net_out_of_window_total` | counter | `node`, `peer` |
//! | `flipc_net_wire_dropped_total` | counter | `node`, `peer` |
//! | `flipc_net_failed_total` | counter | `node`, `peer` |
//! | `flipc_net_stale_epoch_total` | counter | `node`, `peer` |
//! | `flipc_net_pings_total` | counter | `node`, `peer` |
//! | `flipc_net_credit_stalls_total` | counter | `node`, `peer` |
//! | `flipc_net_credit_shrinks_total` | counter | `node`, `peer` |
//! | `flipc_net_in_flight` | gauge | `node`, `peer` |
//! | `flipc_net_credit_window` | gauge | `node`, `peer` |
//! | `flipc_net_peer_state` | gauge | `node`, `peer` (0 healthy, 1 suspect, 2 dead) |
//! | `flipc_net_srtt_ticks` | gauge | `node`, `peer` |
//! | `flipc_net_rttvar_ticks` | gauge | `node`, `peer` |
//! | `flipc_net_rto_current_ticks` | gauge | `node`, `peer` |
//! | `flipc_net_epoch` | gauge | `node`, `peer` |
//! | `flipc_net_clock_offset_ns` | gauge | `node`, `peer` (signed) |
//! | `flipc_net_clock_dispersion_ns` | gauge | `node`, `peer` |
//! | `flipc_net_clock_samples` | gauge | `node`, `peer` |
//! | `flipc_net_decode_errors_total` | counter | `node` |
//! | `flipc_net_unknown_peer_total` | counter | `node` |
//! | `flipc_net_epoch_resyncs_total` | counter | `node` |
//! | `flipc_net_rto_ticks` | histogram | `node` |
//! | `flipc_net_retransmit_burst` | histogram | `node` |
//! | `flipc_net_batch_datagrams_total` | counter | `node` |
//! | `flipc_net_batch_frames_total` | counter | `node` |
//! | `flipc_net_batch_size` | histogram | `node` |
//! | `flipc_workload_published_total` | counter | `workload`, `node` |
//! | `flipc_workload_delivered_total` | counter | `workload`, `node` |
//! | `flipc_workload_dropped_total` | counter | `workload`, `node` |
//! | `flipc_workload_retried_total` | counter | `workload`, `node` |
//! | `flipc_workload_replayed_total` | counter | `workload`, `node` |
//! | `flipc_workload_acked_total` | counter | `workload`, `node` |
//! | `flipc_workload_invariant_violations_total` | counter | `workload`, `node` |
//! | `flipc_workload_backlog` | gauge | `workload`, `node` |
//! | `flipc_workload_latency_ns` | histogram | `workload`, `node`, `class` |
//!
//! The HTTP side understands exactly two paths: anything (the metrics
//! page) and `/healthz` (a constant `ok` liveness probe), and speaks
//! enough HTTP/1.1 to keep a scrape connection open (`connection:
//! keep-alive` honoured, one correct `content-length` per response).

use flipc_core::sync::atomic::{AtomicBool, Ordering};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

use flipc_core::hist::{bucket_bounds, HistogramSnapshot};
use flipc_core::inspect::TransportSnapshot;

use crate::telemetry::EngineTelemetrySnapshot;
use crate::workload::WorkloadSnapshot;

/// Prometheus sample types this renderer knows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetricType {
    Counter,
    Gauge,
    Histogram,
}

impl MetricType {
    fn name(self) -> &'static str {
        match self {
            MetricType::Counter => "counter",
            MetricType::Gauge => "gauge",
            MetricType::Histogram => "histogram",
        }
    }
}

/// One metric family: a HELP/TYPE header plus its samples, rendered in
/// insertion order.
struct Family {
    name: String,
    help: &'static str,
    kind: MetricType,
    /// Pre-rendered sample lines (`name{labels} value`).
    lines: Vec<String>,
}

/// Label set for one sample: `(key, value)` pairs rendered in order.
pub type Labels<'a> = &'a [(&'a str, String)];

/// Builder for one exposition page.
///
/// Families render in first-registration order, so repeated exposure of
/// the same snapshot structure yields byte-identical layout — the property
/// the golden test pins down.
#[derive(Default)]
pub struct Exposition {
    families: Vec<Family>,
}

impl Exposition {
    /// An empty page.
    pub fn new() -> Exposition {
        Exposition::default()
    }

    fn family(&mut self, name: &str, help: &'static str, kind: MetricType) -> &mut Family {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            assert_eq!(
                self.families[i].kind, kind,
                "metric {name} registered with two types"
            );
            return &mut self.families[i];
        }
        self.families.push(Family {
            name: name.to_owned(),
            help,
            kind,
            lines: Vec::new(),
        });
        self.families.last_mut().expect("just pushed")
    }

    fn sample(family: &mut Family, suffix: &str, labels: Labels<'_>, value: &str) {
        let mut line = String::with_capacity(64);
        line.push_str(&family.name);
        line.push_str(suffix);
        if !labels.is_empty() {
            line.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(k);
                line.push_str("=\"");
                // Prometheus label escaping: backslash, quote, newline.
                for c in v.chars() {
                    match c {
                        '\\' => line.push_str("\\\\"),
                        '"' => line.push_str("\\\""),
                        '\n' => line.push_str("\\n"),
                        c => line.push(c),
                    }
                }
                line.push('"');
            }
            line.push('}');
        }
        line.push(' ');
        line.push_str(value);
        family.lines.push(line);
    }

    /// Adds one counter sample.
    pub fn counter(&mut self, name: &str, help: &'static str, labels: Labels<'_>, value: u64) {
        let f = self.family(name, help, MetricType::Counter);
        Exposition::sample(f, "", labels, &value.to_string());
    }

    /// Adds one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &'static str, labels: Labels<'_>, value: u64) {
        let f = self.family(name, help, MetricType::Gauge);
        Exposition::sample(f, "", labels, &value.to_string());
    }

    /// Adds one signed gauge sample (Prometheus gauges may go negative —
    /// the clock-offset estimate does whenever the peer's clock lags).
    pub fn gauge_signed(&mut self, name: &str, help: &'static str, labels: Labels<'_>, value: i64) {
        let f = self.family(name, help, MetricType::Gauge);
        Exposition::sample(f, "", labels, &value.to_string());
    }

    /// Adds one histogram series: cumulative `_bucket{le="…"}` lines for
    /// every non-empty log₂ bucket plus the mandatory `le="+Inf"`, then
    /// `_sum` and `_count`. The `le` bound of bucket `i` is its inclusive
    /// upper value bound from [`bucket_bounds`].
    pub fn histogram(
        &mut self,
        name: &str,
        help: &'static str,
        labels: Labels<'_>,
        h: &HistogramSnapshot,
    ) {
        let f = self.family(name, help, MetricType::Histogram);
        let total: u64 = h.count();
        let mut cum = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            let (_, hi) = bucket_bounds(i, h.buckets.len());
            if hi == u64::MAX {
                // The top bucket is the +Inf bucket rendered below.
                continue;
            }
            let mut le_labels: Vec<(&str, String)> = labels.to_vec();
            le_labels.push(("le", hi.to_string()));
            Exposition::sample(f, "_bucket", &le_labels, &cum.to_string());
        }
        let mut inf_labels: Vec<(&str, String)> = labels.to_vec();
        inf_labels.push(("le", "+Inf".to_owned()));
        Exposition::sample(f, "_bucket", &inf_labels, &total.to_string());
        Exposition::sample(f, "_sum", labels, &h.sum.to_string());
        Exposition::sample(f, "_count", labels, &total.to_string());
    }

    /// Renders the whole page (trailing newline included).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for f in &self.families {
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.name());
            for line in &f.lines {
                let _ = writeln!(out, "{line}");
            }
        }
        out
    }
}

/// Exposes one engine's telemetry snapshot under the stable names
/// `flipc_iteration_work` and `flipc_deliver_latency_ns` (per-endpoint),
/// labelled with this engine's `node`.
pub fn expose_engine(expo: &mut Exposition, node: u16, snap: &EngineTelemetrySnapshot) {
    let node_l = node.to_string();
    expo.histogram(
        "flipc_iteration_work",
        "Messages moved per engine-loop pass.",
        &[("node", node_l.clone())],
        &snap.iteration_work,
    );
    for (e, h) in snap.deliver_latency.iter().enumerate() {
        if h.count() == 0 {
            continue;
        }
        expo.histogram(
            "flipc_deliver_latency_ns",
            "Send-to-deliver latency per receive endpoint, nanoseconds.",
            &[("node", node_l.clone()), ("endpoint", e.to_string())],
            h,
        );
    }
}

/// Exposes the trace ring's lost-event tally for one node.
pub fn expose_trace_lost(expo: &mut Exposition, node: u16, lost: u64) {
    expo.counter(
        "flipc_trace_events_lost_total",
        "Trace events dropped because the ring was full.",
        &[("node", node.to_string())],
        lost,
    );
}

/// Exposes a transport snapshot under the stable `flipc_net_*` names
/// (per-peer counters + gauges, node-scope error counters, retransmit
/// histograms).
pub fn expose_transport(expo: &mut Exposition, snap: &TransportSnapshot) {
    let node = snap.local.0.to_string();
    for p in &snap.paths {
        let labels = [("node", node.clone()), ("peer", p.peer.0.to_string())];
        let counters: [(&str, &'static str, u32); 11] = [
            (
                "flipc_net_sent_total",
                "Data frames transmitted for the first time.",
                p.sent,
            ),
            (
                "flipc_net_retransmitted_total",
                "Data frames re-transmitted by the reliability layer.",
                p.retransmitted,
            ),
            (
                "flipc_net_delivered_total",
                "In-order frames handed up to the engine.",
                p.delivered,
            ),
            (
                "flipc_net_dup_dropped_total",
                "Duplicate arrivals discarded by the dedup window.",
                p.dup_dropped,
            ),
            (
                "flipc_net_out_of_window_total",
                "Arrivals outside the reorder window, discarded.",
                p.out_of_window,
            ),
            (
                "flipc_net_wire_dropped_total",
                "First-transmission attempts the wire refused.",
                p.wire_dropped,
            ),
            (
                "flipc_net_failed_total",
                "Sends failed back to the application by the peer lifecycle.",
                p.failed,
            ),
            (
                "flipc_net_stale_epoch_total",
                "Datagrams from a stale session epoch, rejected.",
                p.stale_epoch,
            ),
            (
                "flipc_net_pings_total",
                "Idle-path heartbeat pings sent.",
                p.pings,
            ),
            (
                "flipc_net_credit_stalls_total",
                "Sends refused by the credit grant or fairness arbiter.",
                p.credit_stalls,
            ),
            (
                "flipc_net_credit_shrinks_total",
                "Credit window shrink events (AIMD halvings and congestion clamps).",
                p.credit_shrinks,
            ),
        ];
        for (name, help, v) in counters {
            expo.counter(name, help, &labels, u64::from(v));
        }
        expo.gauge(
            "flipc_net_in_flight",
            "Frames sent and not yet cumulatively acknowledged.",
            &labels,
            u64::from(p.in_flight),
        );
        let gauges: [(&str, &'static str, u64); 6] = [
            (
                "flipc_net_peer_state",
                "Failure-detector verdict: 0 healthy, 1 suspect, 2 dead.",
                u64::from(p.liveness.as_u8()),
            ),
            (
                "flipc_net_srtt_ticks",
                "Smoothed round-trip time estimate, transport clock ticks.",
                p.srtt,
            ),
            (
                "flipc_net_rttvar_ticks",
                "Round-trip time variance estimate, transport clock ticks.",
                p.rttvar,
            ),
            (
                "flipc_net_rto_current_ticks",
                "Retransmit timeout currently armed for this path.",
                p.rto,
            ),
            (
                "flipc_net_epoch",
                "This node's current session epoch on the path.",
                u64::from(p.epoch),
            ),
            (
                "flipc_net_credit_window",
                "Effective send window under the peer's receiver-granted credit.",
                u64::from(p.credit_window),
            ),
        ];
        for (name, help, v) in gauges {
            expo.gauge(name, help, &labels, v);
        }
        expo.gauge_signed(
            "flipc_net_clock_offset_ns",
            "Estimated offset of the peer's trace clock, nanoseconds (signed).",
            &labels,
            p.clock_offset_ns,
        );
        expo.gauge(
            "flipc_net_clock_dispersion_ns",
            "Error bound on the clock offset estimate, nanoseconds.",
            &labels,
            p.clock_dispersion_ns,
        );
        expo.gauge(
            "flipc_net_clock_samples",
            "Clock-sync samples folded into the estimate this epoch.",
            &labels,
            p.clock_samples,
        );
    }
    let node_l = [("node", node.clone())];
    expo.counter(
        "flipc_net_decode_errors_total",
        "Datagrams rejected before peer attribution.",
        &node_l,
        u64::from(snap.decode_errors),
    );
    expo.counter(
        "flipc_net_unknown_peer_total",
        "Well-formed datagrams from unconfigured node ids.",
        &node_l,
        u64::from(snap.unknown_peer),
    );
    expo.counter(
        "flipc_net_epoch_resyncs_total",
        "Paths resynchronized after a peer arrived on a newer epoch.",
        &node_l,
        u64::from(snap.epoch_resyncs),
    );
    expo.histogram(
        "flipc_net_rto_ticks",
        "Retransmit timeouts that fired, in transport clock ticks.",
        &node_l,
        &snap.rto,
    );
    expo.histogram(
        "flipc_net_retransmit_burst",
        "Frames re-sent per go-back-N retransmit round.",
        &node_l,
        &snap.retransmit_burst,
    );
    expo.counter(
        "flipc_net_batch_datagrams_total",
        "Coalesced Batch datagrams transmitted.",
        &node_l,
        u64::from(snap.batch_datagrams),
    );
    expo.counter(
        "flipc_net_batch_frames_total",
        "Sub-frames carried inside coalesced Batch datagrams.",
        &node_l,
        u64::from(snap.batch_frames),
    );
    expo.histogram(
        "flipc_net_batch_size",
        "Sub-frames per transmitted Batch datagram.",
        &node_l,
        &snap.batch_size,
    );
}

/// Exposes one workload snapshot under the stable `flipc_workload_*`
/// names, labelled `{workload, node}` (plus `class` on the latency
/// histogram).
pub fn expose_workload(expo: &mut Exposition, snap: &WorkloadSnapshot) {
    let labels = [
        ("workload", snap.workload.clone()),
        ("node", snap.node.to_string()),
    ];
    let counters: [(&str, &'static str, u64); 7] = [
        (
            "flipc_workload_published_total",
            "Messages the application asked the workload to send.",
            snap.published,
        ),
        (
            "flipc_workload_delivered_total",
            "Messages handed to the application in order.",
            snap.delivered,
        ),
        (
            "flipc_workload_dropped_total",
            "Messages knowingly shed (at-most-once backpressure, expired deadlines).",
            snap.dropped,
        ),
        (
            "flipc_workload_retried_total",
            "Application-level retransmissions on the reliable paths.",
            snap.retried,
        ),
        (
            "flipc_workload_replayed_total",
            "Log entries re-delivered through a replay-from-offset fetch.",
            snap.replayed,
        ),
        (
            "flipc_workload_acked_total",
            "Application-level acknowledgements received.",
            snap.acked,
        ),
        (
            "flipc_workload_invariant_violations_total",
            "Workload invariant breaches observed (must stay zero).",
            snap.invariant_violations,
        ),
    ];
    for (name, help, v) in counters {
        expo.counter(name, help, &labels, v);
    }
    expo.gauge(
        "flipc_workload_backlog",
        "Messages accepted but not yet deliverable (buffers, outboxes, queues).",
        &labels,
        snap.backlog,
    );
    for c in &snap.classes {
        if c.latency.count() == 0 {
            continue;
        }
        let class_labels = [
            ("workload", snap.workload.clone()),
            ("node", snap.node.to_string()),
            ("class", c.class.clone()),
        ];
        expo.histogram(
            "flipc_workload_latency_ns",
            "Workload send-to-deliver latency per traffic class, nanoseconds.",
            &class_labels,
            &c.latency,
        );
    }
}

/// A parsed HTTP request head: just enough routing state for a metrics
/// endpoint.
struct RequestHead {
    path: String,
    keep_alive: bool,
}

/// Reads one request head (through the blank line) and extracts the path
/// and connection preference. `None` on EOF, timeout, an oversized head,
/// or a malformed request line.
fn read_request_head(stream: &mut std::net::TcpStream) -> Option<RequestHead> {
    // Single-byte reads keep this free of buffering state across
    // requests on a keep-alive connection; the head is tiny and the
    // observer-side cost is irrelevant.
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= 4096 {
            return None;
        }
        match stream.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => return None,
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut lines = head.split("\r\n");
    let request = lines.next()?;
    let mut parts = request.split_ascii_whitespace();
    let _method = parts.next()?;
    let path = parts.next()?.to_string();
    let version = parts.next().unwrap_or("HTTP/1.0");
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
    // `connection:` header overrides either way.
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("connection") {
                let value = value.trim().to_ascii_lowercase();
                keep_alive = value == "keep-alive";
            }
        }
    }
    Some(RequestHead { path, keep_alive })
}

/// Writes one complete HTTP response with a correct `content-length`.
fn write_response(
    stream: &mut std::net::TcpStream,
    body: &str,
    content_type: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 200 OK\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())
}

/// Routes one parsed request: `/healthz` answers the constant liveness
/// page, every other path gets the metrics body from `render`.
fn respond(
    stream: &mut std::net::TcpStream,
    req: &RequestHead,
    render: &dyn Fn() -> String,
    keep_alive: bool,
) -> std::io::Result<()> {
    if req.path == "/healthz" {
        write_response(stream, "ok\n", "text/plain", keep_alive)
    } else {
        write_response(stream, &render(), "text/plain; version=0.0.4", keep_alive)
    }
}

/// Answers exactly one HTTP request on `listener`: `/healthz` gets the
/// liveness page, any other path gets `body` as the metrics page. The
/// connection always closes after the response (one request is the
/// contract; [`ExpoServer`] is the keep-alive path). Returns the peer
/// that was served.
///
/// Blocks until a client connects (honouring the listener's own blocking
/// mode and timeouts).
pub fn serve_once(listener: &TcpListener, body: &str) -> std::io::Result<SocketAddr> {
    let (mut stream, peer) = listener.accept()?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    if let Some(req) = read_request_head(&mut stream) {
        let body = body.to_owned();
        respond(&mut stream, &req, &move || body.clone(), false)?;
    }
    Ok(peer)
}

/// A tiny blocking metrics listener on a background thread: every request
/// gets a freshly rendered page from the supplied callback, `/healthz`
/// answers a constant liveness probe, and connections are kept alive
/// across requests when the client asks for it.
pub struct ExpoServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ExpoServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `render` until the
    /// handle is dropped.
    pub fn spawn<F>(addr: &str, render: F) -> std::io::Result<ExpoServer>
    where
        F: Fn() -> String + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        // Nonblocking accept + sleep keeps shutdown simple (no self-connect
        // tricks) at the cost of a few wakeups per second — observer-side
        // only, invisible to the engine.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let join = std::thread::Builder::new()
            .name("flipc-expo".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(false).ok();
                            serve_stream(stream, &render);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => return,
                    }
                }
            })?;
        Ok(ExpoServer {
            addr: bound,
            stop,
            join: Some(join),
        })
    }

    /// The address actually bound (resolves `:0` port requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Serves a keep-alive connection: requests are answered with freshly
/// rendered pages until the client asks to close, goes quiet (500 ms
/// read timeout), or exhausts the per-connection request budget (a
/// misbehaving scraper cannot pin the accept loop forever).
fn serve_stream(mut stream: std::net::TcpStream, render: &dyn Fn() -> String) {
    const MAX_REQUESTS_PER_CONN: u32 = 64;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    for served in 0..MAX_REQUESTS_PER_CONN {
        let Some(req) = read_request_head(&mut stream) else {
            return;
        };
        let keep_alive = req.keep_alive && served + 1 < MAX_REQUESTS_PER_CONN;
        if respond(&mut stream, &req, render, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

impl Drop for ExpoServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Reads exactly one HTTP response (head through `\r\n\r\n`, then a
/// `content-length` body) off a stream that stays open afterwards — the
/// client side of the keep-alive contract [`serve_stream`] speaks.
fn read_http_response(stream: &mut std::net::TcpStream) -> std::io::Result<(String, String)> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= 4096 {
            return Err(std::io::Error::other("oversized response head"));
        }
        match stream.read(&mut byte)? {
            1 => head.push(byte[0]),
            _ => return Err(std::io::ErrorKind::UnexpectedEof.into()),
        }
    }
    let head = String::from_utf8_lossy(&head).into_owned();
    let len: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(|v| v.trim().to_owned())
        })
        .ok_or_else(|| std::io::Error::other("no content-length"))?
        .parse()
        .map_err(std::io::Error::other)?;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok((head, String::from_utf8_lossy(&body).into_owned()))
}

/// One node's metrics page as fetched by a [`ClusterScraper`] poll
/// (`page` is `None` when the node was unreachable this round).
#[derive(Clone, Debug)]
pub struct NodeScrape {
    /// The node id the target was registered under.
    pub node: u16,
    /// The raw exposition page, or `None` on connect/read failure.
    pub page: Option<String>,
}

/// A metrics client that polls several nodes' [`ExpoServer`]s over
/// persistent keep-alive connections — the same HTTP/1.1 path a
/// `/healthz` probe uses — and hands back one page per node. Purely
/// observer-side: it shares nothing with the engines it watches except
/// the TCP sockets.
///
/// Connections are lazy and self-healing: a target that is down simply
/// yields `page: None` this round and is re-dialed on the next poll, so
/// one crashed node never stalls the rest of the cluster view.
pub struct ClusterScraper {
    targets: Vec<(u16, SocketAddr)>,
    conns: Vec<Option<std::net::TcpStream>>,
}

impl ClusterScraper {
    /// A scraper over `(node id, exposition address)` targets.
    pub fn new(targets: &[(u16, SocketAddr)]) -> ClusterScraper {
        ClusterScraper {
            targets: targets.to_vec(),
            conns: targets.iter().map(|_| None).collect(),
        }
    }

    /// The registered `(node id, address)` targets, in poll order.
    pub fn targets(&self) -> &[(u16, SocketAddr)] {
        &self.targets
    }

    /// Polls every target once, reusing each node's keep-alive
    /// connection when it is still good and re-dialing when it is not.
    pub fn scrape(&mut self) -> Vec<NodeScrape> {
        let mut out = Vec::with_capacity(self.targets.len());
        for (i, &(node, addr)) in self.targets.iter().enumerate() {
            let page = self.conns[i]
                .as_mut()
                .and_then(|c| Self::fetch(c, "/metrics").ok())
                .or_else(|| {
                    // Stale or absent connection: one fresh dial attempt.
                    self.conns[i] = Self::dial(addr);
                    self.conns[i]
                        .as_mut()
                        .and_then(|c| Self::fetch(c, "/metrics").ok())
                });
            if page.is_none() {
                self.conns[i] = None;
            }
            out.push(NodeScrape { node, page });
        }
        out
    }

    fn dial(addr: SocketAddr) -> Option<std::net::TcpStream> {
        let stream =
            std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500)).ok()?;
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .ok()?;
        Some(stream)
    }

    fn fetch(stream: &mut std::net::TcpStream, path: &str) -> std::io::Result<String> {
        let req = format!("GET {path} HTTP/1.1\r\nhost: flipc\r\nconnection: keep-alive\r\n\r\n");
        stream.write_all(req.as_bytes())?;
        let (_head, body) = read_http_response(stream)?;
        Ok(body)
    }
}

/// Merges per-node exposition pages into one cluster-wide page: each
/// family's `# HELP`/`# TYPE` headers are emitted once (first node
/// wins), and sample lines pass through untouched — the `expose_*`
/// helpers already stamp every sample with its `node` label, which is
/// what keeps the merged families disjoint.
pub fn merge_pages(scrapes: &[NodeScrape]) -> String {
    let mut out = String::new();
    let mut seen_help: Vec<String> = Vec::new();
    let mut seen_type: Vec<String> = Vec::new();
    for s in scrapes {
        let Some(page) = &s.page else { continue };
        for line in page.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let fam = rest.split_whitespace().next().unwrap_or_default();
                if seen_help.iter().any(|f| f == fam) {
                    continue;
                }
                seen_help.push(fam.to_owned());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let fam = rest.split_whitespace().next().unwrap_or_default();
                if seen_type.iter().any(|f| f == fam) {
                    continue;
                }
                seen_type.push(fam.to_owned());
            }
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Extracts the value of the first sample in `page` whose metric name is
/// exactly `name` and whose label block contains every `(key, value)`
/// pair in `labels`. Works on single-node and merged pages alike; `None`
/// when no sample matches.
pub fn sample_value(page: &str, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    for line in page.lines() {
        if line.starts_with('#') || !line.starts_with(name) {
            continue;
        }
        let rest = &line[name.len()..];
        // The name must end here: either a label block or the value.
        let (label_block, value) = match rest.strip_prefix('{') {
            Some(tail) => {
                let (block, value) = tail.split_once("} ")?;
                (block, value)
            }
            None => match rest.strip_prefix(' ') {
                Some(value) => ("", value),
                None => continue,
            },
        };
        let all = labels
            .iter()
            .all(|(k, v)| label_block.contains(&format!("{k}=\"{v}\"")));
        if all {
            return value.trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipc_core::hist::BUCKETS;

    #[test]
    fn families_dedupe_help_and_type_headers() {
        let mut e = Exposition::new();
        e.counter("flipc_x_total", "X.", &[("node", "0".into())], 1);
        e.counter("flipc_x_total", "X.", &[("node", "1".into())], 2);
        let page = e.render();
        assert_eq!(page.matches("# HELP flipc_x_total").count(), 1);
        assert_eq!(page.matches("# TYPE flipc_x_total counter").count(), 1);
        assert!(page.contains("flipc_x_total{node=\"0\"} 1\n"));
        assert!(page.contains("flipc_x_total{node=\"1\"} 2\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let mut h = HistogramSnapshot::empty(BUCKETS);
        h.buckets[1] = 3; // values in [1,1]
        h.buckets[3] = 2; // values in [4,7]
        h.sum = 13;
        let mut e = Exposition::new();
        e.histogram("flipc_h", "H.", &[], &h);
        let page = e.render();
        assert!(page.contains("flipc_h_bucket{le=\"1\"} 3\n"), "{page}");
        assert!(page.contains("flipc_h_bucket{le=\"7\"} 5\n"), "{page}");
        assert!(page.contains("flipc_h_bucket{le=\"+Inf\"} 5\n"), "{page}");
        assert!(page.contains("flipc_h_sum 13\n"));
        assert!(page.contains("flipc_h_count 5\n"));
    }

    #[test]
    fn top_bucket_samples_surface_only_in_inf() {
        let mut h = HistogramSnapshot::empty(BUCKETS);
        h.buckets[BUCKETS - 1] = 4;
        let mut e = Exposition::new();
        e.histogram("flipc_h", "H.", &[], &h);
        let page = e.render();
        assert!(page.contains("flipc_h_bucket{le=\"+Inf\"} 4\n"), "{page}");
        assert_eq!(page.matches("_bucket").count(), 1, "{page}");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut e = Exposition::new();
        e.gauge("g", "G.", &[("who", "a\"b\\c\nd".into())], 7);
        assert!(e.render().contains("g{who=\"a\\\"b\\\\c\\nd\"} 7\n"));
    }

    #[test]
    fn serve_once_answers_http() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve_once(&listener, "flipc_up 1\n").unwrap());
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        server.join().unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("text/plain"), "{resp}");
        assert!(resp.ends_with("flipc_up 1\n"), "{resp}");
    }

    #[test]
    fn expo_server_serves_fresh_pages_until_dropped() {
        use flipc_core::sync::atomic::AtomicU64;
        let n = Arc::new(AtomicU64::new(0));
        let n2 = n.clone();
        let server = ExpoServer::spawn("127.0.0.1:0", move || {
            format!("flipc_page {}\n", n2.fetch_add(1, Ordering::Relaxed))
        })
        .unwrap();
        let fetch = |addr| {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            s.write_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
            let mut r = String::new();
            s.read_to_string(&mut r).unwrap();
            r
        };
        let a = fetch(server.addr());
        let b = fetch(server.addr());
        assert!(a.contains("flipc_page 0"), "{a}");
        assert!(b.contains("flipc_page 1"), "{b}");
        drop(server);
    }

    /// Reads exactly one HTTP response (head + `content-length` body)
    /// off a stream that may stay open — the keep-alive test's parser.
    fn read_one_response(stream: &mut std::net::TcpStream) -> (String, String) {
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            assert_eq!(stream.read(&mut byte).unwrap(), 1, "head truncated");
            head.push(byte[0]);
        }
        let head = String::from_utf8(head).unwrap();
        let len: usize = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(str::trim)
                    .map(str::to_owned)
            })
            .expect("content-length present")
            .parse()
            .unwrap();
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).unwrap();
        (head, String::from_utf8(body).unwrap())
    }

    #[test]
    fn healthz_answers_ok_on_both_serve_paths() {
        // serve_once.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve_once(&listener, "flipc_up 1\n").unwrap());
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        server.join().unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("content-length: 3\r\n"), "{resp}");
        assert!(resp.ends_with("ok\n"), "{resp}");
        // ExpoServer.
        let server = ExpoServer::spawn("127.0.0.1:0", || "flipc_up 1\n".to_string()).unwrap();
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.ends_with("ok\n"), "{resp}");
        drop(server);
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        use flipc_core::sync::atomic::AtomicU64;
        let n = Arc::new(AtomicU64::new(0));
        let n2 = n.clone();
        let server = ExpoServer::spawn("127.0.0.1:0", move || {
            format!("flipc_page {}\n", n2.fetch_add(1, Ordering::Relaxed))
        })
        .unwrap();
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        // HTTP/1.1 defaults to keep-alive: three requests, one socket,
        // each response freshly rendered with its own content-length.
        for expect in 0..3u64 {
            stream
                .write_all(b"GET /metrics HTTP/1.1\r\nhost: x\r\n\r\n")
                .unwrap();
            let (head, body) = read_one_response(&mut stream);
            assert!(head.contains("connection: keep-alive"), "{head}");
            assert!(
                head.contains(&format!("content-length: {}", body.len())),
                "{head}"
            );
            assert_eq!(body, format!("flipc_page {expect}\n"));
        }
        // A mid-stream healthz rides the same connection.
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap();
        let (_, body) = read_one_response(&mut stream);
        assert_eq!(body, "ok\n");
        // An explicit close is honoured: response, then EOF.
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n")
            .unwrap();
        let (head, _) = read_one_response(&mut stream);
        assert!(head.contains("connection: close"), "{head}");
        let mut rest = String::new();
        stream.read_to_string(&mut rest).unwrap();
        assert!(rest.is_empty(), "connection must close after response");
        drop(server);
    }

    #[test]
    fn cluster_scraper_polls_and_merges_nodes_and_survives_a_dead_target() {
        let s0 = ExpoServer::spawn("127.0.0.1:0", || {
            "# HELP flipc_x X.\n# TYPE flipc_x gauge\nflipc_x{node=\"0\"} 1\n".to_string()
        })
        .unwrap();
        let s1 = ExpoServer::spawn("127.0.0.1:0", || {
            "# HELP flipc_x X.\n# TYPE flipc_x gauge\nflipc_x{node=\"1\"} -2\n".to_string()
        })
        .unwrap();
        // A target nobody listens on: bind-then-drop frees the port.
        let dead = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let mut scraper = ClusterScraper::new(&[(0, s0.addr()), (1, s1.addr()), (7, dead)]);
        for _ in 0..2 {
            // Two rounds: the second reuses the keep-alive connections.
            let scrapes = scraper.scrape();
            assert_eq!(scrapes.len(), 3);
            assert!(scrapes[0].page.as_deref().unwrap().contains("node=\"0\""));
            assert!(scrapes[1].page.as_deref().unwrap().contains("node=\"1\""));
            assert!(scrapes[2].page.is_none(), "dead target reads None");
            let merged = merge_pages(&scrapes);
            assert_eq!(
                merged.matches("# HELP flipc_x").count(),
                1,
                "family headers dedupe:\n{merged}"
            );
            assert_eq!(merged.matches("# TYPE flipc_x gauge").count(), 1);
            assert!(merged.contains("flipc_x{node=\"0\"} 1\n"));
            assert!(merged.contains("flipc_x{node=\"1\"} -2\n"));
            assert_eq!(
                sample_value(&merged, "flipc_x", &[("node", "0")]),
                Some(1.0)
            );
            assert_eq!(
                sample_value(&merged, "flipc_x", &[("node", "1")]),
                Some(-2.0),
                "signed gauges parse"
            );
            assert_eq!(sample_value(&merged, "flipc_x", &[("node", "9")]), None);
        }
        drop((s0, s1));
    }

    #[test]
    fn sample_value_matches_exact_names_and_bare_samples() {
        let page = "flipc_xy 3\nflipc_x 7\n";
        // `flipc_x` must not match the longer `flipc_xy` line.
        assert_eq!(sample_value(page, "flipc_x", &[]), Some(7.0));
        assert_eq!(sample_value(page, "flipc_xy", &[]), Some(3.0));
        assert_eq!(sample_value(page, "flipc_z", &[]), None);
    }

    #[test]
    fn workload_exposure_uses_stable_names() {
        use crate::workload::{WorkloadClass, WorkloadSnapshot};
        let mut lat = HistogramSnapshot::empty(BUCKETS);
        lat.buckets[4] = 7; // values in [8,15]
        lat.sum = 70;
        let mut snap = WorkloadSnapshot::new("broadcast", 2);
        snap.published = 30;
        snap.delivered = 28;
        snap.dropped = 1;
        snap.retried = 5;
        snap.replayed = 0;
        snap.acked = 28;
        snap.invariant_violations = 0;
        snap.backlog = 2;
        snap.classes.push(WorkloadClass {
            class: "topic0".to_string(),
            latency: lat,
        });
        snap.classes.push(WorkloadClass {
            class: "quiet".to_string(),
            latency: HistogramSnapshot::empty(BUCKETS),
        });
        let mut e = Exposition::new();
        expose_workload(&mut e, &snap);
        let page = e.render();
        for needle in [
            "flipc_workload_published_total{workload=\"broadcast\",node=\"2\"} 30",
            "flipc_workload_delivered_total{workload=\"broadcast\",node=\"2\"} 28",
            "flipc_workload_dropped_total{workload=\"broadcast\",node=\"2\"} 1",
            "flipc_workload_retried_total{workload=\"broadcast\",node=\"2\"} 5",
            "flipc_workload_replayed_total{workload=\"broadcast\",node=\"2\"} 0",
            "flipc_workload_acked_total{workload=\"broadcast\",node=\"2\"} 28",
            "flipc_workload_invariant_violations_total{workload=\"broadcast\",node=\"2\"} 0",
            "flipc_workload_backlog{workload=\"broadcast\",node=\"2\"} 2",
            "flipc_workload_latency_ns_count{workload=\"broadcast\",node=\"2\",class=\"topic0\"} 7",
        ] {
            assert!(page.contains(needle), "missing {needle:?} in:\n{page}");
        }
        // Quiet classes are not exposed.
        assert!(!page.contains("class=\"quiet\""), "{page}");
    }

    #[test]
    fn engine_and_transport_exposure_use_stable_names() {
        use flipc_core::endpoint::FlipcNodeId;
        use flipc_core::inspect::PathSnapshot;
        let mut lat = HistogramSnapshot::empty(BUCKETS);
        lat.buckets[11] = 5;
        lat.sum = 5_000;
        let snap = crate::telemetry::EngineTelemetrySnapshot {
            iteration_work: HistogramSnapshot::empty(BUCKETS),
            deliver_latency: vec![HistogramSnapshot::empty(BUCKETS), lat],
        };
        let tsnap = TransportSnapshot {
            local: FlipcNodeId(0),
            paths: vec![PathSnapshot {
                peer: FlipcNodeId(1),
                sent: 10,
                retransmitted: 2,
                delivered: 9,
                dup_dropped: 1,
                out_of_window: 0,
                wire_dropped: 0,
                in_flight: 1,
                failed: 4,
                stale_epoch: 2,
                pings: 6,
                credit_stalls: 11,
                credit_shrinks: 3,
                credit_window: 6,
                liveness: flipc_core::inspect::PeerLiveness::Suspect,
                srtt: 120,
                rttvar: 30,
                rto: 240,
                epoch: 3,
                clock_offset_ns: -750,
                clock_dispersion_ns: 90,
                clock_samples: 5,
            }],
            decode_errors: 0,
            unknown_peer: 0,
            epoch_resyncs: 1,
            rto: HistogramSnapshot::empty(BUCKETS),
            retransmit_burst: HistogramSnapshot::empty(BUCKETS),
            batch_datagrams: 3,
            batch_frames: 12,
            batch_size: HistogramSnapshot::empty(BUCKETS),
        };
        let mut e = Exposition::new();
        expose_engine(&mut e, 0, &snap);
        expose_trace_lost(&mut e, 0, 3);
        expose_transport(&mut e, &tsnap);
        let page = e.render();
        for needle in [
            "# TYPE flipc_iteration_work histogram",
            "flipc_deliver_latency_ns_count{node=\"0\",endpoint=\"1\"} 5",
            "flipc_trace_events_lost_total{node=\"0\"} 3",
            "flipc_net_sent_total{node=\"0\",peer=\"1\"} 10",
            "flipc_net_in_flight{node=\"0\",peer=\"1\"} 1",
            "flipc_net_failed_total{node=\"0\",peer=\"1\"} 4",
            "flipc_net_stale_epoch_total{node=\"0\",peer=\"1\"} 2",
            "flipc_net_pings_total{node=\"0\",peer=\"1\"} 6",
            "flipc_net_credit_stalls_total{node=\"0\",peer=\"1\"} 11",
            "flipc_net_credit_shrinks_total{node=\"0\",peer=\"1\"} 3",
            "flipc_net_credit_window{node=\"0\",peer=\"1\"} 6",
            "flipc_net_peer_state{node=\"0\",peer=\"1\"} 1",
            "flipc_net_srtt_ticks{node=\"0\",peer=\"1\"} 120",
            "flipc_net_rttvar_ticks{node=\"0\",peer=\"1\"} 30",
            "flipc_net_rto_current_ticks{node=\"0\",peer=\"1\"} 240",
            "flipc_net_epoch{node=\"0\",peer=\"1\"} 3",
            "flipc_net_clock_offset_ns{node=\"0\",peer=\"1\"} -750",
            "flipc_net_clock_dispersion_ns{node=\"0\",peer=\"1\"} 90",
            "flipc_net_clock_samples{node=\"0\",peer=\"1\"} 5",
            "flipc_net_decode_errors_total{node=\"0\"} 0",
            "flipc_net_epoch_resyncs_total{node=\"0\"} 1",
            "# TYPE flipc_net_retransmit_burst histogram",
            "flipc_net_batch_datagrams_total{node=\"0\"} 3",
            "flipc_net_batch_frames_total{node=\"0\"} 12",
            "# TYPE flipc_net_batch_size histogram",
        ] {
            assert!(page.contains(needle), "missing {needle:?} in:\n{page}");
        }
        // Quiet endpoints are not exposed (ep0 delivered nothing).
        assert!(!page.contains("endpoint=\"0\""), "{page}");
    }
}
