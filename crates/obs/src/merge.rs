//! Merging per-node trace timelines onto one reference clock.
//!
//! Every [`crate::trace`] ring stamps events with its own process's
//! [`crate::now_ns`] counter, so two nodes' timelines live in unrelated
//! clock domains. The transport's clock-sync exchange (`flipc-net`'s
//! `ClockSync`, fed by the v3 ping/pong timestamps) measures exactly the
//! conversion: a signed per-peer *offset* plus a *dispersion* bounding
//! how wrong it may be. This module applies that conversion:
//!
//! 1. **Rebase** — each node's events are shifted by its offset onto the
//!    chosen reference clock (the node whose offset is 0).
//! 2. **Reconstruct** — the rebased per-node streams feed one
//!    [`TimelineBuilder`] batch per node, so all the existing endpoint /
//!    gap / loss accounting applies unchanged (the per-endpoint view
//!    depends only on per-node subsequences — the builder's documented
//!    grouping invariant).
//! 3. **Chain** — the merged, time-sorted stream is walked once to pair
//!    cross-node send→deliver chains: a `Send` on node *n* enters *n*'s
//!    pending FIFO, and a `Deliver` on node *m* pops the oldest pending
//!    send from a *different* node (cross-process traffic is the reason
//!    this module exists; a same-node send is only the fallback, and
//!    those chains are already counted by the per-node builder). Each
//!    chain carries an **error bar**: the sum of the two nodes'
//!    dispersions, the worst-case misestimate of the rebased stamps'
//!    difference.
//!
//! The FIFO heuristic is exact whenever per-path ordering holds and the
//! trace window is complete — both true for the two-process loopback
//! harness this feeds (`flipc-top --cluster`, the cross-node bench).
//! Under loss the pairing degrades gracefully: unmatched sends stay
//! pending and surface in [`MergedTimeline::unmatched_sends`].

use crate::json::Value;
use crate::timeline::{GapStats, Timeline, TimelineBuilder};
use crate::trace::{TraceEvent, TraceKind};

/// One node's contribution to a merged timeline.
#[derive(Clone, Debug)]
pub struct NodeInput {
    /// The node id whose engine recorded `events`.
    pub node: u16,
    /// Offset to *add* to this node's stamps to land on the reference
    /// clock (nanoseconds, signed). The reference node passes 0.
    pub offset_ns: i64,
    /// Error bound on `offset_ns` (nanoseconds); 0 for the reference.
    pub dispersion_ns: u64,
    /// The node's drained trace events, in its own clock domain and in
    /// ring order.
    pub events: Vec<TraceEvent>,
    /// Events the node's ring shed before draining.
    pub lost: u64,
}

/// One reconstructed cross-node send→deliver chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrossChain {
    /// Node whose engine recorded the send.
    pub src_node: u16,
    /// Node whose engine recorded the deliver.
    pub dst_node: u16,
    /// Rebased send stamp (reference clock, ns).
    pub sent_ns: u64,
    /// Send→deliver latency on the reference clock (ns, clamped at 0
    /// when the clock error exceeds the true latency).
    pub latency_ns: u64,
    /// Error bar on `latency_ns`: the two nodes' dispersions summed.
    pub error_ns: u64,
}

/// The merged product: one [`Timeline`] over every node's events plus
/// the cross-node chain reconstruction.
#[derive(Clone, Debug)]
pub struct MergedTimeline {
    /// The usual endpoint/gap/loss reconstruction over all rebased
    /// events (per-node accounting, now on one comparable clock).
    pub timeline: Timeline,
    /// Echo of each input's `(node, offset_ns, dispersion_ns)`.
    pub nodes: Vec<(u16, i64, u64)>,
    /// Every cross-node chain, in deliver order.
    pub cross_chains: Vec<CrossChain>,
    /// Summary statistics over `cross_chains[..].latency_ns`.
    pub cross_latency: GapStats,
    /// Largest error bar among the chains (the honest "±" to print next
    /// to any cross-node latency claim).
    pub max_error_ns: u64,
    /// Sends that never found a deliver in the window (lost frames, or
    /// deliveries past the end of the trace).
    pub unmatched_sends: u64,
}

impl MergedTimeline {
    /// The p99 cross-node chain latency (ns), `None` without chains.
    pub fn cross_latency_p99_ns(&self) -> Option<u64> {
        if self.cross_chains.is_empty() {
            return None;
        }
        let mut lats: Vec<u64> = self.cross_chains.iter().map(|c| c.latency_ns).collect();
        lats.sort_unstable();
        let idx = (lats.len() - 1).min(lats.len() * 99 / 100);
        Some(lats[idx])
    }

    /// JSON form used by `flipc-top --cluster --once --json` and the
    /// two-process smoke artifact.
    pub fn to_json(&self) -> Value {
        Value::object([
            (
                "nodes",
                Value::Array(
                    self.nodes
                        .iter()
                        .map(|&(node, off, disp)| {
                            Value::object([
                                ("node", Value::from(u64::from(node))),
                                ("offset_ns", Value::Num(off as f64)),
                                ("dispersion_ns", Value::from(disp)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("cross_chains", Value::from(self.cross_chains.len() as u64)),
            ("cross_latency", self.cross_latency.to_json()),
            (
                "cross_latency_p99_ns",
                Value::from(self.cross_latency_p99_ns().unwrap_or(0)),
            ),
            ("max_error_ns", Value::from(self.max_error_ns)),
            ("unmatched_sends", Value::from(self.unmatched_sends)),
            ("timeline", self.timeline.to_json()),
        ])
    }
}

/// Shifts one stamp by a signed offset, saturating at the `u64` rails.
fn rebase(t_ns: u64, offset_ns: i64) -> u64 {
    if offset_ns >= 0 {
        t_ns.saturating_add(offset_ns as u64)
    } else {
        t_ns.saturating_sub(offset_ns.unsigned_abs())
    }
}

/// Merges per-node trace dumps onto the reference clock and reconstructs
/// cross-node send→deliver chains. Pure batch arithmetic — no clocks, no
/// atomics — so the result is a deterministic function of the inputs.
pub fn merge(inputs: &[NodeInput]) -> MergedTimeline {
    // Rebase, preserving per-node order (stamps within a node shift by
    // one constant, so order is untouched).
    let mut builder = TimelineBuilder::new();
    let mut all: Vec<TraceEvent> = Vec::new();
    for input in inputs {
        let rebased: Vec<TraceEvent> = input
            .events
            .iter()
            .map(|ev| TraceEvent {
                t_ns: rebase(ev.t_ns, input.offset_ns),
                ..*ev
            })
            .collect();
        builder.ingest(&rebased);
        builder.note_lost(input.lost);
        all.extend_from_slice(&rebased);
    }
    // One comparable clock now: sort the union. Stable, so same-stamp
    // events keep input order.
    all.sort_by_key(|ev| ev.t_ns);

    let dispersion_of = |node: u16| -> u64 {
        inputs
            .iter()
            .find(|i| i.node == node)
            .map(|i| i.dispersion_ns)
            .unwrap_or(0)
    };

    // Cross-node chain pairing over the merged order: per-node pending
    // send FIFOs; a deliver pops the oldest send from another node. When
    // the offset misestimate exceeds the one-way latency, the rebased
    // deliver sorts *before* its send — such orphan delivers wait in
    // their own FIFO and pair with the next cross-node send at a clamped
    // latency of 0 (the error bar admits the truth is unknowably small).
    let mut pending_sends: Vec<(u16, u64)> = Vec::new(); // (src node, rebased ns)
    let mut pending_delivers: Vec<(u16, u64)> = Vec::new(); // (dst node, rebased ns)
    let mut cross_chains = Vec::new();
    let mut cross_latency = GapStats::default();
    let mut max_error_ns = 0u64;
    let mut chain = |src: u16, dst: u16, sent_ns: u64, latency_ns: u64| {
        let error_ns = dispersion_of(src).saturating_add(dispersion_of(dst));
        cross_latency.record(latency_ns);
        max_error_ns = max_error_ns.max(error_ns);
        cross_chains.push(CrossChain {
            src_node: src,
            dst_node: dst,
            sent_ns,
            latency_ns,
            error_ns,
        });
    };
    for ev in &all {
        match ev.kind {
            TraceKind::Send => {
                if let Some(i) = pending_delivers.iter().position(|&(n, _)| n != ev.node) {
                    let (dst, _) = pending_delivers.remove(i);
                    chain(ev.node, dst, ev.t_ns, 0);
                } else {
                    pending_sends.push((ev.node, ev.t_ns));
                }
            }
            TraceKind::Deliver => {
                // Oldest cross-node send first; same-node only as the
                // fallback (a loopback delivery inside one node's engine,
                // already chained by the per-node builder).
                let pick = pending_sends
                    .iter()
                    .position(|&(n, _)| n != ev.node)
                    .or_else(|| (!pending_sends.is_empty()).then_some(0));
                match pick {
                    Some(i) => {
                        let (src, sent_ns) = pending_sends.remove(i);
                        if src != ev.node {
                            chain(src, ev.node, sent_ns, ev.t_ns.saturating_sub(sent_ns));
                        }
                    }
                    None => pending_delivers.push((ev.node, ev.t_ns)),
                }
            }
            _ => {}
        }
    }

    MergedTimeline {
        timeline: builder.timeline(),
        nodes: inputs
            .iter()
            .map(|i| (i.node, i.offset_ns, i.dispersion_ns))
            .collect(),
        cross_chains,
        cross_latency,
        max_error_ns,
        unmatched_sends: pending_sends.len() as u64,
    }
}

/// Parses a [`crate::trace::TraceReader::dump_json`] array back into
/// events — the wire format the cluster harness uses to ship a child
/// process's trace to the merging parent. Returns `None` on any
/// malformed element (a truncated dump must not silently become an
/// empty timeline).
pub fn events_from_json(dump: &Value) -> Option<Vec<TraceEvent>> {
    let arr = dump.as_array()?;
    let mut out = Vec::with_capacity(arr.len());
    for item in arr {
        let field = |name: &str| -> Option<f64> { item.get(name)?.as_f64() };
        out.push(TraceEvent {
            t_ns: field("t_ns")? as u64,
            kind: TraceKind::from_name(item.get("kind")?.as_str()?)?,
            node: field("node")? as u16,
            endpoint: field("endpoint")? as u16,
            arg: field("arg")? as u32,
        });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, kind: TraceKind, node: u16, endpoint: u16, arg: u32) -> TraceEvent {
        TraceEvent {
            t_ns,
            kind,
            node,
            endpoint,
            arg,
        }
    }

    /// Two nodes, node 1's clock running 1 ms ahead of node 0's: after
    /// rebasing by the (perfectly estimated) offset, the chain latencies
    /// come out exactly right in both directions.
    #[test]
    fn merge_rebases_and_chains_across_nodes() {
        let n0 = NodeInput {
            node: 0,
            offset_ns: 0,
            dispersion_ns: 0,
            events: vec![
                ev(1_000, TraceKind::Send, 0, 1, 64),
                ev(9_000, TraceKind::Deliver, 0, 2, 64),
            ],
            lost: 0,
        };
        // Node 1 stamps with a clock 1_000_000 ns ahead; its estimator
        // (run on node 0) reported that, so the merge subtracts it.
        let n1 = NodeInput {
            node: 1,
            offset_ns: -1_000_000,
            dispersion_ns: 300,
            events: vec![
                ev(1_000_000 + 4_000, TraceKind::Deliver, 1, 2, 64),
                ev(1_000_000 + 5_000, TraceKind::Send, 1, 1, 64),
            ],
            lost: 2,
        };
        let m = merge(&[n0, n1]);
        assert_eq!(m.cross_chains.len(), 2);
        let c0 = &m.cross_chains[0]; // 0 → 1: sent 1_000, delivered 4_000
        assert_eq!((c0.src_node, c0.dst_node), (0, 1));
        assert_eq!(c0.latency_ns, 3_000);
        assert_eq!(c0.error_ns, 300, "sum of the two dispersions");
        let c1 = &m.cross_chains[1]; // 1 → 0: sent 5_000, delivered 9_000
        assert_eq!((c1.src_node, c1.dst_node), (1, 0));
        assert_eq!(c1.latency_ns, 4_000);
        assert_eq!(m.cross_latency.max_ns, 4_000);
        assert_eq!(m.cross_latency_p99_ns(), Some(4_000));
        assert_eq!(m.max_error_ns, 300);
        assert_eq!(m.unmatched_sends, 0);
        // The per-node accounting survived the merge.
        assert_eq!(m.timeline.total_events, 4);
        assert_eq!(m.timeline.lost, 2);
        assert_eq!(m.timeline.endpoints[&(0, 1)].sends, 1);
        assert_eq!(m.timeline.endpoints[&(1, 2)].delivers, 1);
        // And the rebase really happened: node 1's endpoint stamps sit on
        // the reference clock now.
        assert_eq!(m.timeline.endpoints[&(1, 2)].first_ns, 4_000);
    }

    #[test]
    fn unmatched_sends_are_counted_not_mispaired() {
        let n0 = NodeInput {
            node: 0,
            offset_ns: 0,
            dispersion_ns: 10,
            events: vec![
                ev(100, TraceKind::Send, 0, 1, 64),
                ev(200, TraceKind::Send, 0, 1, 64),
            ],
            lost: 0,
        };
        let n1 = NodeInput {
            node: 1,
            offset_ns: 0,
            dispersion_ns: 20,
            events: vec![ev(350, TraceKind::Deliver, 1, 2, 64)],
            lost: 0,
        };
        let m = merge(&[n0, n1]);
        // FIFO: the deliver pairs with the OLDEST send; the second stays
        // pending (lost in flight, or delivered past the window).
        assert_eq!(m.cross_chains.len(), 1);
        assert_eq!(m.cross_chains[0].latency_ns, 250);
        assert_eq!(m.cross_chains[0].error_ns, 30);
        assert_eq!(m.unmatched_sends, 1);
    }

    #[test]
    fn clock_error_larger_than_latency_clamps_to_zero() {
        // The offset estimate is wrong by more than the true latency:
        // the rebased deliver lands "before" the send. The chain must
        // clamp (not wrap) and the error bar tells the reader why.
        let n0 = NodeInput {
            node: 0,
            offset_ns: 0,
            dispersion_ns: 0,
            events: vec![ev(10_000, TraceKind::Send, 0, 1, 64)],
            lost: 0,
        };
        let n1 = NodeInput {
            node: 1,
            offset_ns: -5_000, // overestimates node 1's clock by > latency
            dispersion_ns: 6_000,
            events: vec![ev(14_000, TraceKind::Deliver, 1, 2, 64)],
            lost: 0,
        };
        let m = merge(&[n0, n1]);
        assert_eq!(m.cross_chains.len(), 1);
        assert_eq!(m.cross_chains[0].latency_ns, 0, "clamped, not wrapped");
        assert_eq!(m.max_error_ns, 6_000, "the bar admits the estimate");
    }

    #[test]
    fn same_node_delivers_do_not_become_cross_chains() {
        // Purely local traffic (loopback bypass): sends and delivers on
        // one node. The per-node builder chains them; the cross-node
        // reconstruction must stay empty.
        let n0 = NodeInput {
            node: 0,
            offset_ns: 0,
            dispersion_ns: 0,
            events: vec![
                ev(100, TraceKind::Send, 0, 1, 64),
                ev(150, TraceKind::Deliver, 0, 2, 64),
            ],
            lost: 0,
        };
        let m = merge(&[n0]);
        assert!(m.cross_chains.is_empty());
        assert_eq!(m.cross_latency.count, 0);
        assert_eq!(m.timeline.chain_latency.count, 1, "local chain kept");
        assert_eq!(m.unmatched_sends, 0, "the consumed send is not pending");
    }

    #[test]
    fn json_roundtrip_preserves_events() {
        let (mut w, mut r) = crate::trace::trace_ring(16);
        w.record(ev(5, TraceKind::Send, 3, 1, 64));
        w.record(ev(9, TraceKind::Retransmit, 3, u16::MAX, 4));
        w.record(ev(12, TraceKind::Deliver, 3, 2, 64));
        let dump = r.dump_json();
        let back = events_from_json(&dump).expect("well-formed dump");
        assert_eq!(
            back,
            vec![
                ev(5, TraceKind::Send, 3, 1, 64),
                ev(9, TraceKind::Retransmit, 3, u16::MAX, 4),
                ev(12, TraceKind::Deliver, 3, 2, 64),
            ]
        );
        // Malformed dumps refuse loudly instead of dropping events.
        let truncated = crate::json::Value::Array(vec![crate::json::Value::object([(
            "t_ns",
            crate::json::Value::from(1u64),
        )])]);
        assert!(events_from_json(&truncated).is_none());
        assert!(events_from_json(&crate::json::Value::Null).is_none());
    }

    #[test]
    fn merged_json_carries_offsets_and_error_bounds() {
        let m = merge(&[
            NodeInput {
                node: 0,
                offset_ns: 0,
                dispersion_ns: 0,
                events: vec![ev(1_000, TraceKind::Send, 0, 1, 64)],
                lost: 0,
            },
            NodeInput {
                node: 1,
                offset_ns: -42,
                dispersion_ns: 7,
                events: vec![ev(2_042, TraceKind::Deliver, 1, 2, 64)],
                lost: 0,
            },
        ]);
        let json = m.to_json().render();
        assert!(json.contains("\"offset_ns\":-42"), "{json}");
        assert!(json.contains("\"dispersion_ns\":7"), "{json}");
        assert!(json.contains("\"cross_chains\":1"), "{json}");
        assert!(json.contains("\"cross_latency_p99_ns\":1000"), "{json}");
        assert!(json.contains("\"max_error_ns\":7"), "{json}");
    }
}
