//! A small dependency-free JSON value: enough to write and read the
//! machine-readable artifacts this repo produces (`BENCH.json`, trace
//! dumps) in an offline build environment with no serde.
//!
//! Numbers are kept as `f64` (integers round-trip exactly up to 2⁵³ —
//! far beyond any counter or nanosecond value a report holds). Object
//! keys keep insertion order so emitted reports diff cleanly.

use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Num(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Num(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<'a>(pairs: impl IntoIterator<Item = (&'a str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number behind this value, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string behind this value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements behind this value, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Serializes with two-space indentation (for committed artifacts,
    /// which should diff line-by-line).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        use std::fmt::Write as _;
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                    items[i].write(out, ind);
                });
            }
            Value::Object(pairs) => {
                write_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    v.write(out, ind);
                });
            }
        }
    }

    /// Parses a JSON document (the subset this crate emits: no `\uXXXX`
    /// surrogate pairs beyond the BMP, no exotic number forms beyond what
    /// Rust's `f64` parser accepts).
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

/// A parse failure: byte offset plus a short description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &'static str) -> ParseError {
        ParseError { at: self.pos, what }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Value::Num).map_err(|_| ParseError {
            at: start,
            what: "invalid number",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::object([
            ("schema", Value::from(1u64)),
            ("name", Value::from("one_way_latency")),
            ("ok", Value::Bool(true)),
            ("none", Value::Null),
            (
                "vals",
                Value::Array(vec![Value::from(1.5), Value::from(2u64)]),
            ),
        ]);
        for text in [v.render(), v.render_pretty()] {
            assert_eq!(Value::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn integers_roundtrip_exactly() {
        let v = Value::from(1_234_567_890_123u64);
        let text = v.render();
        assert_eq!(text, "1234567890123");
        assert_eq!(
            Value::parse(&text).unwrap().as_f64(),
            Some(1_234_567_890_123.0)
        );
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Value::from("a\"b\\c\nd\te\u{1}");
        let text = v.render();
        assert_eq!(Value::parse(&text).unwrap(), v);
        assert_eq!(
            Value::parse("\"\\u0041\\u00e9\"").unwrap().as_str(),
            Some("Aé")
        );
    }

    #[test]
    fn accessors_navigate_reports() {
        let text = r#"{"metrics":[{"name":"rtt","value":10.5}],"rev":"abc"}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.get("rev").and_then(Value::as_str), Some("abc"));
        let m = &v.get("metrics").and_then(Value::as_array).unwrap()[0];
        assert_eq!(m.get("value").and_then(Value::as_f64), Some(10.5));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "nul", "1 2", "{]"] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_passes_through() {
        let v = Value::from("naïve — ✓");
        assert_eq!(Value::parse(&v.render()).unwrap(), v);
    }
}
