//! Workload-level telemetry snapshots.
//!
//! The transport layer reports datagrams, retransmits, and epochs; a
//! *workload* (pub-sub broadcast, replicated log, tiered delivery — see
//! `flipc-workloads`) reports application-meaningful counters: messages
//! published and delivered, app-level retries, replayed log entries,
//! invariant violations. [`WorkloadSnapshot`] is the loads-only carrier
//! for those numbers, produced by a workload harness per node and
//! consumed by [`crate::expo::expose_workload`] and `flipc-top`.
//!
//! The snapshot is plain data on purpose: workloads record into their own
//! local counters on the hot path and materialize a snapshot only when an
//! observer asks, mirroring the engine's snapshot discipline.

use flipc_core::hist::HistogramSnapshot;

use crate::json::Value;

/// Per-traffic-class latency for one workload on one node.
#[derive(Clone, Debug)]
pub struct WorkloadClass {
    /// Stable class label (`"high"`, `"bulk"`, `"topic3"`, …).
    pub class: String,
    /// Send→deliver latency distribution, in the workload's own time
    /// unit (nanoseconds for wall-clock harnesses, manual-clock ticks —
    /// nominal nanoseconds — for deterministic ones).
    pub latency: HistogramSnapshot,
}

/// One workload's counters on one node at a moment in time.
#[derive(Clone, Debug)]
pub struct WorkloadSnapshot {
    /// Stable workload name (`"broadcast"`, `"log"`, `"tiers"`).
    pub workload: String,
    /// Node the counters belong to.
    pub node: u16,
    /// Messages the application asked the workload to send.
    pub published: u64,
    /// Messages handed to the application in order.
    pub delivered: u64,
    /// Messages knowingly shed (at-most-once backpressure, expired
    /// deadlines).
    pub dropped: u64,
    /// App-level retransmissions (reliable modes only).
    pub retried: u64,
    /// Log entries re-delivered through a replay-from-offset fetch.
    pub replayed: u64,
    /// App-level acknowledgements received.
    pub acked: u64,
    /// Invariant breaches observed so far (must stay zero).
    pub invariant_violations: u64,
    /// Messages accepted but not yet deliverable (reorder buffers,
    /// un-acked outboxes, undrained queues).
    pub backlog: u64,
    /// Per-class latency distributions.
    pub classes: Vec<WorkloadClass>,
}

impl WorkloadSnapshot {
    /// An all-zero snapshot for `workload` on `node`.
    pub fn new(workload: &str, node: u16) -> WorkloadSnapshot {
        WorkloadSnapshot {
            workload: workload.to_string(),
            node,
            published: 0,
            delivered: 0,
            dropped: 0,
            retried: 0,
            replayed: 0,
            acked: 0,
            invariant_violations: 0,
            backlog: 0,
            classes: Vec::new(),
        }
    }

    /// The snapshot as a JSON object (for `flipc-top --json` documents).
    pub fn to_json(&self) -> Value {
        let classes: Vec<Value> = self
            .classes
            .iter()
            .map(|c| {
                Value::object([
                    ("class", Value::from(c.class.as_str())),
                    ("count", Value::from(c.latency.count())),
                    (
                        "p50",
                        c.latency
                            .quantile(0.50)
                            .map(Value::from)
                            .unwrap_or(Value::Null),
                    ),
                    (
                        "p99",
                        c.latency
                            .quantile(0.99)
                            .map(Value::from)
                            .unwrap_or(Value::Null),
                    ),
                ])
            })
            .collect();
        Value::object([
            ("workload", Value::from(self.workload.as_str())),
            ("node", Value::from(u64::from(self.node))),
            ("published", Value::from(self.published)),
            ("delivered", Value::from(self.delivered)),
            ("dropped", Value::from(self.dropped)),
            ("retried", Value::from(self.retried)),
            ("replayed", Value::from(self.replayed)),
            ("acked", Value::from(self.acked)),
            (
                "invariant_violations",
                Value::from(self.invariant_violations),
            ),
            ("backlog", Value::from(self.backlog)),
            ("classes", Value::Array(classes)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let mut s = WorkloadSnapshot::new("broadcast", 3);
        s.published = 10;
        s.delivered = 9;
        s.classes.push(WorkloadClass {
            class: "topic0".to_string(),
            latency: HistogramSnapshot::empty(65),
        });
        let v = s.to_json();
        assert_eq!(v.get("workload").and_then(Value::as_str), Some("broadcast"));
        assert_eq!(v.get("published").and_then(Value::as_f64), Some(10.0));
        assert!(v.get("classes").is_some());
    }
}
