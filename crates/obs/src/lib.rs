//! FLIPC observability: always-on, wait-free telemetry.
//!
//! FLIPC's argument is quantitative (sub-20µs medium-message latency, a
//! ~6 ns/byte copy slope), so the reproduction carries instrumentation
//! that can stay enabled on the engine's hot path:
//!
//! * [`telemetry`] — engine-owned log₂ histograms
//!   ([`flipc_core::hist`]) of send→deliver latency per endpoint and of
//!   per-iteration work counts, sampled through the same loads-only
//!   snapshot surface as [`flipc_core::inspect`];
//! * [`trace`] — a wait-free SPSC trace ring recording engine events
//!   (send, deliver, drop, retransmit, wakeup) with a drain API and
//!   text/JSON dumps;
//! * [`json`] — a small dependency-free JSON value used by the trace
//!   dumps and the `bench-report` perf reports (the build environment is
//!   offline, so no serde).
//!
//! On top of the recorders sits the analysis/presentation layer — the
//! consumers, which run strictly off the hot path:
//!
//! * [`timeline`] — reconstructs per-endpoint event timelines
//!   (send→deliver chains, inter-event gap statistics, lost-event
//!   accounting) from drained [`trace`] events;
//! * [`stall`] — detects engine-loop stalls (trace gaps above a
//!   threshold) and attributes each one by correlating against the
//!   iteration-work histogram and transport retransmit activity;
//! * [`merge`] — rebases several nodes' trace timelines onto one
//!   reference clock using the transport's per-peer offset estimates and
//!   reconstructs cross-node send→deliver chains with
//!   dispersion-derived error bars;
//! * [`expo`] — dependency-free Prometheus-style text exposition of
//!   telemetry and transport snapshots, servable one-shot or from a tiny
//!   blocking TCP listener, plus a [`expo::ClusterScraper`] that polls
//!   many nodes' expositions into one `node`-labelled page;
//! * [`workload`] — application-level counters (published / delivered /
//!   retried / replayed, per-class latency) reported by the
//!   `flipc-workloads` harnesses and rendered by [`expo`] and
//!   `flipc-top`.
//!
//! Everything here obeys the engine's controller discipline: recording is
//! loads and stores only, single writer per location, never blocking —
//! telemetry must not perturb the latency it measures.

pub mod expo;
pub mod json;
pub mod merge;
pub mod stall;
pub mod telemetry;
pub mod timeline;
pub mod trace;
pub mod workload;

pub use expo::{
    expose_engine, expose_trace_lost, expose_transport, expose_workload, merge_pages, sample_value,
    ClusterScraper, ExpoServer, Exposition, NodeScrape,
};
pub use merge::{events_from_json, merge, CrossChain, MergedTimeline, NodeInput};
pub use stall::{rank_nodes, NodeStallRank, StallCause, StallConfig, StallMonitor, StallReport};
pub use telemetry::{EngineTelemetry, EngineTelemetrySnapshot};
pub use timeline::{EndpointTimeline, GapStats, Timeline, TimelineBuilder};
pub use trace::{trace_ring, TraceEvent, TraceKind, TraceReader, TraceWriter};
pub use workload::{WorkloadClass, WorkloadSnapshot};

use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds since the process-wide telemetry epoch (first call).
///
/// Monotonic within a process, so differences of two stamps are real
/// durations; stamps from *different* processes are not directly
/// comparable, which is why the engine only computes send→deliver
/// latency for frames whose stamp it set itself (node-local and loopback
/// traffic). Cross-process comparison goes through [`merge`], which
/// rebases each node's stamps by the transport's measured clock offset.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
