//! Per-endpoint event timelines reconstructed from drained trace events.
//!
//! The trace ring ([`crate::trace`]) records *what the engine did*; this
//! module turns a drained batch of [`TraceEvent`]s into *what each endpoint
//! experienced*: per-endpoint event counts and byte totals, inter-event gap
//! statistics (the raw material of stall detection), send→deliver chains
//! with their latency distribution, and honest lost-event accounting.
//!
//! Everything here is pure data and arithmetic over already-drained events
//! — no atomics, no clocks — so the reconstruction is exactly as testable
//! as a sort. The live consumers ([`crate::stall`], the `flipc-top`
//! inspector) feed a [`TimelineBuilder`] incrementally; batch analysis uses
//! [`Timeline::from_events`].
//!
//! Grouping invariant (property-tested in `tests/timeline_props.rs`): the
//! per-endpoint view depends only on each endpoint's own subsequence, so
//! any interleaving of per-endpoint streams that preserves per-endpoint
//! order reconstructs identical endpoint timelines.

use std::collections::BTreeMap;

use crate::json::Value;
use crate::trace::{TraceEvent, TraceKind};

/// Running statistics over a stream of durations (nanoseconds).
///
/// Tracks count, min, max, and sum — enough for mean and for stall
/// thresholds — in O(1) space, so a timeline can absorb unbounded event
/// streams. Merging two `GapStats` of disjoint sample sets equals the
/// stats of the union (property-tested).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GapStats {
    /// Number of samples observed.
    pub count: u64,
    /// Smallest sample (ns); 0 when empty.
    pub min_ns: u64,
    /// Largest sample (ns); 0 when empty.
    pub max_ns: u64,
    /// Sum of all samples (saturating, ns).
    pub sum_ns: u64,
}

impl GapStats {
    /// Folds one sample in.
    pub fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Folds another statistic in (union of the two sample sets).
    pub fn merge(&mut self, other: &GapStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Mean sample, `None` when empty.
    pub fn mean_ns(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum_ns as f64 / self.count as f64)
        }
    }

    /// JSON object form (`{"count":..,"min_ns":..,"max_ns":..,"mean_ns":..}`).
    pub fn to_json(&self) -> Value {
        Value::object([
            ("count", Value::from(self.count)),
            ("min_ns", Value::from(self.min_ns)),
            ("max_ns", Value::from(self.max_ns)),
            ("mean_ns", Value::from(self.mean_ns().unwrap_or(0.0))),
        ])
    }
}

/// What one endpoint experienced over the reconstructed window.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EndpointTimeline {
    /// Stamp of the endpoint's first event in the window.
    pub first_ns: u64,
    /// Stamp of the endpoint's last event in the window.
    pub last_ns: u64,
    /// `Send` events (this endpoint was the source).
    pub sends: u64,
    /// `Deliver` events (this endpoint was the destination).
    pub delivers: u64,
    /// `Drop` events (arrivals discarded for want of a buffer).
    pub drops: u64,
    /// `Wakeup` events (blocked receivers woken).
    pub wakeups: u64,
    /// `Misaddressed` arrivals aimed at this endpoint index.
    pub misaddressed: u64,
    /// Payload bytes moved by this endpoint's sends + delivers.
    pub bytes: u64,
    /// Gaps between the endpoint's consecutive events.
    pub gaps: GapStats,
}

impl EndpointTimeline {
    /// Events of every kind this endpoint saw.
    pub fn events(&self) -> u64 {
        self.sends + self.delivers + self.drops + self.wakeups + self.misaddressed
    }

    /// Event rate over the endpoint's active span, `None` when the span is
    /// empty (fewer than two events).
    pub fn events_per_sec(&self) -> Option<f64> {
        let span = self.last_ns.saturating_sub(self.first_ns);
        if span == 0 {
            return None;
        }
        Some(self.events() as f64 * 1e9 / span as f64)
    }

    fn absorb(&mut self, ev: &TraceEvent) {
        if self.events() == 0 {
            self.first_ns = ev.t_ns;
        } else {
            self.gaps.record(ev.t_ns.saturating_sub(self.last_ns));
        }
        self.last_ns = self.last_ns.max(ev.t_ns);
        match ev.kind {
            TraceKind::Send => {
                self.sends += 1;
                self.bytes += u64::from(ev.arg);
            }
            TraceKind::Deliver => {
                self.delivers += 1;
                self.bytes += u64::from(ev.arg);
            }
            TraceKind::Drop => self.drops += 1,
            TraceKind::Wakeup => self.wakeups += 1,
            TraceKind::Misaddressed => self.misaddressed += 1,
            TraceKind::Retransmit => {}
        }
    }
}

/// Key of one endpoint's timeline: (node, endpoint index).
pub type EndpointKey = (u16, u16);

/// Incremental timeline reconstruction over drained trace batches.
///
/// The builder is the analysis half of the trace ring's consumer side:
/// feed it every drained batch (and every harvested lost count) and read
/// the [`Timeline`] whenever a rendering is wanted. Ingestion is O(batch)
/// and the retained state is O(endpoints), so a long-lived consumer never
/// grows with traffic.
#[derive(Debug, Default)]
pub struct TimelineBuilder {
    endpoints: BTreeMap<EndpointKey, EndpointTimeline>,
    node_gaps: BTreeMap<u16, GapStats>,
    node_last_ns: BTreeMap<u16, u64>,
    retransmit_bursts: u64,
    retransmit_frames: u64,
    /// Pending sends per node, for send→deliver chain pairing.
    chain_pending: BTreeMap<u16, Vec<u64>>,
    chain_latency: GapStats,
    total_events: u64,
    lost: u64,
}

impl TimelineBuilder {
    /// An empty builder.
    pub fn new() -> TimelineBuilder {
        TimelineBuilder::default()
    }

    /// Ingests one drained batch (events must be in ring order, which the
    /// SPSC ring guarantees per drain).
    pub fn ingest(&mut self, events: &[TraceEvent]) {
        for ev in events {
            self.total_events += 1;
            // Node-scope inter-event gap: the raw signal the stall detector
            // thresholds. Every event participates, endpoint-scoped or not.
            if let Some(&last) = self.node_last_ns.get(&ev.node) {
                self.node_gaps
                    .entry(ev.node)
                    .or_default()
                    .record(ev.t_ns.saturating_sub(last));
            }
            self.node_last_ns.insert(ev.node, ev.t_ns);

            if ev.kind == TraceKind::Retransmit {
                // Node-scope, not endpoint-scope: one event per go-back-N
                // burst, arg = frames re-sent.
                self.retransmit_bursts += 1;
                self.retransmit_frames += u64::from(ev.arg);
                continue;
            }
            self.endpoints
                .entry((ev.node, ev.endpoint))
                .or_default()
                .absorb(ev);

            // Send→deliver chains: the trace carries no message id, but the
            // engine's per-path FIFO ordering means the k-th deliver on a
            // node pairs with the k-th unmatched send observed on that same
            // trace (exact for the loopback bypass, which delivers within
            // the same engine's trace; cross-node sends simply never match
            // and age out on the next batch boundary).
            match ev.kind {
                TraceKind::Send => {
                    self.chain_pending.entry(ev.node).or_default().push(ev.t_ns);
                }
                TraceKind::Deliver => {
                    if let Some(pending) = self.chain_pending.get_mut(&ev.node) {
                        if !pending.is_empty() {
                            let sent = pending.remove(0);
                            self.chain_latency.record(ev.t_ns.saturating_sub(sent));
                        }
                    }
                }
                _ => {}
            }
        }
        // Sends with no matching deliver in this batch were cross-node (or
        // dropped remotely): forget them rather than mispairing them with
        // next batch's local traffic.
        for pending in self.chain_pending.values_mut() {
            pending.clear();
        }
    }

    /// Accounts events the ring shed ([`crate::trace::TraceReader::lost`]).
    pub fn note_lost(&mut self, lost: u64) {
        self.lost = self.lost.saturating_add(lost);
    }

    /// The reconstruction so far.
    pub fn timeline(&self) -> Timeline {
        Timeline {
            endpoints: self.endpoints.clone(),
            node_gaps: self.node_gaps.clone(),
            chain_latency: self.chain_latency,
            retransmit_bursts: self.retransmit_bursts,
            retransmit_frames: self.retransmit_frames,
            total_events: self.total_events,
            lost: self.lost,
        }
    }
}

/// A reconstructed view of everything the trace recorded.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Timeline {
    /// Per-endpoint reconstructions, keyed by (node, endpoint index).
    pub endpoints: BTreeMap<EndpointKey, EndpointTimeline>,
    /// Node-scope inter-event gap statistics (all kinds interleaved).
    pub node_gaps: BTreeMap<u16, GapStats>,
    /// Send→deliver chain latency over locally delivered messages.
    pub chain_latency: GapStats,
    /// Go-back-N retransmit rounds observed.
    pub retransmit_bursts: u64,
    /// Frames re-sent across those rounds.
    pub retransmit_frames: u64,
    /// Events ingested (all kinds, endpoint-scoped or not).
    pub total_events: u64,
    /// Events the ring shed before they could be drained. The timeline is
    /// lossy-but-honest: `total_events + lost` equals the number of events
    /// the engine tried to record.
    pub lost: u64,
}

impl Timeline {
    /// Reconstructs from one batch (convenience over [`TimelineBuilder`]).
    pub fn from_events(events: &[TraceEvent]) -> Timeline {
        let mut b = TimelineBuilder::new();
        b.ingest(events);
        b.timeline()
    }

    /// Sum of events accounted to endpoint timelines plus node-scope
    /// retransmit events — always equal to `total_events` (conservation,
    /// property-tested).
    pub fn accounted_events(&self) -> u64 {
        self.endpoints
            .values()
            .map(EndpointTimeline::events)
            .sum::<u64>()
            + self.retransmit_bursts
    }

    /// A one-screen human rendering: one row per endpoint plus the chain
    /// latency and loss footers.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>4} {:>4} {:>8} {:>8} {:>6} {:>7} {:>10} {:>12} {:>12}",
            "node",
            "ep",
            "sends",
            "delivers",
            "drops",
            "wakeups",
            "bytes",
            "gap_mean_ns",
            "gap_max_ns"
        );
        for ((node, ep), t) in &self.endpoints {
            let _ = writeln!(
                out,
                "{:>4} {:>4} {:>8} {:>8} {:>6} {:>7} {:>10} {:>12.0} {:>12}",
                node,
                ep,
                t.sends,
                t.delivers,
                t.drops,
                t.wakeups,
                t.bytes,
                t.gaps.mean_ns().unwrap_or(0.0),
                t.gaps.max_ns,
            );
        }
        if self.chain_latency.count > 0 {
            let _ = writeln!(
                out,
                "send→deliver chains {}: mean {:.0} ns, max {} ns",
                self.chain_latency.count,
                self.chain_latency.mean_ns().unwrap_or(0.0),
                self.chain_latency.max_ns,
            );
        }
        if self.retransmit_bursts > 0 {
            let _ = writeln!(
                out,
                "retransmit rounds {} ({} frames)",
                self.retransmit_bursts, self.retransmit_frames
            );
        }
        let _ = writeln!(
            out,
            "events {} (+{} lost to ring overflow)",
            self.total_events, self.lost
        );
        out
    }

    /// JSON form used by `flipc-top --once --json`.
    pub fn to_json(&self) -> Value {
        Value::object([
            (
                "endpoints",
                Value::Array(
                    self.endpoints
                        .iter()
                        .map(|((node, ep), t)| {
                            Value::object([
                                ("node", Value::from(u64::from(*node))),
                                ("endpoint", Value::from(u64::from(*ep))),
                                ("first_ns", Value::from(t.first_ns)),
                                ("last_ns", Value::from(t.last_ns)),
                                ("sends", Value::from(t.sends)),
                                ("delivers", Value::from(t.delivers)),
                                ("drops", Value::from(t.drops)),
                                ("wakeups", Value::from(t.wakeups)),
                                ("misaddressed", Value::from(t.misaddressed)),
                                ("bytes", Value::from(t.bytes)),
                                (
                                    "events_per_sec",
                                    Value::from(t.events_per_sec().unwrap_or(0.0)),
                                ),
                                ("gaps", t.gaps.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("chain_latency", self.chain_latency.to_json()),
            ("retransmit_bursts", Value::from(self.retransmit_bursts)),
            ("retransmit_frames", Value::from(self.retransmit_frames)),
            ("total_events", Value::from(self.total_events)),
            ("lost", Value::from(self.lost)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, kind: TraceKind, node: u16, endpoint: u16, arg: u32) -> TraceEvent {
        TraceEvent {
            t_ns,
            kind,
            node,
            endpoint,
            arg,
        }
    }

    #[test]
    fn gap_stats_track_min_max_mean() {
        let mut g = GapStats::default();
        assert_eq!(g.mean_ns(), None);
        for ns in [10, 30, 20] {
            g.record(ns);
        }
        assert_eq!(g.count, 3);
        assert_eq!(g.min_ns, 10);
        assert_eq!(g.max_ns, 30);
        assert_eq!(g.mean_ns(), Some(20.0));
        let mut other = GapStats::default();
        other.record(5);
        g.merge(&other);
        assert_eq!(g.min_ns, 5);
        assert_eq!(g.count, 4);
    }

    #[test]
    fn endpoints_are_reconstructed_independently() {
        let t = Timeline::from_events(&[
            ev(100, TraceKind::Send, 0, 1, 56),
            ev(150, TraceKind::Deliver, 0, 2, 56),
            ev(300, TraceKind::Send, 0, 1, 56),
            ev(320, TraceKind::Drop, 0, 2, 56),
            ev(400, TraceKind::Wakeup, 0, 2, 1),
        ]);
        let tx = &t.endpoints[&(0, 1)];
        assert_eq!(tx.sends, 2);
        assert_eq!(tx.bytes, 112);
        assert_eq!(tx.gaps.count, 1);
        assert_eq!(tx.gaps.max_ns, 200);
        let rx = &t.endpoints[&(0, 2)];
        assert_eq!((rx.delivers, rx.drops, rx.wakeups), (1, 1, 1));
        assert_eq!(rx.first_ns, 150);
        assert_eq!(rx.last_ns, 400);
        assert_eq!(t.accounted_events(), t.total_events);
    }

    #[test]
    fn chains_pair_sends_with_local_delivers_in_order() {
        let t = Timeline::from_events(&[
            ev(100, TraceKind::Send, 0, 1, 56),
            ev(110, TraceKind::Send, 0, 1, 56),
            ev(175, TraceKind::Deliver, 0, 2, 56),
            ev(205, TraceKind::Deliver, 0, 2, 56),
        ]);
        assert_eq!(t.chain_latency.count, 2);
        assert_eq!(t.chain_latency.min_ns, 75);
        assert_eq!(t.chain_latency.max_ns, 95);
    }

    #[test]
    fn cross_node_sends_do_not_pollute_chains_across_batches() {
        let mut b = TimelineBuilder::new();
        // Batch 1: a send whose deliver happens on another node (never in
        // this trace).
        b.ingest(&[ev(100, TraceKind::Send, 0, 1, 56)]);
        // Batch 2: purely local round much later — must not pair with the
        // stale send.
        b.ingest(&[
            ev(9_000, TraceKind::Send, 0, 1, 56),
            ev(9_050, TraceKind::Deliver, 0, 2, 56),
        ]);
        let t = b.timeline();
        assert_eq!(t.chain_latency.count, 1);
        assert_eq!(t.chain_latency.max_ns, 50);
    }

    #[test]
    fn retransmits_and_losses_are_node_scope_accounting() {
        let mut b = TimelineBuilder::new();
        b.ingest(&[
            ev(10, TraceKind::Send, 0, 1, 56),
            ev(20, TraceKind::Retransmit, 0, u16::MAX, 3),
        ]);
        b.note_lost(7);
        let t = b.timeline();
        assert_eq!(t.retransmit_bursts, 1);
        assert_eq!(t.retransmit_frames, 3);
        assert_eq!(t.lost, 7);
        assert_eq!(t.total_events, 2);
        assert_eq!(t.accounted_events(), 2);
        assert!(!t.endpoints.contains_key(&(0, u16::MAX)));
        let text = t.render();
        assert!(text.contains("retransmit rounds 1"), "{text}");
        assert!(text.contains("+7 lost"), "{text}");
    }

    #[test]
    fn json_rendering_carries_every_endpoint() {
        let t = Timeline::from_events(&[
            ev(100, TraceKind::Send, 0, 1, 56),
            ev(200, TraceKind::Deliver, 1, 4, 56),
        ]);
        let json = t.to_json().render();
        assert!(json.contains("\"endpoint\":1"), "{json}");
        assert!(json.contains("\"endpoint\":4"), "{json}");
        assert!(json.contains("\"total_events\":2"), "{json}");
    }
}
