//! Engine-owned telemetry histograms.
//!
//! One [`EngineTelemetry`] block per engine holds the always-on
//! distributions the paper's evaluation reports: send→deliver latency per
//! receive endpoint (nanoseconds) and the per-iteration work count of the
//! engine loop (messages moved per pass — the engine's occupancy signal).
//! The engine is the **single recorder** of every histogram here; any
//! thread may take loads-only snapshots through the same inspect-style
//! surface as [`flipc_core::inspect`], and the application role harvests
//! with the two-location reset that never loses an in-flight sample.
//!
//! Under the `ownership-checks` feature the block registers every shared
//! word (recorder side Engine-owned, harvest side App-owned) with the
//! single-writer checker, and unregisters on drop.

use std::sync::Arc;

use flipc_core::hist::{Histogram, HistogramSnapshot};

/// Index of the iteration-work histogram inside the block.
const ITER_WORK: usize = 0;

/// The telemetry block for one engine: iteration-work histogram plus one
/// send→deliver latency histogram per endpoint slot the engine serves.
///
/// The histograms live behind an `Arc` so their addresses are stable for
/// the ownership-checker registration and so observers can hold the block
/// after the engine thread ends.
#[derive(Debug)]
pub struct EngineTelemetry {
    /// `[0]` = iteration work; `[1 + e]` = deliver latency of endpoint `e`.
    hists: Box<[Histogram]>,
}

impl EngineTelemetry {
    /// A telemetry block covering `endpoints` endpoint slots.
    pub fn new(endpoints: usize) -> Arc<EngineTelemetry> {
        let hists: Box<[Histogram]> = (0..endpoints + 1).map(|_| Histogram::new()).collect();
        let t = Arc::new(EngineTelemetry { hists });
        #[cfg(feature = "ownership-checks")]
        {
            t.hists[ITER_WORK].register_ownership("telemetry.iteration_work");
            for (e, h) in t.hists[1..].iter().enumerate() {
                h.register_ownership(&format!("telemetry.deliver_latency[{e}]"));
            }
        }
        t
    }

    /// Endpoint slots this block covers.
    pub fn endpoints(&self) -> usize {
        self.hists.len() - 1
    }

    /// Records the number of messages moved by one engine-loop pass.
    /// Engine-side only (single recorder).
    pub fn record_iteration_work(&self, moved: u64) {
        self.hists[ITER_WORK].recorder().record(moved);
    }

    /// Records one send→deliver latency sample (nanoseconds) for the
    /// endpoint the message was delivered to. Engine-side only (single
    /// recorder). Out-of-range endpoints are ignored — telemetry must
    /// never turn a misaddressed message into a panic.
    pub fn record_deliver_latency(&self, endpoint: usize, ns: u64) {
        if let Some(h) = self.hists.get(1 + endpoint) {
            h.recorder().record(ns);
        }
    }

    /// A loads-only snapshot (non-destructive, any thread).
    pub fn snapshot(&self) -> EngineTelemetrySnapshot {
        EngineTelemetrySnapshot {
            iteration_work: self.hists[ITER_WORK].snapshot(),
            deliver_latency: self.hists[1..].iter().map(Histogram::snapshot).collect(),
        }
    }

    /// Snapshots and resets every histogram (application role: writes the
    /// harvest shadows; samples recorded concurrently surface in the next
    /// harvest).
    pub fn harvest(&self) -> EngineTelemetrySnapshot {
        EngineTelemetrySnapshot {
            iteration_work: self.hists[ITER_WORK].reader().harvest(),
            deliver_latency: self.hists[1..]
                .iter()
                .map(|h| h.reader().harvest())
                .collect(),
        }
    }
}

#[cfg(feature = "ownership-checks")]
impl Drop for EngineTelemetry {
    fn drop(&mut self) {
        for h in &self.hists {
            h.unregister_ownership();
        }
    }
}

/// Point-in-time state of an engine's telemetry block, in the same spirit
/// as [`flipc_core::inspect::CommBufferSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineTelemetrySnapshot {
    /// Messages moved per engine-loop pass.
    pub iteration_work: HistogramSnapshot,
    /// Send→deliver latency (ns) per endpoint slot.
    pub deliver_latency: Vec<HistogramSnapshot>,
}

impl EngineTelemetrySnapshot {
    /// All endpoint latency histograms merged into one distribution.
    pub fn total_deliver_latency(&self) -> HistogramSnapshot {
        let mut total = HistogramSnapshot::empty(
            self.deliver_latency
                .first()
                .map_or(flipc_core::hist::BUCKETS, |s| s.buckets.len()),
        );
        for s in &self.deliver_latency {
            total.merge(s);
        }
        total
    }

    /// A compact human-readable report: loop-occupancy summary plus one
    /// line per endpoint that delivered anything.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let iw = &self.iteration_work;
        let _ = writeln!(
            out,
            "engine iterations {} (mean work {:.2}, p99 {:.0})",
            iw.count(),
            iw.mean().unwrap_or(0.0),
            iw.quantile(0.99).unwrap_or(0.0),
        );
        for (e, s) in self.deliver_latency.iter().enumerate() {
            if s.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "ep{e:<3} delivered {}: latency p50 {:.0} ns, p99 {:.0} ns",
                s.count(),
                s.quantile(0.5).unwrap_or(0.0),
                s.quantile(0.99).unwrap_or(0.0),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_route_to_the_right_histograms() {
        let t = EngineTelemetry::new(4);
        assert_eq!(t.endpoints(), 4);
        t.record_iteration_work(3);
        t.record_deliver_latency(2, 1500);
        t.record_deliver_latency(2, 1600);
        t.record_deliver_latency(9999, 1); // out of range: ignored
        let s = t.snapshot();
        assert_eq!(s.iteration_work.count(), 1);
        assert_eq!(s.deliver_latency[2].count(), 2);
        assert_eq!(s.deliver_latency[0].count(), 0);
        assert_eq!(s.total_deliver_latency().count(), 2);
        let text = s.render();
        assert!(text.contains("ep2"), "{text}");
        assert!(
            !text.contains("ep0 "),
            "quiet endpoints stay unlisted: {text}"
        );
    }

    #[test]
    fn harvest_resets_without_losing_samples() {
        let t = EngineTelemetry::new(2);
        t.record_deliver_latency(0, 100);
        let first = t.harvest();
        assert_eq!(first.deliver_latency[0].count(), 1);
        assert_eq!(t.snapshot().deliver_latency[0].count(), 0);
        t.record_deliver_latency(0, 100);
        assert_eq!(t.harvest().deliver_latency[0].count(), 1);
    }

    #[cfg(feature = "ownership-checks")]
    #[test]
    fn production_paths_are_violation_free_and_registered() {
        use flipc_core::ownership;
        let t = EngineTelemetry::new(2);
        let base = &t.hists[ITER_WORK] as *const _ as usize;
        let _ = ownership::take_violations();
        t.record_iteration_work(1);
        let _ = t.harvest();
        let mine: Vec<_> = ownership::take_violations()
            .into_iter()
            .filter(|v| v.region_base == base)
            .collect();
        assert!(mine.is_empty(), "production paths flagged: {mine:?}");
        // Cross-role write through the registered region is flagged with
        // the telemetry field name.
        {
            let _role = ownership::enter(ownership::Role::Engine);
            let _ = t.hists[ITER_WORK].reader().harvest();
        }
        let mine: Vec<_> = ownership::take_violations()
            .into_iter()
            .filter(|v| v.region_base == base)
            .collect();
        assert!(
            mine.iter()
                .any(|v| v.field.starts_with("telemetry.iteration_work.taken")),
            "field name must resolve: {mine:?}"
        );
    }
}
