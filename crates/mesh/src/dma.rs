//! DMA transfer constraints of the Paragon mesh interface.
//!
//! The paper: "the characteristics of the DMA support in the interconnect
//! interface require a message size that is at least 64 bytes and a multiple
//! of 32 bytes" — this is what fixes FLIPC's minimum message size, and with
//! 8 bytes of internal header, the 56-byte minimum application payload.
//! Message buffers must also be 32-byte aligned, which is why FLIPC
//! internalizes all buffer allocation.

/// Alignment and size rules a DMA engine imposes on transfers.
#[derive(Clone, Copy, Debug)]
pub struct DmaConstraints {
    /// Minimum transfer size in bytes.
    pub min_size: u64,
    /// Transfer sizes must be a multiple of this granule.
    pub granule: u64,
    /// Buffers must be aligned to this many bytes.
    pub alignment: u64,
}

impl DmaConstraints {
    /// The Paragon mesh-interface DMA rules (>= 64 bytes, 32-byte multiples,
    /// 32-byte aligned buffers).
    pub const PARAGON: DmaConstraints = DmaConstraints {
        min_size: 64,
        granule: 32,
        alignment: 32,
    };

    /// Returns `true` if `size` is directly transferable.
    pub fn size_ok(&self, size: u64) -> bool {
        size >= self.min_size && size.is_multiple_of(self.granule)
    }

    /// Rounds `size` up to the nearest transferable size.
    pub fn pad_size(&self, size: u64) -> u64 {
        let padded = size.max(self.min_size);
        padded.div_ceil(self.granule) * self.granule
    }

    /// Returns `true` if `addr` satisfies the alignment rule.
    pub fn aligned(&self, addr: u64) -> bool {
        addr.is_multiple_of(self.alignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paragon_minimum_is_64() {
        let d = DmaConstraints::PARAGON;
        assert!(!d.size_ok(32));
        assert!(!d.size_ok(63));
        assert!(d.size_ok(64));
        assert!(!d.size_ok(65));
        assert!(d.size_ok(96));
    }

    #[test]
    fn pad_rounds_up_to_granule_and_minimum() {
        let d = DmaConstraints::PARAGON;
        assert_eq!(d.pad_size(1), 64);
        assert_eq!(d.pad_size(64), 64);
        assert_eq!(d.pad_size(65), 96);
        assert_eq!(d.pad_size(120), 128);
        assert_eq!(
            d.pad_size(56 + 8),
            64,
            "56B payload + 8B header fits the minimum"
        );
    }

    #[test]
    fn padded_sizes_are_always_ok() {
        let d = DmaConstraints::PARAGON;
        for size in 1..1024 {
            assert!(d.size_ok(d.pad_size(size)), "pad_size({size}) invalid");
        }
    }

    #[test]
    fn alignment_check() {
        let d = DmaConstraints::PARAGON;
        assert!(d.aligned(0));
        assert!(d.aligned(64));
        assert!(!d.aligned(16));
    }
}
