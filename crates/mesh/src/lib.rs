//! Paragon-style 2D wormhole mesh interconnect simulator.
//!
//! This substrate stands in for the Intel Paragon mesh the paper measured
//! on: XY dimension-order routing over a 2D mesh ([`topology`]), a
//! wormhole timing model with link-level path occupancy ([`network`]), and
//! the DMA size/alignment constraints that set FLIPC's minimum message size
//! ([`dma`]).
//!
//! The model's two load-bearing properties for the reproduction are:
//!
//! 1. uncontended latency is `hops * t_hop + bytes * t_byte` with
//!    `t_byte = 5 ns` (200 MB/s peak), which bounds the Figure 4 slope, and
//! 2. a packet holds its whole path until the tail drains, so single-packet
//!    multi-megabyte messages (SUNMOS) block crossing real-time traffic —
//!    experiment E8.

pub mod dma;
pub mod network;
pub mod topology;

pub use dma::DmaConstraints;
pub use network::{MeshTiming, NetStats, Network};
pub use topology::{Coord, Link, MeshShape, NodeId};
