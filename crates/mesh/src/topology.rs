//! 2D mesh topology and XY dimension-order routing.
//!
//! The Intel Paragon interconnect is a 2D mesh of nodes with wormhole
//! routing in dimension order (first along X, then along Y), which is
//! deadlock-free. This module provides node addressing, coordinate mapping,
//! and route enumeration as a sequence of directed links.

use core::fmt;

/// A node's position in the mesh, as a linear identifier (row-major).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// (column, row) coordinates of a node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Coord {
    /// Column (X).
    pub x: u16,
    /// Row (Y).
    pub y: u16,
}

/// A directed link between two adjacent mesh nodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Link {
    /// Upstream node.
    pub from: Coord,
    /// Downstream node (always an immediate mesh neighbour of `from`).
    pub to: Coord,
}

/// The shape of a 2D mesh.
#[derive(Clone, Copy, Debug)]
pub struct MeshShape {
    cols: u16,
    rows: u16,
}

impl MeshShape {
    /// Creates a `cols x rows` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: u16, rows: u16) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be nonzero");
        MeshShape { cols, rows }
    }

    /// Number of columns.
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// Always false; meshes have at least one node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Maps a node id to its coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the mesh.
    pub fn coord(&self, node: NodeId) -> Coord {
        assert!(
            (node.0 as usize) < self.len(),
            "node {node} outside {}x{} mesh",
            self.cols,
            self.rows
        );
        Coord {
            x: node.0 % self.cols,
            y: node.0 / self.cols,
        }
    }

    /// Maps coordinates back to a node id.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the mesh.
    pub fn node_at(&self, c: Coord) -> NodeId {
        assert!(
            c.x < self.cols && c.y < self.rows,
            "coordinate outside mesh"
        );
        NodeId(c.y * self.cols + c.x)
    }

    /// Manhattan hop count between two nodes under XY routing.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        (ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)) as u32
    }

    /// The XY (dimension-order) route from `src` to `dst` as directed links.
    ///
    /// Routes first along X to the destination column, then along Y. The
    /// result is empty when `src == dst`.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<Link> {
        let mut here = self.coord(src);
        let goal = self.coord(dst);
        let mut links = Vec::with_capacity(self.hops(src, dst) as usize);
        while here.x != goal.x {
            let next = Coord {
                x: if goal.x > here.x {
                    here.x + 1
                } else {
                    here.x - 1
                },
                y: here.y,
            };
            links.push(Link {
                from: here,
                to: next,
            });
            here = next;
        }
        while here.y != goal.y {
            let next = Coord {
                x: here.x,
                y: if goal.y > here.y {
                    here.y + 1
                } else {
                    here.y - 1
                },
            };
            links.push(Link {
                from: here,
                to: next,
            });
            here = next;
        }
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_roundtrip() {
        let m = MeshShape::new(4, 3);
        for i in 0..m.len() as u16 {
            let c = m.coord(NodeId(i));
            assert_eq!(m.node_at(c), NodeId(i));
        }
        assert_eq!(m.coord(NodeId(5)), Coord { x: 1, y: 1 });
    }

    #[test]
    fn hops_is_manhattan_distance() {
        let m = MeshShape::new(4, 4);
        assert_eq!(m.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(m.hops(NodeId(0), NodeId(3)), 3);
        assert_eq!(m.hops(NodeId(0), NodeId(15)), 6);
        assert_eq!(m.hops(NodeId(15), NodeId(0)), 6);
    }

    #[test]
    fn route_is_x_then_y() {
        let m = MeshShape::new(4, 4);
        let r = m.route(NodeId(0), NodeId(10)); // (0,0) -> (2,2)
        assert_eq!(r.len(), 4);
        // First X moves, then Y moves.
        assert_eq!(r[0].from, Coord { x: 0, y: 0 });
        assert_eq!(r[0].to, Coord { x: 1, y: 0 });
        assert_eq!(r[1].to, Coord { x: 2, y: 0 });
        assert_eq!(r[2].to, Coord { x: 2, y: 1 });
        assert_eq!(r[3].to, Coord { x: 2, y: 2 });
    }

    #[test]
    fn route_handles_negative_directions() {
        let m = MeshShape::new(4, 4);
        let r = m.route(NodeId(10), NodeId(0));
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].from, Coord { x: 2, y: 2 });
        assert_eq!(r.last().unwrap().to, Coord { x: 0, y: 0 });
    }

    #[test]
    fn route_links_are_contiguous_and_adjacent() {
        let m = MeshShape::new(5, 5);
        for (s, d) in [(0u16, 24u16), (24, 0), (4, 20), (7, 13)] {
            let r = m.route(NodeId(s), NodeId(d));
            assert_eq!(r.len() as u32, m.hops(NodeId(s), NodeId(d)));
            for w in r.windows(2) {
                assert_eq!(w[0].to, w[1].from, "route must be contiguous");
            }
            for l in &r {
                let manh = l.from.x.abs_diff(l.to.x) + l.from.y.abs_diff(l.to.y);
                assert_eq!(manh, 1, "links connect mesh neighbours");
            }
        }
    }

    #[test]
    fn self_route_is_empty() {
        let m = MeshShape::new(3, 3);
        assert!(m.route(NodeId(4), NodeId(4)).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_node_panics() {
        MeshShape::new(2, 2).coord(NodeId(4));
    }
}
