//! Wormhole-routed mesh network timing model.
//!
//! [`Network`] models the Paragon mesh at the granularity the evaluation
//! needs: per-packet latency (`hops * t_hop + bytes * t_byte` when the path
//! is free) and **path occupancy** — a wormhole packet holds every link on
//! its route until its tail flit has drained, so a multi-megabyte
//! single-packet message (SUNMOS-style) blocks crossing traffic for the
//! whole transfer. That blocking is the mechanism behind the paper's
//! real-time responsiveness critique of SUNMOS, reproduced in experiment E8.
//!
//! The model is a state machine over simulated time rather than an event
//! generator: callers pass the current [`SimTime`] and receive the arrival
//! time, then schedule their own delivery events on their executor.

use std::collections::HashMap;

use flipc_sim::time::{SimDuration, SimTime};

use crate::topology::{Link, MeshShape, NodeId};

/// Timing parameters of the mesh fabric.
#[derive(Clone, Copy, Debug)]
pub struct MeshTiming {
    /// Per-hop routing/switch latency of the header flit.
    pub hop: SimDuration,
    /// Serialization cost per byte on a link (200 MB/s peak => 5 ns/byte).
    pub ns_per_byte: f64,
}

impl MeshTiming {
    /// The Paragon mesh: ~40ns per hop, 200 MB/s links.
    pub fn paragon() -> Self {
        MeshTiming {
            hop: SimDuration::from_ns(40),
            ns_per_byte: 5.0,
        }
    }

    /// Serialization time of `bytes` on one link.
    pub fn serialize(&self, bytes: u64) -> SimDuration {
        SimDuration::from_ns_f64(self.ns_per_byte * bytes as f64)
    }
}

/// Aggregate traffic statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets transmitted.
    pub packets: u64,
    /// Payload bytes transmitted.
    pub bytes: u64,
    /// Total time packets spent waiting for busy links or a busy source NIC.
    pub blocked_ns: u64,
}

/// The mesh network state: per-link and per-NIC busy horizons.
pub struct Network {
    shape: MeshShape,
    timing: MeshTiming,
    link_busy: HashMap<Link, SimTime>,
    nic_busy: Vec<SimTime>,
    stats: NetStats,
}

impl Network {
    /// Creates an idle network of the given shape and timing.
    pub fn new(shape: MeshShape, timing: MeshTiming) -> Self {
        Network {
            shape,
            timing,
            link_busy: HashMap::new(),
            nic_busy: vec![SimTime::ZERO; shape.len()],
            stats: NetStats::default(),
        }
    }

    /// The mesh shape.
    pub fn shape(&self) -> MeshShape {
        self.shape
    }

    /// The fabric timing parameters.
    pub fn timing(&self) -> MeshTiming {
        self.timing
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Latency of `bytes` from `src` to `dst` on an idle network.
    pub fn uncontended_latency(&self, src: NodeId, dst: NodeId, bytes: u64) -> SimDuration {
        self.timing.hop * self.shape.hops(src, dst) as u64 + self.timing.serialize(bytes)
    }

    /// Transmits one packet of `bytes` from `src` to `dst`, starting no
    /// earlier than `now`; returns the arrival time of the tail flit at the
    /// destination.
    ///
    /// The source NIC streams one packet at a time, the header flit acquires
    /// route links in order (waiting out any that are busy), and every link
    /// on the route is then held until the tail drains — the wormhole
    /// path-occupancy property.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` (local delivery never enters the mesh) or if
    /// `bytes` is zero.
    pub fn transmit(&mut self, now: SimTime, src: NodeId, dst: NodeId, bytes: u64) -> SimTime {
        assert!(src != dst, "mesh transmit to self");
        assert!(bytes > 0, "empty packet");
        let route = self.shape.route(src, dst);
        let serialize = self.timing.serialize(bytes);

        // Wait for the source NIC to finish any earlier packet.
        let start = now.max(self.nic_busy[src.0 as usize]);

        // Header flit acquires each link in order.
        let mut head = start;
        for link in &route {
            let free_at = self.link_busy.get(link).copied().unwrap_or(SimTime::ZERO);
            head = head.max(free_at) + self.timing.hop;
        }
        let arrival = head + serialize;

        // Every link on the path is held until the tail has passed it; the
        // tail clears all links when the last flit reaches the destination.
        for link in route {
            self.link_busy.insert(link, arrival);
        }
        // The source NIC is busy until its last flit leaves, which is the
        // arrival time minus the downstream pipeline depth.
        let hops = self.shape.hops(src, dst) as u64;
        self.nic_busy[src.0 as usize] = SimTime::from_ns(
            arrival
                .as_ns()
                .saturating_sub(self.timing.hop.as_ns() * hops),
        );

        self.stats.packets += 1;
        self.stats.bytes += bytes;
        let ideal = start + self.uncontended_latency(src, dst, bytes);
        self.stats.blocked_ns += arrival.as_ns().saturating_sub(ideal.as_ns())
            + start.as_ns().saturating_sub(now.as_ns());
        arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(cols: u16, rows: u16) -> Network {
        Network::new(MeshShape::new(cols, rows), MeshTiming::paragon())
    }

    #[test]
    fn idle_latency_is_hops_plus_serialization() {
        let mut n = net(4, 4);
        // (0,0) -> (3,0): 3 hops, 120 bytes at 5ns/B = 600ns.
        let t = n.transmit(SimTime::ZERO, NodeId(0), NodeId(3), 120);
        assert_eq!(t.as_ns(), 3 * 40 + 600);
        assert_eq!(
            n.uncontended_latency(NodeId(0), NodeId(3), 120),
            SimDuration::from_ns(720)
        );
    }

    #[test]
    fn back_to_back_packets_pipeline_at_link_rate() {
        let mut n = net(2, 1);
        let bytes = 512u64;
        let mut last = SimTime::ZERO;
        for i in 0..10 {
            last = n.transmit(SimTime::ZERO, NodeId(0), NodeId(1), bytes);
            // Each packet's head re-acquires the link after the previous
            // tail clears: inter-arrival = serialization + hop.
            let expect = (i + 1) * (bytes * 5 + 40);
            assert_eq!(last.as_ns(), expect, "packet {i}");
        }
        // Effective bandwidth approaches the 200 MB/s link rate.
        let total_bytes = 10 * bytes;
        let mbps = total_bytes as f64 / last.as_ns() as f64 * 1_000.0;
        assert!(mbps > 190.0, "pipelined bandwidth {mbps:.1} MB/s");
    }

    #[test]
    fn long_packet_blocks_crossing_traffic() {
        // A 4MB single packet from (0,1) to (3,1) crosses the column-1 links
        // used by traffic from (1,0) to (1,2) only at... actually XY routing:
        // bulk goes along row 1; the crossing stream (1,0)->(1,2) goes down
        // column 1 and does not share a directed link. Use overlapping rows
        // instead: cross traffic (0,1)->(2,1) shares the row-1 links.
        let mut n = net(4, 3);
        let bulk_src = n.shape().node_at(crate::topology::Coord { x: 0, y: 1 });
        let bulk_dst = n.shape().node_at(crate::topology::Coord { x: 3, y: 1 });
        let small_src = bulk_src;
        let small_dst = n.shape().node_at(crate::topology::Coord { x: 2, y: 1 });

        let bulk_bytes = 4 * 1024 * 1024u64;
        let bulk_arrival = n.transmit(SimTime::ZERO, bulk_src, bulk_dst, bulk_bytes);
        // ~21ms of serialization.
        assert!(bulk_arrival.as_ns() > 20_000_000);

        // A 120-byte message injected right after must wait for the bulk
        // packet's tail to drain the shared links.
        let small = n.transmit(SimTime::from_ns(100), small_src, small_dst, 120);
        assert!(
            small >= bulk_arrival,
            "small packet ({small:?}) must wait for bulk tail ({bulk_arrival:?})"
        );
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let mut n = net(4, 3);
        // Row 0 traffic and row 2 traffic share nothing.
        let a = n.transmit(SimTime::ZERO, NodeId(0), NodeId(3), 1_000_000);
        let b = n.transmit(SimTime::ZERO, NodeId(8), NodeId(11), 120);
        assert!(b < a);
        assert_eq!(b.as_ns(), 3 * 40 + 600);
    }

    #[test]
    fn nic_serializes_same_source_packets() {
        let mut n = net(3, 1);
        let first = n.transmit(SimTime::ZERO, NodeId(0), NodeId(2), 1_000);
        // Second packet to a different destination still waits for the NIC.
        let second = n.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 64);
        assert!(
            second > SimTime::from_ns(5_000),
            "NIC must serialize injections"
        );
        let _ = first;
    }

    #[test]
    fn per_pair_ordering_is_preserved() {
        let mut n = net(4, 4);
        let mut prev = SimTime::ZERO;
        for _ in 0..50 {
            let t = n.transmit(prev, NodeId(0), NodeId(15), 256);
            assert!(t > prev, "arrivals must be monotone per pair");
            prev = t;
        }
    }

    #[test]
    fn stats_accumulate_and_count_blocking() {
        let mut n = net(2, 1);
        n.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 10_000);
        n.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 10_000);
        let s = n.stats();
        assert_eq!(s.packets, 2);
        assert_eq!(s.bytes, 20_000);
        assert!(s.blocked_ns > 0, "second packet waited for the NIC");
    }

    #[test]
    #[should_panic(expected = "self")]
    fn self_transmit_panics() {
        net(2, 2).transmit(SimTime::ZERO, NodeId(0), NodeId(0), 64);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_packet_panics() {
        net(2, 2).transmit(SimTime::ZERO, NodeId(0), NodeId(1), 0);
    }
}

#[cfg(test)]
mod contention_tests {
    use super::*;

    #[test]
    fn crossing_traffic_on_disjoint_rows_is_fully_parallel() {
        // Two simultaneous streams on different rows of a 4x2 mesh finish
        // as if each had the machine to itself.
        let shape = MeshShape::new(4, 2);
        let mut both = Network::new(shape, MeshTiming::paragon());
        let a = both.transmit(SimTime::ZERO, NodeId(0), NodeId(3), 4096);
        let b = both.transmit(SimTime::ZERO, NodeId(4), NodeId(7), 4096);

        let mut solo = Network::new(shape, MeshTiming::paragon());
        let a_solo = solo.transmit(SimTime::ZERO, NodeId(0), NodeId(3), 4096);
        assert_eq!(a, a_solo);
        assert_eq!(b, a_solo, "symmetric path must cost the same");
        assert_eq!(both.stats().blocked_ns, 0);
    }

    #[test]
    fn shared_link_serializes_and_counts_blocking() {
        // Both streams need link (1,0)->(2,0).
        let shape = MeshShape::new(4, 1);
        let mut n = Network::new(shape, MeshTiming::paragon());
        let first = n.transmit(SimTime::ZERO, NodeId(0), NodeId(3), 10_000);
        let second = n.transmit(SimTime::ZERO, NodeId(1), NodeId(2), 64);
        assert!(
            second >= first - SimDuration::from_ns(2 * 40),
            "must wait for the tail"
        );
        assert!(n.stats().blocked_ns > 0);
    }

    #[test]
    fn arrival_time_monotone_in_injection_time() {
        let shape = MeshShape::new(2, 1);
        let mut n = Network::new(shape, MeshTiming::paragon());
        let mut prev = SimTime::ZERO;
        for i in 0..20u64 {
            let t = n.transmit(SimTime::from_ns(i * 10_000), NodeId(0), NodeId(1), 256);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn bigger_packets_block_crossing_traffic_longer() {
        let shape = MeshShape::new(4, 1);
        let measure = |bulk_bytes: u64| {
            let mut n = Network::new(shape, MeshTiming::paragon());
            n.transmit(SimTime::ZERO, NodeId(0), NodeId(3), bulk_bytes);
            let t = n.transmit(SimTime::from_ns(10), NodeId(1), NodeId(2), 64);
            t.as_ns()
        };
        let small = measure(1_000);
        let large = measure(1_000_000);
        assert!(large > small * 100, "occupancy must scale with packet size");
    }
}
