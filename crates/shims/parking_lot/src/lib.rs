//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's ergonomics: `lock()`
//! returns the guard directly (no poisoning — a panicked holder does not
//! wedge later lockers), and [`Condvar::wait_until`] takes the guard by
//! `&mut`. Only the surface the workspace uses is provided.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

/// A non-poisoning mutex.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_until` can temporarily take the std guard
    // by value; it is `Some` at every point user code can observe.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed condition wait.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified or `deadline` passes, releasing and
    /// reacquiring the guard's mutex around the wait.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_roundtrip_and_timeout() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
        assert_eq!(*g, 6);
    }

    #[test]
    fn notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut g = m.lock();
        while !*g {
            cv.wait_until(&mut g, deadline);
            if Instant::now() >= deadline {
                break;
            }
        }
        assert!(*g);
        t.join().expect("notifier");
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
