//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal, dependency-free implementation of the
//! subset of the proptest API its tests use: the [`proptest!`] macro,
//! [`Strategy`] with `any`, `Just`, ranges, tuples, regex-character-class
//! string strategies, `collection::vec`, `prop_oneof!`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs, the
//!   derived seed, and the case index instead of a minimized example.
//! * **Deterministic seeding.** Cases derive from a fixed base seed (or
//!   `PROPTEST_SEED` in the environment) mixed with the test name, so runs
//!   are reproducible by default.
//! * **No persistence.** `*.proptest-regressions` files are ignored.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// The deterministic generator handed to strategies (xoshiro256++).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a seed via splitmix64 expansion.
    pub fn new(seed: u64) -> TestRng {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[lo, hi)` (`hi > lo`).
    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(hi > lo);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform value in `[lo, hi)` over `u64`.
    pub fn u64_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (as in real proptest).
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.u64_range(self.start as u64, self.end as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.u64_range(*self.start() as u64, *self.end() as u64 + 1) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// A size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_range(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------

/// `&'static str` patterns act as string strategies. Only the subset
/// `[character-class]{m,n}` is supported (literal characters, `a-z` style
/// ranges, `\\`-escapes); anything else panics with a clear message.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!("unsupported regex strategy {self:?} (shim supports only `[class]{{m,n}}`)")
        });
        let len = rng.usize_range(lo, hi + 1);
        (0..len)
            .map(|_| chars[rng.usize_range(0, chars.len())])
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, counts) = rest.split_once(']')?;
    let counts = counts.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = counts.parse().ok()?;
            (n, n)
        }
    };
    let mut chars: Vec<char> = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if cs[i] == '\\' && i + 1 < cs.len() {
            chars.push(cs[i + 1]);
            i += 2;
        } else if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (a, b) = (cs[i] as u32, cs[i + 2] as u32);
            if a > b {
                return None;
            }
            chars.extend((a..=b).filter_map(char::from_u32));
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    if chars.is_empty() || hi < lo {
        return None;
    }
    Some((chars, lo, hi))
}

// ---------------------------------------------------------------------
// prop_oneof support
// ---------------------------------------------------------------------

/// Uniform choice among boxed alternative strategies (see [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Wraps the alternatives; panics if empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.usize_range(0, self.options.len());
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Config, errors, runner
// ---------------------------------------------------------------------

/// Per-test configuration (`cases` is the number of generated inputs).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property (produced by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError(msg)
    }
}

/// Test-loop internals used by the [`proptest!`] macro expansion.
pub mod runner {
    use super::{ProptestConfig, TestCaseError, TestRng};

    fn base_seed(name: &str) -> u64 {
        let env = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x5EED_F11B_C001_D00D);
        // FNV-1a over the test name so distinct tests explore distinct
        // streams even with the same base seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        env ^ h
    }

    /// Runs `config.cases` cases of `f`, panicking with full input and
    /// seed diagnostics on the first failure.
    pub fn run_cases(
        config: &ProptestConfig,
        name: &str,
        f: impl Fn(&mut TestRng, &mut String) -> Result<(), TestCaseError>,
    ) {
        let seed = base_seed(name);
        for case in 0..config.cases as u64 {
            let mut rng = TestRng::new(seed.wrapping_add(case));
            let mut inputs = String::new();
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng, &mut inputs)));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(TestCaseError(msg))) => panic!(
                    "{name}: property failed at case {case}: {msg}\n  inputs: {inputs}\n  \
                     derived seed {seed:#x}"
                ),
                Err(payload) => {
                    eprintln!(
                        "{name}: panic at case {case}\n  inputs: {inputs}\n  derived seed {seed:#x}"
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Property-test declaration macro (the shim's version of
/// `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::runner::run_cases(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                |rng, inputs| {
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), rng);
                        inputs.push_str(concat!(stringify!($arg), " = "));
                        inputs.push_str(&format!("{:?}; ", $arg));
                    )+
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    result
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} != {} ({:?} vs {:?})", stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({l:?} vs {r:?})", format!($($fmt)+)
            )));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} == {} ({:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            ::std::vec::Vec::new();
        $( options.push(::std::boxed::Box::new($strat)); )+
        $crate::Union::new(options)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&(3u32..9), &mut rng);
            assert!((3..9).contains(&v));
        }
        let vs = crate::Strategy::generate(&crate::collection::vec(0usize..4, 2..5), &mut rng);
        assert!((2..5).contains(&vs.len()));
        assert!(vs.iter().all(|&x| x < 4));
    }

    #[test]
    fn class_patterns_generate_matching_strings() {
        let mut rng = crate::TestRng::new(9);
        let s = crate::Strategy::generate(&"[a-c_.]{2,6}", &mut rng);
        assert!((2..=6).contains(&s.len()));
        assert!(s.chars().all(|c| "abc_.".contains(c)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_pipeline_works(x in 1u32..100, flips in crate::collection::vec(any::<bool>(), 0..8)) {
            prop_assert!(x >= 1 && x < 100);
            prop_assert_eq!(flips.len(), flips.len());
        }
    }
}
