//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via splitmix64), the
//! [`Rng`] trait with `gen_range`, and [`SeedableRng::seed_from_u64`] —
//! the surface the workspace's workload generators use. Deterministic by
//! construction: the same seed always yields the same stream.

use std::ops::{Range, RangeInclusive};

/// A source of randomness.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, as in `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.next_u64() % (self.end - self.start) as u64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                let span = (*self.end() - *self.start()) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                *self.start() + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators (`rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(50usize..=500);
            assert!((50..=500).contains(&v));
            let f = r.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
        }
    }
}
