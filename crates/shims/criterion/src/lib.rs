//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the small slice of the criterion API the workspace's benches use:
//! [`Criterion`] with `sample_size` / `measurement_time` / `warm_up_time` /
//! `bench_function`, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is simple wall-clock sampling
//! with median-of-samples reporting — adequate for relative comparisons,
//! not a statistical replacement for real criterion.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            budget: self.measurement_time,
            samples: self.sample_size,
            ns_per_iter: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    warm_up: Duration,
    budget: Duration,
    samples: usize,
    ns_per_iter: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`, calling it repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up while estimating per-iteration cost.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std_black_box(routine());
            iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
        // Pick a batch size so `samples` batches fit the budget.
        let budget_ns = self.budget.as_nanos() as f64;
        let batch =
            ((budget_ns / self.samples as f64 / per_iter.max(1.0)) as u64).clamp(1, 1 << 24);
        self.ns_per_iter.clear();
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            self.ns_per_iter
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.ns_per_iter.is_empty() {
            println!("{name:<40} (no measurement)");
            return;
        }
        self.ns_per_iter
            .sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
        let n = self.ns_per_iter.len();
        let median = self.ns_per_iter[n / 2];
        let (lo, hi) = (self.ns_per_iter[0], self.ns_per_iter[n - 1]);
        println!("{name:<40} time: [{lo:10.1} ns {median:10.1} ns {hi:10.1} ns] ({n} samples)");
    }
}

/// Declares a benchmark group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(1u32 + 1));
        });
        assert!(ran);
    }
}
