//! The messaging engine: FLIPC's independently executing component.
//!
//! On the Paragon this code runs on the dedicated message coprocessor; here
//! it runs on a dedicated thread (see [`crate::thread`]) or is pumped
//! inline (the paper's run-inside-the-kernel debugging configuration; see
//! [`crate::node::InlineCluster`]). Either way it obeys the controller
//! discipline the paper designs for:
//!
//! * **Non-preemptible event loop with bounded work**: one [`Engine::iterate`]
//!   call performs at most a configured budget of receive deliveries and
//!   send transmissions, then returns — added work cannot starve unrelated
//!   communication.
//! * **Wait-free synchronization, loads and stores only**: all interaction
//!   with application threads goes through the three-pointer endpoint
//!   queues, header words, and two-location counters of `flipc-core`. The
//!   engine performs *no* read-modify-write on communication-buffer memory.
//! * **Optimistic transport**: frames are sent without acknowledgement; an
//!   arrival with no queued receive buffer is discarded and counted. Every
//!   node can therefore always accept from the interconnect, which avoids
//!   deadlock on a reliable fabric.
//! * **Priority-aware scanning**: higher-importance send endpoints are
//!   serviced first, so message streams of varying importance (the
//!   distributed real-time requirement) see differentiated service.

use flipc_core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flipc_core::buffer::BufferState;
use flipc_core::checks::{
    validate_backlog, validate_delivery_at, validate_queued_buffer, CheckMode,
};
use flipc_core::commbuf::CommBuffer;
use flipc_core::endpoint::{EndpointAddress, EndpointIndex, EndpointType, Importance};
use flipc_core::wait::WaitRegistry;
use flipc_obs::{EngineTelemetry, TraceKind, TraceWriter};

use crate::shaper::{Shaper, TokenBucket};
use crate::transport::Transport;
use crate::wire::Frame;

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Validity checking of application-writable state.
    pub check_mode: CheckMode,
    /// Maximum arrivals delivered per iteration.
    pub incoming_budget: u32,
    /// Maximum sends transmitted per iteration.
    pub outgoing_budget: u32,
    /// Maximum frames collected from one send endpoint per drain pass
    /// (the batch the transport may coalesce into one datagram). Bounds
    /// how long one endpoint can hold the scan before equal-importance
    /// neighbours are serviced; the transport sees a `flush` at the end
    /// of every pass regardless. `0` is treated as `1`.
    pub max_batch: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            check_mode: CheckMode::Checked,
            incoming_budget: 64,
            outgoing_budget: 64,
            max_batch: 16,
        }
    }
}

/// Shared engine statistics (readable while the engine runs).
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Frames handed to the transport.
    pub sent: AtomicU64,
    /// Frames delivered into receive buffers.
    pub delivered: AtomicU64,
    /// Frames discarded because the destination endpoint had no buffer.
    pub dropped_no_buffer: AtomicU64,
    /// Frames discarded because the destination endpoint was stale,
    /// inactive, mistyped, or misrouted.
    pub misaddressed: AtomicU64,
    /// Validity-check failures on application-writable state.
    pub check_failures: AtomicU64,
    /// Sends suppressed by a protection domain's destination restriction.
    pub denied: AtomicU64,
    /// Sends failed because the transport's failure detector declared the
    /// destination node dead (the buffer completes and the endpoint's drop
    /// counter records the loss; see `Transport::peer_down`).
    pub peer_down: AtomicU64,
    /// Event-loop iterations executed.
    pub iterations: AtomicU64,
}

impl EngineStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Sum of all frames that left the wire (delivered + discarded).
    pub fn total_arrivals(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
            + self.dropped_no_buffer.load(Ordering::Relaxed)
            + self.misaddressed.load(Ordering::Relaxed)
    }
}

/// One protection domain served by an engine: a communication buffer, its
/// wait registry, the node-global endpoint-index base its endpoints are
/// published at, and an optional restriction on where it may send.
///
/// Multiple domains per node are the paper's Future Work item: "Support
/// for multiple communication buffers per node and protection mechanisms
/// that restrict where messages can be sent should be added to support
/// multiple applications that do not trust each other." The engine is the
/// trusted component, so it is where the restriction is enforced.
pub struct Domain {
    /// The domain's communication buffer.
    pub cb: Arc<CommBuffer>,
    /// Wakeup registry for this domain's blocking receivers.
    pub registry: Arc<WaitRegistry>,
    /// Node-global index of this domain's endpoint slot 0. Domains must
    /// occupy disjoint index ranges; applications attach with
    /// [`flipc_core::api::Flipc::attach_at`] using the same base.
    pub index_base: u16,
    /// Destination nodes this domain may address; `None` = unrestricted.
    /// Denied sends are discarded, counted on the engine's `denied` stat
    /// and on the *send* endpoint's drop counter so the application can
    /// observe them.
    pub allowed_destinations: Option<Vec<flipc_core::endpoint::FlipcNodeId>>,
}

impl Domain {
    /// An unrestricted domain at index base 0 (the single-application
    /// configuration).
    pub fn unrestricted(cb: Arc<CommBuffer>, registry: Arc<WaitRegistry>) -> Domain {
        Domain {
            cb,
            registry,
            index_base: 0,
            allowed_destinations: None,
        }
    }

    fn endpoints(&self) -> u16 {
        self.cb.geometry().endpoints
    }

    fn contains_global(&self, global: u16) -> bool {
        global >= self.index_base && global - self.index_base < self.endpoints()
    }

    fn may_send_to(&self, node: flipc_core::endpoint::FlipcNodeId) -> bool {
        match &self.allowed_destinations {
            None => true,
            Some(list) => list.contains(&node),
        }
    }
}

/// The messaging engine for one node.
pub struct Engine {
    domains: Vec<Domain>,
    transport: Box<dyn Transport>,
    cfg: EngineConfig,
    stats: Arc<EngineStats>,
    scan_cursor: u16,
    shaper: Shaper,
    /// Always-on wait-free histograms (iteration work, per-endpoint
    /// send→deliver latency). The engine is the single recorder.
    telemetry: Arc<EngineTelemetry>,
    /// Optional event trace; the engine is the single producer.
    trace: Option<TraceWriter>,
}

impl Engine {
    /// Builds an engine over a communication buffer and a transport.
    ///
    /// The `registry` must be the one application handles on this node use
    /// for blocking receives.
    pub fn new(
        cb: Arc<CommBuffer>,
        transport: Box<dyn Transport>,
        registry: Arc<WaitRegistry>,
        cfg: EngineConfig,
    ) -> Engine {
        Engine::new_multi(vec![Domain::unrestricted(cb, registry)], transport, cfg)
    }

    /// Builds an engine serving several protection domains (multiple
    /// communication buffers) over one transport.
    ///
    /// # Panics
    ///
    /// Panics if any buffer is uninitialized or domain index ranges
    /// overlap.
    pub fn new_multi(
        domains: Vec<Domain>,
        transport: Box<dyn Transport>,
        cfg: EngineConfig,
    ) -> Engine {
        assert!(!domains.is_empty(), "engine needs at least one domain");
        for d in &domains {
            assert!(d.cb.magic_ok(), "communication buffer not initialized");
        }
        for (i, a) in domains.iter().enumerate() {
            for b in domains.iter().skip(i + 1) {
                let a_end = a.index_base + a.endpoints();
                let b_end = b.index_base + b.endpoints();
                assert!(
                    a_end <= b.index_base || b_end <= a.index_base,
                    "domain endpoint-index ranges overlap"
                );
            }
        }
        // Telemetry spans the node-global endpoint index space so latency
        // samples land on the index applications see in addresses.
        let total_endpoints = domains
            .iter()
            .map(|d| usize::from(d.index_base) + usize::from(d.endpoints()))
            .max()
            .unwrap_or(0);
        Engine {
            domains,
            transport,
            cfg,
            stats: Arc::new(EngineStats::default()),
            scan_cursor: 0,
            shaper: Shaper::new(),
            telemetry: EngineTelemetry::new(total_endpoints),
            trace: None,
        }
    }

    /// Installs a transmit rate limit (capacity control, the paper's
    /// Future Work item 4) on endpoint slot `ep`: at most
    /// `bytes_per_iteration` payload bytes per event-loop pass, with up to
    /// `burst` bytes of accumulated credit. Messages over the limit stay
    /// queued — nothing is dropped.
    /// (`ep` is the node-global endpoint index: domain base + slot.)
    pub fn set_rate_limit(&mut self, ep: EndpointIndex, bytes_per_iteration: u64, burst: u64) {
        self.shaper
            .limit(ep.0, TokenBucket::new(bytes_per_iteration, burst));
    }

    /// Removes a previously installed rate limit.
    pub fn clear_rate_limit(&mut self, ep: EndpointIndex) {
        self.shaper.unlimit(ep.0);
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> Arc<EngineStats> {
        self.stats.clone()
    }

    /// Shared telemetry handle: loads-only histogram snapshots of
    /// iteration work and per-endpoint send→deliver latency, readable
    /// while the engine runs (same inspect discipline as
    /// [`flipc_core::inspect`]).
    pub fn telemetry(&self) -> Arc<EngineTelemetry> {
        self.telemetry.clone()
    }

    /// Installs the producer half of a trace ring; subsequent engine
    /// activity emits [`TraceKind`] events into it. The engine never
    /// blocks on a full ring — overflow events are dropped and tallied on
    /// the ring's lost counter.
    pub fn set_trace(&mut self, trace: TraceWriter) {
        self.trace = Some(trace);
    }

    /// Builds a trace ring of `capacity` events, installs its producer
    /// half on this engine, and hands back the consumer half — the
    /// one-call form of [`Engine::set_trace`] used by observers
    /// (`flipc-top`, the stall monitor).
    pub fn install_trace(&mut self, capacity: usize) -> flipc_obs::TraceReader {
        let (w, r) = flipc_obs::trace_ring(capacity);
        self.set_trace(w);
        r
    }

    /// A loads-only snapshot of the transport's reliability state, when
    /// the transport keeps one (`None` for in-process carriers). Observer
    /// surface — never called from the event loop.
    pub fn transport_snapshot(&self) -> Option<flipc_core::inspect::TransportSnapshot> {
        self.transport.snapshot()
    }

    /// The node this engine serves.
    pub fn node(&self) -> flipc_core::endpoint::FlipcNodeId {
        self.transport.local_node()
    }

    /// Runs one bounded event-loop iteration; returns the number of
    /// messages moved (sent + delivered + discarded). Zero means idle.
    pub fn iterate(&mut self) -> u32 {
        EngineStats::bump(&self.stats.iterations);
        self.shaper.tick();
        let mut work = 0;
        work += self.pump_incoming();
        work += self.pump_outgoing();
        // Telemetry rides the loop's tail: one wait-free histogram record
        // of how much this pass moved (the engine's occupancy signal), and
        // a trace event for any reliability-layer retransmissions the
        // transport performed while we pumped it.
        self.telemetry.record_iteration_work(u64::from(work));
        if let Some(t) = self.trace.as_mut() {
            let rexmit = self.transport.retransmits_since_poll();
            if rexmit > 0 {
                t.event(
                    TraceKind::Retransmit,
                    self.transport.local_node().0,
                    u16::MAX,
                    rexmit,
                );
            }
        }
        work
    }

    // ------------------------------------------------------------------
    // Receive path.
    // ------------------------------------------------------------------

    fn pump_incoming(&mut self) -> u32 {
        let mut done = 0;
        while done < self.cfg.incoming_budget {
            let Some(frame) = self.transport.try_recv() else {
                break;
            };
            self.deliver(frame);
            done += 1;
        }
        done
    }

    fn deliver(&mut self, frame: Frame) {
        let local = self.transport.local_node();
        // Route to the protection domain owning the destination index.
        let Some(dom) = self
            .domains
            .iter()
            .position(|d| d.contains_global(frame.dst.index().0))
        else {
            // No domain owns the index: misaddressed at node scope; count
            // it on the first domain's buffer so applications can observe
            // it (there is always at least one domain).
            self.domains[0].cb.misaddressed_engine().increment();
            EngineStats::bump(&self.stats.misaddressed);
            if let Some(t) = self.trace.as_mut() {
                t.event(TraceKind::Misaddressed, local.0, frame.dst.index().0, 0);
            }
            return;
        };
        let domain = &self.domains[dom];
        let cb = &domain.cb;
        let didx = match validate_delivery_at(cb, local, frame.dst, domain.index_base) {
            Ok(i) => i,
            Err(_) => {
                cb.misaddressed_engine().increment();
                EngineStats::bump(&self.stats.misaddressed);
                if let Some(t) = self.trace.as_mut() {
                    t.event(TraceKind::Misaddressed, local.0, frame.dst.index().0, 0);
                }
                return;
            }
        };
        let Ok(q) = cb.engine_queue(didx) else {
            EngineStats::bump(&self.stats.misaddressed);
            return;
        };
        if self.cfg.check_mode == CheckMode::Checked && validate_backlog(&q).is_err() {
            // Corrupted release pointer: treat the endpoint as having no
            // usable buffers; the message is discarded and counted.
            Self::count_drop(&self.stats, &mut self.trace, local.0, cb, didx, &frame);
            EngineStats::bump(&self.stats.check_failures);
            return;
        }
        let Some(buf) = q.peek() else {
            // The defining optimistic-transport move: no receive buffer
            // queued, so the message is discarded and the wait-free drop
            // counter ticks. The application learns via `drops()`.
            Self::count_drop(&self.stats, &mut self.trace, local.0, cb, didx, &frame);
            return;
        };
        if self.cfg.check_mode == CheckMode::Checked && validate_queued_buffer(cb, buf).is_err() {
            // The ring slot held garbage. Skip the slot (bounded: one per
            // arrival) and count both a check failure and a drop.
            q.advance();
            Self::count_drop(&self.stats, &mut self.trace, local.0, cb, didx, &frame);
            EngineStats::bump(&self.stats.check_failures);
            return;
        }
        let n = frame.payload.len().min(cb.payload_size());
        // SAFETY: The engine owns `buf` between `peek` and `advance`; no
        // application thread may access it until the process pointer moves.
        unsafe { cb.payload_write(buf, &frame.payload[..n]) };
        cb.header(buf).store(frame.src, BufferState::Processed);
        q.advance();
        EngineStats::bump(&self.stats.delivered);
        // Send→deliver latency: only frames stamped by an engine whose
        // clock we share (node-local bypass and in-process transports; an
        // off-the-wire decode leaves the stamp 0, because two processes'
        // monotonic clocks are not comparable).
        if frame.stamp_ns != 0 {
            self.telemetry.record_deliver_latency(
                usize::from(frame.dst.index().0),
                flipc_obs::now_ns().saturating_sub(frame.stamp_ns),
            );
        }
        if let Some(t) = self.trace.as_mut() {
            t.event(TraceKind::Deliver, local.0, frame.dst.index().0, n as u32);
        }
        // The `advance` store must be globally visible before the waiter
        // count is read: a blocking receiver raises its count, fences, and
        // re-polls the ring, so with this fence at least one side always
        // sees the other (plain Release/Acquire would let the StoreLoad
        // pair reorder and the wakeup get lost).
        flipc_core::sync::atomic::fence(Ordering::SeqCst);
        // Kernel-wakeup role: only if a thread said it was blocking.
        let waiters = cb.waiters(didx).unwrap_or(0);
        if waiters > 0 {
            domain.registry.wake(didx);
            if let Some(t) = self.trace.as_mut() {
                t.event(TraceKind::Wakeup, local.0, frame.dst.index().0, waiters);
            }
        }
    }

    fn count_drop(
        stats: &EngineStats,
        trace: &mut Option<TraceWriter>,
        node: u16,
        cb: &CommBuffer,
        ep: EndpointIndex,
        frame: &Frame,
    ) {
        if let Ok(c) = cb.drops_engine(ep) {
            c.increment();
        }
        EngineStats::bump(&stats.dropped_no_buffer);
        if let Some(t) = trace.as_mut() {
            t.event(
                TraceKind::Drop,
                node,
                frame.dst.index().0,
                frame.payload.len() as u32,
            );
        }
    }

    // ------------------------------------------------------------------
    // Send path.
    // ------------------------------------------------------------------

    fn pump_outgoing(&mut self) -> u32 {
        let n: u16 = self.domains.iter().map(Domain::endpoints).sum();
        let mut budget = self.cfg.outgoing_budget;
        let mut done = 0;
        // Importance classes high to low across ALL domains; rotate the
        // start within a class so equal-importance endpoints share service
        // fairly.
        let mut last_served: Option<u16> = None;
        for importance in [Importance::High, Importance::Normal, Importance::Low] {
            for step in 0..n {
                if budget == 0 {
                    break;
                }
                let flat = (self.scan_cursor + step) % n;
                let Some((dom, idx)) = self.flat_to_domain(flat) else {
                    continue;
                };
                if !self.endpoint_sendable(dom, idx, importance) {
                    continue;
                }
                let moved = self.drain_send_endpoint(dom, idx, &mut budget);
                if moved > 0 {
                    last_served = Some(flat);
                }
                done += moved;
            }
        }
        // True round-robin: the next pass starts just after the endpoint
        // that transmitted last, so equal-importance endpoints share
        // service even under a tight budget.
        self.scan_cursor = match last_served {
            Some(flat) => (flat + 1) % n,
            None => (self.scan_cursor + 1) % n,
        };
        // End of the drain pass: the batch boundary. A coalescing
        // transport transmits everything staged above; eager transports
        // no-op.
        self.transport.flush();
        done
    }

    /// Maps a flat scan position onto (domain, local endpoint index).
    fn flat_to_domain(&self, flat: u16) -> Option<(usize, EndpointIndex)> {
        let mut rest = flat;
        for (d, dom) in self.domains.iter().enumerate() {
            let n = dom.endpoints();
            if rest < n {
                return Some((d, EndpointIndex(rest)));
            }
            rest -= n;
        }
        None
    }

    fn endpoint_sendable(&self, dom: usize, idx: EndpointIndex, importance: Importance) -> bool {
        let cb = &self.domains[dom].cb;
        match (
            cb.endpoint_gen_active(idx),
            cb.endpoint_type(idx),
            cb.endpoint_importance(idx),
        ) {
            (Ok((_, true)), Ok(EndpointType::Send), Ok(imp)) => imp == importance,
            _ => false,
        }
    }

    /// Transmits queued messages from one endpoint until it drains, the
    /// per-endpoint batch cap (`max_batch`) is reached, the budget runs
    /// out, or the wire backpressures. The frames collected here form one
    /// batch from the transport's point of view: it may stage them and
    /// coalesce on the end-of-pass [`Transport::flush`].
    fn drain_send_endpoint(&mut self, dom: usize, idx: EndpointIndex, budget: &mut u32) -> u32 {
        let max_batch = self.cfg.max_batch.max(1);
        let mut done = 0;
        while *budget > 0 && done < max_batch {
            let cb = self.domains[dom].cb.clone();
            let index_base = self.domains[dom].index_base;
            let Ok(q) = cb.engine_queue(idx) else { break };
            if self.cfg.check_mode == CheckMode::Checked && validate_backlog(&q).is_err() {
                // Corrupted queue: skip the endpoint entirely this pass.
                EngineStats::bump(&self.stats.check_failures);
                break;
            }
            let Some(buf) = q.peek() else { break };
            if self.cfg.check_mode == CheckMode::Checked
                && validate_queued_buffer(&cb, buf).is_err()
            {
                q.advance();
                EngineStats::bump(&self.stats.check_failures);
                *budget -= 1;
                continue;
            }
            let global_idx = index_base + idx.0;
            // Capacity control: if this endpoint's token bucket cannot
            // cover the message, leave it queued and move on.
            if !self.shaper.admit(global_idx, cb.payload_size() as u64) {
                break;
            }
            let (dest, _) = cb.header(buf).load();
            let Ok((gen, _)) = cb.endpoint_gen_active(idx) else {
                break;
            };

            // Protection: an untrusting-domain configuration restricts
            // where this buffer's messages may go. Denied messages are
            // discarded (the buffer completes so the application can
            // reclaim it) and counted on the send endpoint's drop counter.
            if !self.domains[dom].may_send_to(dest.node()) {
                cb.header(buf).set_state(BufferState::Processed);
                q.advance();
                if let Ok(c) = cb.drops_engine(idx) {
                    c.increment();
                }
                EngineStats::bump(&self.stats.denied);
                *budget -= 1;
                continue;
            }

            // Peer lifecycle: a destination declared dead by the failure
            // detector fails fast instead of black-holing. The buffer
            // completes (the application reclaims it), the loss lands on
            // the endpoint's drop counter, and the transport spends no
            // datagram. The peer's return re-admits it automatically.
            if dest.node() != self.transport.local_node() && self.transport.peer_down(dest.node()) {
                cb.header(buf).set_state(BufferState::Processed);
                q.advance();
                if let Ok(c) = cb.drops_engine(idx) {
                    c.increment();
                }
                EngineStats::bump(&self.stats.peer_down);
                *budget -= 1;
                continue;
            }

            let src =
                EndpointAddress::new(self.transport.local_node(), EndpointIndex(global_idx), gen);
            let mut payload = vec![0u8; cb.payload_size()].into_boxed_slice();
            // SAFETY: The engine owns `buf` between `peek` and `advance`.
            unsafe { cb.payload_read(buf, &mut payload) };
            let frame = Frame {
                src,
                dst: dest,
                payload,
                // Stamped at transmit: the delivery path (here for the
                // node-local bypass, a peer engine sharing our clock for
                // in-process transports) turns this into a send→deliver
                // latency sample.
                stamp_ns: flipc_obs::now_ns(),
            };

            if dest.node() == self.transport.local_node() {
                // Node-local delivery bypasses the interconnect (possibly
                // into another domain on this node). Mark the send
                // complete first (releasing the queue view, since
                // `deliver` needs `&mut self`), then deliver.
                cb.header(buf).set_state(BufferState::Processed);
                q.advance();
                self.deliver(frame);
            } else {
                if !self.transport.try_send(dest.node(), &frame) {
                    // Wire full: leave the buffer queued (do NOT advance)
                    // and retry on a later iteration. Bounded: we stop
                    // this endpoint now.
                    break;
                }
                cb.header(buf).set_state(BufferState::Processed);
                q.advance();
            }
            EngineStats::bump(&self.stats.sent);
            if let Some(t) = self.trace.as_mut() {
                t.event(
                    TraceKind::Send,
                    self.transport.local_node().0,
                    global_idx,
                    cb.payload_size() as u32,
                );
            }
            *budget -= 1;
            done += 1;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::fabric;
    use flipc_core::api::Flipc;
    use flipc_core::endpoint::FlipcNodeId;
    use flipc_core::layout::Geometry;

    struct World {
        flipc: Vec<Flipc>,
        engines: Vec<Engine>,
    }

    fn world(n: usize) -> World {
        world_with(n, EngineConfig::default(), Geometry::small())
    }

    fn world_with(n: usize, cfg: EngineConfig, geo: Geometry) -> World {
        let ports = fabric(n, 64);
        let mut flipc = Vec::new();
        let mut engines = Vec::new();
        for (i, port) in ports.into_iter().enumerate() {
            let cb = Arc::new(CommBuffer::new(geo).unwrap());
            let registry = WaitRegistry::new();
            flipc.push(Flipc::attach(
                cb.clone(),
                FlipcNodeId(i as u16),
                registry.clone(),
            ));
            engines.push(Engine::new(cb, Box::new(port), registry, cfg));
        }
        World { flipc, engines }
    }

    impl World {
        fn pump(&mut self) {
            // A few sweeps so sends on node A arrive at node B within one
            // call even with local+remote hops.
            for _ in 0..4 {
                for e in &mut self.engines {
                    e.iterate();
                }
            }
        }
    }

    fn send_bytes(
        f: &Flipc,
        ep: &flipc_core::api::LocalEndpoint,
        dest: EndpointAddress,
        data: &[u8],
    ) {
        let mut t = f.buffer_allocate().unwrap();
        f.payload_mut(&mut t)[..data.len()].copy_from_slice(data);
        f.send(ep, t, dest).unwrap();
    }

    #[test]
    fn end_to_end_delivery_between_nodes() {
        let mut w = world(2);
        let tx = w.flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = w.flipc[1]
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = w.flipc[1].address(&rx);
        let buf = w.flipc[1].buffer_allocate().unwrap();
        w.flipc[1]
            .provide_receive_buffer(&rx, buf)
            .map_err(|r| r.error)
            .unwrap();

        send_bytes(&w.flipc[0], &tx, dest, b"hello paragon");
        w.pump();

        let got = w.flipc[1].recv(&rx).unwrap().unwrap();
        assert_eq!(&w.flipc[1].payload(&got.token)[..13], b"hello paragon");
        assert_eq!(got.from.node(), FlipcNodeId(0));
        // Sender can reclaim its buffer (step 5).
        let back = w.flipc[0].reclaim_send(&tx).unwrap();
        assert!(back.is_some());
    }

    #[test]
    fn node_local_delivery_bypasses_the_wire() {
        let mut w = world(1);
        let f = &w.flipc[0];
        let tx = f
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = f
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = f.address(&rx);
        let b = f.buffer_allocate().unwrap();
        f.provide_receive_buffer(&rx, b)
            .map_err(|r| r.error)
            .unwrap();
        send_bytes(f, &tx, dest, b"local");
        w.engines[0].iterate();
        let got = w.flipc[0].recv(&rx).unwrap().unwrap();
        assert_eq!(&w.flipc[0].payload(&got.token)[..5], b"local");
    }

    #[test]
    fn ordering_is_preserved_per_endpoint_pair() {
        let mut w = world(2);
        let tx = w.flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = w.flipc[1]
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = w.flipc[1].address(&rx);
        for _ in 0..16 {
            let b = w.flipc[1].buffer_allocate().unwrap();
            w.flipc[1]
                .provide_receive_buffer(&rx, b)
                .map_err(|r| r.error)
                .unwrap();
        }
        for i in 0..10u8 {
            send_bytes(&w.flipc[0], &tx, dest, &[i]);
            // Reclaim as we go so the send ring never fills.
            let _ = w.flipc[0].reclaim_send(&tx);
            w.pump();
        }
        for i in 0..10u8 {
            let got = w.flipc[1].recv(&rx).unwrap().unwrap();
            assert_eq!(w.flipc[1].payload(&got.token)[0], i, "out of order");
        }
    }

    #[test]
    fn no_receive_buffer_discards_and_counts() {
        let mut w = world(2);
        let tx = w.flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = w.flipc[1]
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = w.flipc[1].address(&rx);
        for i in 0..5u8 {
            send_bytes(&w.flipc[0], &tx, dest, &[i]);
        }
        w.pump();
        assert_eq!(w.flipc[1].drops_reset(&rx).unwrap(), 5);
        assert!(w.flipc[1].recv(&rx).unwrap().is_none());
        // The sender's buffers still complete: optimistic send never blocks
        // on the receiver.
        let mut reclaimed = 0;
        while w.flipc[0].reclaim_send(&tx).unwrap().is_some() {
            reclaimed += 1;
        }
        assert_eq!(reclaimed, 5);
    }

    #[test]
    fn stale_address_is_misaddressed_not_delivered() {
        let mut w = world(2);
        let tx = w.flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = w.flipc[1]
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let stale = w.flipc[1].address(&rx);
        // Free and reallocate the endpoint: the old address's generation is
        // now stale.
        w.flipc[1].endpoint_free(rx).unwrap();
        let rx2 = w.flipc[1]
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let b = w.flipc[1].buffer_allocate().unwrap();
        w.flipc[1]
            .provide_receive_buffer(&rx2, b)
            .map_err(|r| r.error)
            .unwrap();

        send_bytes(&w.flipc[0], &tx, stale, b"ghost");
        w.pump();
        assert!(
            w.flipc[1].recv(&rx2).unwrap().is_none(),
            "stale traffic must not leak"
        );
        assert_eq!(w.flipc[1].misaddressed_reset(), 1);
        assert_eq!(w.engines[1].stats().misaddressed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn high_importance_sends_first() {
        // Queue on a low-importance endpoint first, then a high one; with a
        // tiny outgoing budget the high-importance message must still win.
        let cfg = EngineConfig {
            outgoing_budget: 1,
            ..Default::default()
        };
        let mut w = world_with(2, cfg, Geometry::small());
        let lo = w.flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Low)
            .unwrap();
        let hi = w.flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::High)
            .unwrap();
        let rx = w.flipc[1]
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = w.flipc[1].address(&rx);
        for _ in 0..4 {
            let b = w.flipc[1].buffer_allocate().unwrap();
            w.flipc[1]
                .provide_receive_buffer(&rx, b)
                .map_err(|r| r.error)
                .unwrap();
        }
        send_bytes(&w.flipc[0], &lo, dest, b"maintenance");
        send_bytes(&w.flipc[0], &hi, dest, b"missile!");
        // One outgoing slot this iteration: the high-importance endpoint
        // gets it despite being queued later.
        w.engines[0].iterate();
        w.engines[1].iterate();
        let first = w.flipc[1].recv(&rx).unwrap().unwrap();
        assert_eq!(&w.flipc[1].payload(&first.token)[..8], b"missile!");
    }

    #[test]
    fn wire_backpressure_retries_without_loss() {
        // Wire depth 2, but 6 messages queued: the engine must deliver all
        // of them across iterations without losing or reordering any.
        let ports = fabric(2, 2);
        let geo = Geometry::small();
        let mut flipc = Vec::new();
        let mut engines = Vec::new();
        for (i, port) in ports.into_iter().enumerate() {
            let cb = Arc::new(CommBuffer::new(geo).unwrap());
            let registry = WaitRegistry::new();
            flipc.push(Flipc::attach(
                cb.clone(),
                FlipcNodeId(i as u16),
                registry.clone(),
            ));
            engines.push(Engine::new(
                cb,
                Box::new(port),
                registry,
                EngineConfig::default(),
            ));
        }
        let tx = flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = flipc[1]
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = flipc[1].address(&rx);
        for _ in 0..8 {
            let b = flipc[1].buffer_allocate().unwrap();
            flipc[1]
                .provide_receive_buffer(&rx, b)
                .map_err(|r| r.error)
                .unwrap();
        }
        for i in 0..6u8 {
            let mut t = flipc[0].buffer_allocate().unwrap();
            flipc[0].payload_mut(&mut t)[0] = i;
            flipc[0].send(&tx, t, dest).unwrap();
        }
        for _ in 0..10 {
            engines[0].iterate();
            engines[1].iterate();
        }
        for i in 0..6u8 {
            let got = flipc[1].recv(&rx).unwrap().unwrap();
            assert_eq!(flipc[1].payload(&got.token)[0], i);
        }
        assert_eq!(flipc[1].drops_reset(&rx).unwrap(), 0);
    }

    #[test]
    fn corrupted_ring_slot_cannot_stall_the_engine() {
        let mut w = world(2);
        let f = &w.flipc[0];
        let tx = f
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        // Errant application: scribble an out-of-range buffer index into
        // the ring and bump release by smashing raw words.
        let lay = f.commbuf().layout();
        let slot_off = lay.ring_slot(tx.index().0, 0);
        f.commbuf()
            .raw_word(slot_off)
            .store(0xFFFF_FFFF, Ordering::Relaxed);
        let rel_off = lay.endpoint(tx.index().0) + flipc_core::layout::EP_RELEASE;
        f.commbuf().raw_word(rel_off).store(1, Ordering::Relaxed);

        // The engine must complete its iteration, flag the check failure,
        // and keep serving other traffic.
        let stats = w.engines[0].stats();
        w.engines[0].iterate();
        assert!(stats.check_failures.load(Ordering::Relaxed) >= 1);

        // Other endpoints still work end to end.
        let tx2 = w.flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = w.flipc[1]
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = w.flipc[1].address(&rx);
        let b = w.flipc[1].buffer_allocate().unwrap();
        w.flipc[1]
            .provide_receive_buffer(&rx, b)
            .map_err(|r| r.error)
            .unwrap();
        send_bytes(&w.flipc[0], &tx2, dest, b"alive");
        w.pump();
        assert!(w.flipc[1].recv(&rx).unwrap().unwrap().token.index() < 64);
    }

    #[test]
    fn iteration_work_is_bounded_by_budget() {
        let cfg = EngineConfig {
            incoming_budget: 4,
            outgoing_budget: 4,
            ..Default::default()
        };
        let mut w = world_with(
            2,
            cfg,
            Geometry {
                ring_capacity: 32,
                ..Geometry::small()
            },
        );
        let tx = w.flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = w.flipc[1]
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = w.flipc[1].address(&rx);
        for i in 0..20u8 {
            send_bytes(&w.flipc[0], &tx, dest, &[i]);
        }
        // One iteration can move at most outgoing_budget messages.
        let moved = w.engines[0].iterate();
        assert!(moved <= 4, "engine exceeded its bounded work ({moved})");
        assert_eq!(w.engines[0].stats().sent.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn blocking_receiver_is_woken_by_engine() {
        let mut w = world(2);
        let tx = w.flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = w.flipc[1]
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = w.flipc[1].address(&rx);
        let b = w.flipc[1].buffer_allocate().unwrap();
        w.flipc[1]
            .provide_receive_buffer(&rx, b)
            .map_err(|r| r.error)
            .unwrap();

        // Run the receiving app on another thread; pump engines here.
        let replacement = Flipc::attach(
            w.flipc[1].commbuf().clone(),
            FlipcNodeId(1),
            w.flipc[1].registry().clone(),
        );
        let f1 = std::mem::replace(&mut w.flipc[1], replacement);
        let waiter = std::thread::spawn(move || {
            let got = f1
                .recv_blocking(&rx, std::time::Duration::from_secs(10))
                .unwrap();
            f1.payload(&got.token)[0]
        });
        while w.flipc[1].commbuf().waiters(EndpointIndex(0)).unwrap() == 0 {
            std::thread::yield_now();
        }
        send_bytes(&w.flipc[0], &tx, dest, &[42]);
        w.pump();
        assert_eq!(waiter.join().unwrap(), 42);
    }
}

#[cfg(test)]
mod shaping_tests {
    use super::*;
    use crate::loopback::fabric;
    use flipc_core::api::Flipc;
    use flipc_core::endpoint::FlipcNodeId;
    use flipc_core::layout::Geometry;

    /// Capacity control (Future Work item 4): a rate-limited endpoint's
    /// throughput is capped while an unlimited endpoint on the same node
    /// flows freely, and no limited message is ever dropped — it just
    /// waits.
    #[test]
    fn rate_limited_endpoint_is_throttled_not_dropped() {
        let geo = Geometry {
            ring_capacity: 32,
            buffers: 128,
            ..Geometry::small()
        };
        let ports = fabric(2, 256);
        let mut flipc = Vec::new();
        let mut engines = Vec::new();
        for (i, port) in ports.into_iter().enumerate() {
            let cb = Arc::new(CommBuffer::new(geo).unwrap());
            let registry = WaitRegistry::new();
            flipc.push(Flipc::attach(
                cb.clone(),
                FlipcNodeId(i as u16),
                registry.clone(),
            ));
            engines.push(Engine::new(
                cb,
                Box::new(port),
                registry,
                EngineConfig::default(),
            ));
        }
        let limited = flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let free = flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = flipc[1]
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = flipc[1].address(&rx);
        for _ in 0..32 {
            let b = flipc[1].buffer_allocate().unwrap();
            flipc[1]
                .provide_receive_buffer(&rx, b)
                .map_err(|r| r.error)
                .unwrap();
        }
        // One 120-byte payload per iteration for the limited endpoint.
        let payload = flipc[0].payload_size() as u64;
        engines[0].set_rate_limit(limited.index(), payload, payload);

        for i in 0..8u8 {
            let mut t = flipc[0].buffer_allocate().unwrap();
            flipc[0].payload_mut(&mut t)[0] = i;
            flipc[0].send(&limited, t, dest).unwrap();
            let mut t = flipc[0].buffer_allocate().unwrap();
            flipc[0].payload_mut(&mut t)[0] = 100 + i;
            flipc[0].send(&free, t, dest).unwrap();
        }
        // One iteration: the free endpoint drains entirely; the limited
        // one sends exactly one message (its per-iteration budget).
        engines[0].iterate();
        engines[1].iterate();
        let mut limited_got = 0;
        let mut free_got = 0;
        while let Some(r) = flipc[1].recv(&rx).unwrap() {
            if flipc[1].payload(&r.token)[0] >= 100 {
                free_got += 1;
            } else {
                limited_got += 1;
            }
        }
        assert_eq!(free_got, 8, "unlimited endpoint must drain in one pass");
        assert_eq!(
            limited_got, 1,
            "limited endpoint gets one message per iteration"
        );

        // The rest arrive over subsequent iterations — throttled, never
        // dropped.
        for _ in 0..10 {
            engines[0].iterate();
            engines[1].iterate();
        }
        while let Some(r) = flipc[1].recv(&rx).unwrap() {
            assert!(flipc[1].payload(&r.token)[0] < 100);
            limited_got += 1;
        }
        assert_eq!(limited_got, 8);
        assert_eq!(flipc[1].drops_reset(&rx).unwrap(), 0);
    }

    /// Clearing a limit restores full-speed service.
    #[test]
    fn clear_rate_limit_restores_throughput() {
        let geo = Geometry {
            ring_capacity: 32,
            buffers: 128,
            ..Geometry::small()
        };
        let ports = fabric(2, 256);
        let mut flipc = Vec::new();
        let mut engines = Vec::new();
        for (i, port) in ports.into_iter().enumerate() {
            let cb = Arc::new(CommBuffer::new(geo).unwrap());
            let registry = WaitRegistry::new();
            flipc.push(Flipc::attach(
                cb.clone(),
                FlipcNodeId(i as u16),
                registry.clone(),
            ));
            engines.push(Engine::new(
                cb,
                Box::new(port),
                registry,
                EngineConfig::default(),
            ));
        }
        let tx = flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = flipc[1]
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = flipc[1].address(&rx);
        for _ in 0..16 {
            let b = flipc[1].buffer_allocate().unwrap();
            flipc[1]
                .provide_receive_buffer(&rx, b)
                .map_err(|r| r.error)
                .unwrap();
        }
        engines[0].set_rate_limit(tx.index(), 0, 0); // fully blocked
        for _ in 0..4 {
            let t = flipc[0].buffer_allocate().unwrap();
            flipc[0].send(&tx, t, dest).unwrap();
        }
        for _ in 0..5 {
            engines[0].iterate();
            engines[1].iterate();
        }
        assert!(
            flipc[1].recv(&rx).unwrap().is_none(),
            "blocked endpoint leaked"
        );
        engines[0].clear_rate_limit(tx.index());
        for _ in 0..3 {
            engines[0].iterate();
            engines[1].iterate();
        }
        let mut got = 0;
        while flipc[1].recv(&rx).unwrap().is_some() {
            got += 1;
        }
        assert_eq!(got, 4);
    }
}

#[cfg(test)]
mod fairness_tests {
    use super::*;
    use crate::loopback::fabric;
    use flipc_core::api::Flipc;
    use flipc_core::endpoint::FlipcNodeId;
    use flipc_core::layout::Geometry;

    /// Equal-importance endpoints share service round-robin: with a
    /// one-message budget per iteration, busy endpoints alternate rather
    /// than one draining completely first.
    #[test]
    fn equal_importance_endpoints_share_service() {
        let geo = Geometry {
            ring_capacity: 32,
            buffers: 128,
            ..Geometry::small()
        };
        let ports = fabric(2, 256);
        let mut flipc = Vec::new();
        let mut engines = Vec::new();
        let cfg = EngineConfig {
            outgoing_budget: 1,
            ..Default::default()
        };
        for (i, port) in ports.into_iter().enumerate() {
            let cb = Arc::new(CommBuffer::new(geo).unwrap());
            let registry = WaitRegistry::new();
            flipc.push(Flipc::attach(
                cb.clone(),
                FlipcNodeId(i as u16),
                registry.clone(),
            ));
            engines.push(Engine::new(cb, Box::new(port), registry, cfg));
        }
        let ep_a = flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let ep_b = flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = flipc[1]
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = flipc[1].address(&rx);
        for _ in 0..16 {
            let b = flipc[1].buffer_allocate().unwrap();
            flipc[1]
                .provide_receive_buffer(&rx, b)
                .map_err(|r| r.error)
                .unwrap();
        }
        for i in 0..4u8 {
            for (tag, ep) in [(b'a', &ep_a), (b'b', &ep_b)] {
                let mut t = flipc[0].buffer_allocate().unwrap();
                flipc[0].payload_mut(&mut t)[0] = tag;
                flipc[0].payload_mut(&mut t)[1] = i;
                flipc[0].send(ep, t, dest).unwrap();
            }
        }
        // Eight iterations at one message each: arrivals must alternate
        // a/b rather than aaaa bbbb.
        let mut order = Vec::new();
        for _ in 0..8 {
            engines[0].iterate();
            engines[1].iterate();
            while let Some(r) = flipc[1].recv(&rx).unwrap() {
                order.push(flipc[1].payload(&r.token)[0]);
            }
        }
        assert_eq!(order.len(), 8);
        let max_consecutive = order
            .windows(2)
            .fold((1u32, 1u32), |(max, cur), w| {
                if w[0] == w[1] {
                    (max.max(cur + 1), cur + 1)
                } else {
                    (max, 1)
                }
            })
            .0;
        assert!(
            max_consecutive <= 2,
            "service not shared: arrival order {:?}",
            order.iter().map(|&c| c as char).collect::<String>()
        );
    }
}

#[cfg(test)]
mod lifecycle_tests {
    use super::*;
    use crate::loopback::fabric;
    use flipc_core::api::Flipc;
    use flipc_core::endpoint::FlipcNodeId;
    use flipc_core::layout::Geometry;

    fn pair() -> (Vec<Flipc>, Vec<Engine>) {
        let ports = fabric(2, 64);
        let mut flipc = Vec::new();
        let mut engines = Vec::new();
        for (i, port) in ports.into_iter().enumerate() {
            let cb = Arc::new(CommBuffer::new(Geometry::small()).unwrap());
            let registry = WaitRegistry::new();
            flipc.push(Flipc::attach(
                cb.clone(),
                FlipcNodeId(i as u16),
                registry.clone(),
            ));
            engines.push(Engine::new(
                cb,
                Box::new(port),
                registry,
                EngineConfig::default(),
            ));
        }
        (flipc, engines)
    }

    /// An endpoint freed after its queue drains is skipped by subsequent
    /// scans, and a reallocated slot starts clean for the next tenant.
    #[test]
    fn freed_endpoint_is_skipped_and_slot_reuse_is_clean() {
        let (flipc, mut engines) = pair();
        let tx = flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = flipc[1]
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = flipc[1].address(&rx);
        let b = flipc[1].buffer_allocate().unwrap();
        flipc[1]
            .provide_receive_buffer(&rx, b)
            .map_err(|r| r.error)
            .unwrap();

        let mut t = flipc[0].buffer_allocate().unwrap();
        flipc[0].payload_mut(&mut t)[0] = 1;
        flipc[0].send(&tx, t, dest).unwrap();
        for _ in 0..6 {
            engines[0].iterate();
            engines[1].iterate();
        }
        assert!(flipc[1].recv(&rx).unwrap().is_some());
        // Drain and free the send endpoint.
        let back = flipc[0].reclaim_send(&tx).unwrap().unwrap();
        flipc[0].buffer_free(back);
        let old_idx = tx.index();
        flipc[0].endpoint_free(tx).unwrap();

        // Engine keeps iterating without touching the freed slot.
        let sent_before = engines[0].stats().sent.load(Ordering::Relaxed);
        for _ in 0..4 {
            engines[0].iterate();
        }
        assert_eq!(engines[0].stats().sent.load(Ordering::Relaxed), sent_before);

        // The slot's next tenant works immediately, with a new generation.
        let tx2 = flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        assert_eq!(tx2.index(), old_idx, "first-fit reuse expected");
        let b = flipc[1].buffer_allocate().unwrap();
        flipc[1]
            .provide_receive_buffer(&rx, b)
            .map_err(|r| r.error)
            .unwrap();
        let mut t = flipc[0].buffer_allocate().unwrap();
        flipc[0].payload_mut(&mut t)[0] = 2;
        flipc[0].send(&tx2, t, dest).unwrap();
        for _ in 0..6 {
            engines[0].iterate();
            engines[1].iterate();
        }
        let got = flipc[1].recv(&rx).unwrap().unwrap();
        assert_eq!(flipc[1].payload(&got.token)[0], 2);
        assert_eq!(got.from.index(), old_idx);
    }

    /// Zero engine budgets are legal (fully starved engine): nothing moves
    /// and nothing panics; restoring budgets resumes service.
    #[test]
    fn zero_budget_engine_is_inert_but_sound() {
        let ports = fabric(2, 64);
        let cfg = EngineConfig {
            incoming_budget: 0,
            outgoing_budget: 0,
            ..Default::default()
        };
        let mut flipc = Vec::new();
        let mut engines = Vec::new();
        for (i, port) in ports.into_iter().enumerate() {
            let cb = Arc::new(CommBuffer::new(Geometry::small()).unwrap());
            let registry = WaitRegistry::new();
            flipc.push(Flipc::attach(
                cb.clone(),
                FlipcNodeId(i as u16),
                registry.clone(),
            ));
            engines.push(Engine::new(cb, Box::new(port), registry, cfg));
        }
        let tx = flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = flipc[1]
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = flipc[1].address(&rx);
        let b = flipc[1].buffer_allocate().unwrap();
        flipc[1]
            .provide_receive_buffer(&rx, b)
            .map_err(|r| r.error)
            .unwrap();
        let t = flipc[0].buffer_allocate().unwrap();
        flipc[0].send(&tx, t, dest).unwrap();
        for _ in 0..10 {
            assert_eq!(engines[0].iterate(), 0);
            assert_eq!(engines[1].iterate(), 0);
        }
        assert!(flipc[1].recv(&rx).unwrap().is_none());
    }

    /// A transport whose failure detector reports one node dead. Sends to
    /// it must fail fast onto the endpoint's drop counter — buffer
    /// completed, `peer_down` stat bumped, no frame handed to the wire —
    /// while other destinations keep flowing.
    #[test]
    fn sends_to_a_dead_peer_fail_onto_the_drop_counter() {
        struct DeadPeerPort {
            inner: Box<dyn Transport>,
            dead: FlipcNodeId,
        }
        impl Transport for DeadPeerPort {
            fn try_send(&mut self, dst: FlipcNodeId, frame: &Frame) -> bool {
                self.inner.try_send(dst, frame)
            }
            fn try_recv(&mut self) -> Option<Frame> {
                self.inner.try_recv()
            }
            fn local_node(&self) -> FlipcNodeId {
                self.inner.local_node()
            }
            fn peer_down(&self, dst: FlipcNodeId) -> bool {
                dst == self.dead
            }
        }

        let mut ports = fabric(3, 64).into_iter();
        let cb = Arc::new(CommBuffer::new(Geometry::small()).unwrap());
        let registry = WaitRegistry::new();
        let flipc = Flipc::attach(cb.clone(), FlipcNodeId(0), registry.clone());
        let mut engine = Engine::new(
            cb,
            Box::new(DeadPeerPort {
                inner: Box::new(ports.next().unwrap()),
                dead: FlipcNodeId(2),
            }),
            registry,
            EngineConfig::default(),
        );

        let tx = flipc
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let to_dead = EndpointAddress::new(FlipcNodeId(2), EndpointIndex(0), 1);
        let to_live = EndpointAddress::new(FlipcNodeId(1), EndpointIndex(0), 1);
        let t = flipc.buffer_allocate().unwrap();
        flipc.send(&tx, t, to_dead).unwrap();
        let t = flipc.buffer_allocate().unwrap();
        flipc.send(&tx, t, to_live).unwrap();
        for _ in 0..4 {
            engine.iterate();
        }

        let stats = engine.stats();
        assert_eq!(stats.peer_down.load(Ordering::Relaxed), 1);
        assert_eq!(
            stats.sent.load(Ordering::Relaxed),
            1,
            "only the live-destination frame reached the wire"
        );
        assert_eq!(
            flipc.drops_reset(&tx).unwrap(),
            1,
            "the failed send lands on the endpoint's drop counter"
        );
        // Both buffers completed: the application reclaims them.
        assert!(flipc.reclaim_send(&tx).unwrap().is_some());
        assert!(flipc.reclaim_send(&tx).unwrap().is_some());
    }

    /// `max_batch` caps how many frames one endpoint may transmit per
    /// drain pass, independent of the (larger) global outgoing budget.
    #[test]
    fn max_batch_bounds_one_endpoints_drain_per_pass() {
        let cfg = EngineConfig {
            max_batch: 2,
            outgoing_budget: 64,
            ..EngineConfig::default()
        };
        let mut ports = fabric(2, 64).into_iter();
        let cb = Arc::new(CommBuffer::new(Geometry::small()).unwrap());
        let registry = WaitRegistry::new();
        let flipc = Flipc::attach(cb.clone(), FlipcNodeId(0), registry.clone());
        let mut engine = Engine::new(cb, Box::new(ports.next().unwrap()), registry, cfg);
        let tx = flipc
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let dest = EndpointAddress::new(FlipcNodeId(1), EndpointIndex(0), 1);
        for _ in 0..5 {
            let t = flipc.buffer_allocate().unwrap();
            flipc.send(&tx, t, dest).unwrap();
        }
        let sent = |engine: &Engine| engine.stats().sent.load(Ordering::Relaxed);
        engine.iterate();
        assert_eq!(sent(&engine), 2, "first pass capped at max_batch");
        engine.iterate();
        assert_eq!(sent(&engine), 4, "second pass takes the next batch");
        engine.iterate();
        assert_eq!(sent(&engine), 5, "third pass drains the remainder");
    }

    /// Every outgoing drain pass ends with exactly one
    /// [`Transport::flush`] — the batch boundary a coalescing transport
    /// keys on — and the flush comes after the pass's sends.
    #[test]
    fn every_drain_pass_ends_with_one_transport_flush() {
        use flipc_core::sync::atomic::AtomicU32;

        #[derive(Clone, Default)]
        struct Tally {
            sends: Arc<AtomicU32>,
            flushes: Arc<AtomicU32>,
            sends_seen_at_last_flush: Arc<AtomicU32>,
        }
        struct FlushCountingPort {
            inner: Box<dyn Transport>,
            tally: Tally,
        }
        impl Transport for FlushCountingPort {
            fn try_send(&mut self, dst: FlipcNodeId, frame: &Frame) -> bool {
                self.tally.sends.fetch_add(1, Ordering::Relaxed);
                self.inner.try_send(dst, frame)
            }
            fn try_recv(&mut self) -> Option<Frame> {
                self.inner.try_recv()
            }
            fn local_node(&self) -> FlipcNodeId {
                self.inner.local_node()
            }
            fn flush(&mut self) {
                self.tally.flushes.fetch_add(1, Ordering::Relaxed);
                self.tally
                    .sends_seen_at_last_flush
                    .store(self.tally.sends.load(Ordering::Relaxed), Ordering::Relaxed);
                self.inner.flush();
            }
        }

        let tally = Tally::default();
        let mut ports = fabric(2, 64).into_iter();
        let cb = Arc::new(CommBuffer::new(Geometry::small()).unwrap());
        let registry = WaitRegistry::new();
        let flipc = Flipc::attach(cb.clone(), FlipcNodeId(0), registry.clone());
        let mut engine = Engine::new(
            cb,
            Box::new(FlushCountingPort {
                inner: Box::new(ports.next().unwrap()),
                tally: tally.clone(),
            }),
            registry,
            EngineConfig::default(),
        );

        let tx = flipc
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let dest = EndpointAddress::new(FlipcNodeId(1), EndpointIndex(0), 1);
        for _ in 0..3 {
            let t = flipc.buffer_allocate().unwrap();
            flipc.send(&tx, t, dest).unwrap();
        }
        for i in 1..=4u32 {
            engine.iterate();
            assert_eq!(
                tally.flushes.load(Ordering::Relaxed),
                i,
                "one batch boundary per pass, even with nothing to send"
            );
        }
        assert_eq!(tally.sends.load(Ordering::Relaxed), 3);
        assert_eq!(
            tally.sends_seen_at_last_flush.load(Ordering::Relaxed),
            3,
            "the boundary flush trails the pass's sends"
        );
    }
}
