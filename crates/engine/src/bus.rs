//! A shared-bus transport: the SCSI development platform.
//!
//! The paper's prototypes ran on "PC clusters interconnected by ethernet
//! or a SCSI bus" before Paragon time was available, and that portability
//! was a deliberate result: the communication buffer and library are
//! platform independent, only the transport changes. This transport models
//! the host-to-host SCSI arrangement's key property — **one shared medium
//! with arbitration**: only one frame transfers on the bus at a time, and
//! an arbitration policy (round-robin by node id, like SCSI's rotating
//! priorities) decides who transmits next.
//!
//! Implementation: all ports share one mutex-protected bus state holding a
//! single in-flight slot per destination. `try_send` succeeds only for the
//! node currently holding the bus (or when the bus is free and it wins
//! arbitration); delivery frees the bus. The mutex is host plumbing, not
//! protocol — the engines themselves stay wait-free with respect to their
//! applications.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use flipc_core::endpoint::FlipcNodeId;

use crate::transport::Transport;
use crate::wire::Frame;

struct BusState {
    /// Frames in flight on the single medium: at most `bus_depth`.
    in_flight: VecDeque<(FlipcNodeId, Frame)>,
    /// Arbitration cursor: the node id with the current highest claim.
    grant: u16,
    /// Refusals since the last successful transmission; when a full round
    /// of contenders has been refused while the bus was free, the grant
    /// advances (SCSI's fairness extension: the grantee cannot hog a claim
    /// it is not using).
    refusals: u16,
    nodes: u16,
    bus_depth: usize,
    /// Per-node delivered-but-unfetched frames.
    mailboxes: Vec<VecDeque<Frame>>,
}

impl BusState {
    /// Moves in-flight frames into destination mailboxes (the "bus cycle").
    fn settle(&mut self) {
        while let Some((dst, frame)) = self.in_flight.pop_front() {
            if let Some(m) = self.mailboxes.get_mut(dst.0 as usize) {
                m.push_back(frame);
            }
            // Frames to unknown nodes fall off the bus (black-holed).
        }
    }
}

/// One node's attachment to the shared bus.
pub struct BusPort {
    node: FlipcNodeId,
    state: Arc<Mutex<BusState>>,
}

/// Builds a SCSI-style shared bus of `n` nodes with room for `bus_depth`
/// frames in flight (1 models strict SCSI; larger values model a deeper
/// controller FIFO).
pub fn bus_fabric(n: usize, bus_depth: usize) -> Vec<BusPort> {
    assert!(n >= 1 && n <= u16::MAX as usize, "bad node count");
    assert!(bus_depth >= 1, "bus needs at least one slot");
    let state = Arc::new(Mutex::new(BusState {
        in_flight: VecDeque::new(),
        grant: 0,
        refusals: 0,
        nodes: n as u16,
        bus_depth,
        mailboxes: (0..n).map(|_| VecDeque::new()).collect(),
    }));
    (0..n)
        .map(|i| BusPort {
            node: FlipcNodeId(i as u16),
            state: state.clone(),
        })
        .collect()
}

impl Transport for BusPort {
    fn try_send(&mut self, dst: FlipcNodeId, frame: &Frame) -> bool {
        let mut st = self.state.lock().expect("bus poisoned");
        if st.in_flight.len() >= st.bus_depth {
            // Medium busy; lose arbitration this round.
            return false;
        }
        // Arbitration: only the granted node may transmit. The grant
        // rotates after every successful transmission, and also after a
        // full round of refusals on a free bus (so an idle grantee cannot
        // block contenders).
        if st.grant != self.node.0 {
            st.refusals += 1;
            if st.refusals >= st.nodes {
                st.grant = (st.grant + 1) % st.nodes;
                st.refusals = 0;
            }
            return false;
        }
        st.in_flight.push_back((dst, frame.clone()));
        st.grant = (st.grant + 1) % st.nodes;
        st.refusals = 0;
        true
    }

    fn try_recv(&mut self) -> Option<Frame> {
        let mut st = self.state.lock().expect("bus poisoned");
        st.settle();
        st.mailboxes
            .get_mut(self.node.0 as usize)
            .and_then(VecDeque::pop_front)
    }

    fn local_node(&self) -> FlipcNodeId {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipc_core::endpoint::{EndpointAddress, EndpointIndex};

    fn frame(dst: u16, tag: u8) -> Frame {
        Frame {
            src: EndpointAddress::new(FlipcNodeId(0), EndpointIndex(0), 1),
            dst: EndpointAddress::new(FlipcNodeId(dst), EndpointIndex(0), 1),
            payload: vec![tag; 8].into(),
            stamp_ns: 0,
        }
    }

    #[test]
    fn frames_cross_the_bus() {
        let mut ports = bus_fabric(2, 1);
        // Node 0 holds the initial grant.
        assert!(ports[0].try_send(FlipcNodeId(1), &frame(1, 7)));
        assert_eq!(ports[1].try_recv().unwrap().payload[0], 7);
        assert!(ports[1].try_recv().is_none());
    }

    #[test]
    fn one_frame_at_a_time_on_a_strict_bus() {
        let mut ports = bus_fabric(2, 1);
        assert!(ports[0].try_send(FlipcNodeId(1), &frame(1, 1)));
        // Bus occupied until the receiver settles it.
        let (a, b) = ports.split_at_mut(1);
        assert!(!b[0].try_send(FlipcNodeId(0), &frame(0, 2)));
        assert!(!a[0].try_send(FlipcNodeId(1), &frame(1, 3)));
        b[0].try_recv().unwrap();
        // Freed; grant has rotated to node 1 after the refusals.
        assert!(b[0].try_send(FlipcNodeId(0), &frame(0, 2)));
    }

    #[test]
    fn arbitration_rotates_so_nobody_starves() {
        let mut ports = bus_fabric(3, 1);
        let mut sent = [0u32; 3];
        for _round in 0..60 {
            for i in 0..3 {
                let dst = FlipcNodeId(((i + 1) % 3) as u16);
                if ports[i].try_send(dst, &frame(dst.0, i as u8)) {
                    sent[i] += 1;
                }
            }
            // Everyone drains their mailbox (settling the bus).
            for p in ports.iter_mut() {
                while p.try_recv().is_some() {}
            }
        }
        for (i, &s) in sent.iter().enumerate() {
            assert!(s >= 10, "node {i} starved: sent only {s}");
        }
    }

    #[test]
    fn engine_runs_unchanged_over_the_bus() {
        use crate::engine::{Engine, EngineConfig};
        use flipc_core::api::Flipc;
        use flipc_core::commbuf::CommBuffer;
        use flipc_core::endpoint::{EndpointType, Importance};
        use flipc_core::layout::Geometry;
        use flipc_core::wait::WaitRegistry;
        use std::sync::Arc as StdArc;

        let ports = bus_fabric(2, 1);
        let mut flipc = Vec::new();
        let mut engines = Vec::new();
        for (i, port) in ports.into_iter().enumerate() {
            let cb = StdArc::new(CommBuffer::new(Geometry::small()).unwrap());
            let registry = WaitRegistry::new();
            flipc.push(Flipc::attach(
                cb.clone(),
                FlipcNodeId(i as u16),
                registry.clone(),
            ));
            engines.push(Engine::new(
                cb,
                Box::new(port),
                registry,
                EngineConfig::default(),
            ));
        }
        let tx = flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = flipc[1]
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = flipc[1].address(&rx);
        for _ in 0..8 {
            let b = flipc[1].buffer_allocate().unwrap();
            flipc[1]
                .provide_receive_buffer(&rx, b)
                .map_err(|r| r.error)
                .unwrap();
        }
        for i in 0..6u8 {
            let mut t = flipc[0].buffer_allocate().unwrap();
            flipc[0].payload_mut(&mut t)[0] = i;
            flipc[0].send(&tx, t, dest).unwrap();
        }
        // A strict one-slot bus needs several rounds (arbitration refusals
        // included), but everything arrives, in order.
        for _ in 0..40 {
            engines[0].iterate();
            engines[1].iterate();
        }
        for i in 0..6u8 {
            let got = flipc[1].recv(&rx).unwrap().expect("delivery over the bus");
            assert_eq!(flipc[1].payload(&got.token)[0], i);
        }
        assert_eq!(flipc[1].drops_reset(&rx).unwrap(), 0);
    }
}
