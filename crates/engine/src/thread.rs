//! Running the engine on a dedicated "message coprocessor" thread.
//!
//! On Paragon MP3 nodes one of the three i860s is reserved as a message
//! coprocessor; [`spawn_engine`] reproduces that arrangement with an OS
//! thread that runs the engine's bounded event loop continuously, yielding
//! its timeslice when idle (important on machines with fewer cores than the
//! MP3 node had processors).

use flipc_core::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::engine::{Engine, EngineStats};
use flipc_obs::{EngineTelemetry, EngineTelemetrySnapshot, TraceReader};

/// Handle to a running engine thread; stops and joins on drop.
pub struct EngineHandle {
    stop: Arc<AtomicBool>,
    stats: Arc<EngineStats>,
    telemetry: Arc<EngineTelemetry>,
    /// Consumer half of the engine's trace ring, parked here until an
    /// observer claims it (see [`EngineHandle::take_trace_reader`]).
    trace: Option<TraceReader>,
    join: Option<JoinHandle<Engine>>,
}

/// Starts `engine` on its own thread with a trace ring of `capacity`
/// events installed; the consumer half rides the returned handle until an
/// observer takes it.
pub fn spawn_engine_traced(mut engine: Engine, capacity: usize) -> EngineHandle {
    let reader = engine.install_trace(capacity);
    let mut handle = spawn_engine(engine);
    handle.trace = Some(reader);
    handle
}

/// Starts `engine` on its own thread.
pub fn spawn_engine(mut engine: Engine) -> EngineHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stats = engine.stats();
    let telemetry = engine.telemetry();
    let stop2 = stop.clone();
    let join = std::thread::Builder::new()
        .name(format!("flipc-engine-{}", engine.node().0))
        .spawn(move || {
            let mut idle_streak = 0u32;
            while !stop2.load(Ordering::Acquire) {
                let work = engine.iterate();
                if work == 0 {
                    idle_streak += 1;
                    if idle_streak > 16 {
                        // Idle: surrender the core so application threads
                        // (or other engines) can run.
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                } else {
                    idle_streak = 0;
                }
            }
            // Quiesce before exiting: sends are optimistic, so the
            // application may have queued frames the loop has not picked
            // up yet when the stop flag lands. Keep iterating (bounded,
            // in case a peer's acks never arrive) until an iteration
            // finds nothing to do, so stopping the engine cannot strand
            // a queued send in the outbox ring.
            for _ in 0..1024 {
                if engine.iterate() == 0 {
                    break;
                }
            }
            engine
        })
        .expect("failed to spawn engine thread");
    EngineHandle {
        stop,
        stats,
        telemetry,
        trace: None,
        join: Some(join),
    }
}

impl EngineHandle {
    /// Shared statistics of the running engine.
    pub fn stats(&self) -> &Arc<EngineStats> {
        &self.stats
    }

    /// Shared telemetry of the running engine (loads-only histogram
    /// snapshots, readable while the engine runs).
    pub fn telemetry(&self) -> &Arc<EngineTelemetry> {
        &self.telemetry
    }

    /// Harvests (snapshot-and-reset) the engine's telemetry. The caller
    /// becomes the application-role harvester for this interval — run at
    /// most one concurrent harvester per engine, per the two-location
    /// counter discipline.
    pub fn harvest_telemetry(&self) -> EngineTelemetrySnapshot {
        self.telemetry.harvest()
    }

    /// Hands the trace ring's consumer half to the caller (present only
    /// when the engine was started with [`spawn_engine_traced`]; `None`
    /// afterwards or for untraced engines). The reader outlives the
    /// handle, so an observer may keep draining after the engine stops.
    pub fn take_trace_reader(&mut self) -> Option<TraceReader> {
        self.trace.take()
    }

    /// Stops the engine loop and returns the engine (for inspection or
    /// restart).
    pub fn stop(mut self) -> Engine {
        self.stop.store(true, Ordering::Release);
        self.join
            .take()
            .expect("engine already stopped")
            .join()
            .expect("engine thread panicked")
    }
}

impl Drop for EngineHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::loopback::fabric;
    use flipc_core::api::Flipc;
    use flipc_core::commbuf::CommBuffer;
    use flipc_core::endpoint::{EndpointType, FlipcNodeId, Importance};
    use flipc_core::layout::Geometry;
    use flipc_core::wait::WaitRegistry;

    #[test]
    fn threaded_engines_deliver_between_nodes() {
        let ports = fabric(2, 64);
        let mut flipc = Vec::new();
        let mut handles = Vec::new();
        for (i, port) in ports.into_iter().enumerate() {
            let cb = Arc::new(CommBuffer::new(Geometry::small()).unwrap());
            let registry = WaitRegistry::new();
            flipc.push(Flipc::attach(
                cb.clone(),
                FlipcNodeId(i as u16),
                registry.clone(),
            ));
            handles.push(spawn_engine(Engine::new(
                cb,
                Box::new(port),
                registry,
                EngineConfig::default(),
            )));
        }
        let tx = flipc[0]
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = flipc[1]
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = flipc[1].address(&rx);
        let b = flipc[1].buffer_allocate().unwrap();
        flipc[1]
            .provide_receive_buffer(&rx, b)
            .map_err(|r| r.error)
            .unwrap();

        let mut t = flipc[0].buffer_allocate().unwrap();
        flipc[0].payload_mut(&mut t)[..4].copy_from_slice(b"ping");
        flipc[0].send(&tx, t, dest).unwrap();

        // Blocking receive rides the engine's wakeup.
        let got = flipc[1]
            .recv_blocking(&rx, std::time::Duration::from_secs(10))
            .unwrap();
        assert_eq!(&flipc[1].payload(&got.token)[..4], b"ping");

        let h = handles.pop().unwrap();
        let engine = h.stop();
        assert_eq!(engine.stats().delivered.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn handle_drop_stops_cleanly() {
        let ports = fabric(1, 4);
        let cb = Arc::new(CommBuffer::new(Geometry::small()).unwrap());
        let registry = WaitRegistry::new();
        let h = spawn_engine(Engine::new(
            cb,
            Box::new(ports.into_iter().next().unwrap()),
            registry,
            EngineConfig::default(),
        ));
        let stats = h.stats().clone();
        drop(h);
        let after = stats.iterations.load(Ordering::Relaxed);
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(
            stats.iterations.load(Ordering::Relaxed),
            after,
            "engine kept running"
        );
    }
}
