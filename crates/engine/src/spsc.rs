//! A wait-free single-producer / single-consumer ring.
//!
//! This is the "wire" between engines in the in-process loopback transport,
//! built with the same discipline FLIPC imposes on the communication
//! buffer: only atomic loads and stores (no read-modify-write — the
//! consuming side plays the controller that cannot RMW main memory), one
//! writer per location, and head/tail on separate cache lines so producer
//! and consumer never write into each other's line.
//!
//! Single-producer/single-consumer is enforced *statically*: construction
//! returns one [`Producer`] and one [`Consumer`], neither of which is
//! `Clone`.

use flipc_core::sync::atomic::{AtomicU32, Ordering};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::Arc;

/// Pads a value to a cache line to prevent false sharing between the
/// producer-written and consumer-written words.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Inner<T> {
    /// Written only by the consumer.
    head: CachePadded<AtomicU32>,
    /// Written only by the producer.
    tail: CachePadded<AtomicU32>,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: The SPSC protocol guarantees each slot is accessed by exactly one
// side at a time (ownership alternates via the Acquire/Release head/tail
// handshake), so sending the ring between threads is sound for T: Send.
unsafe impl<T: Send> Send for Inner<T> {}
// SAFETY: As above — shared access is mediated entirely by atomics plus the
// alternating-ownership protocol.
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Inner<T> {
    #[inline]
    fn mask(&self) -> u32 {
        self.slots.len() as u32 - 1
    }
}

/// The sending half of a ring.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a ring.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
}

/// Creates a ring holding up to `capacity` items (rounded up to a power of
/// two, minimum 2).
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(Inner {
        head: CachePadded(AtomicU32::new(0)),
        tail: CachePadded(AtomicU32::new(0)),
        slots,
    });
    (
        Producer {
            inner: inner.clone(),
        },
        Consumer { inner },
    )
}

impl<T> Producer<T> {
    /// Attempts to enqueue; hands the value back when the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let inner = &*self.inner;
        let tail = inner.tail.0.load(Ordering::Relaxed);
        let head = inner.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == inner.slots.len() as u32 {
            return Err(value);
        }
        let slot = &inner.slots[(tail & inner.mask()) as usize];
        // SAFETY: `tail - head < capacity`, so this slot is empty and owned
        // by the producer; the consumer will not read it until the Release
        // store below publishes it.
        unsafe { (*slot.get()).write(value) };
        inner.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        let inner = &*self.inner;
        inner
            .tail
            .0
            .load(Ordering::Relaxed)
            .wrapping_sub(inner.head.0.load(Ordering::Acquire)) as usize
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Consumer<T> {
    /// Attempts to dequeue.
    pub fn pop(&mut self) -> Option<T> {
        let inner = &*self.inner;
        let head = inner.head.0.load(Ordering::Relaxed);
        let tail = inner.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &inner.slots[(head & inner.mask()) as usize];
        // SAFETY: `head != tail` with the Acquire load above means the
        // producer's write to this slot happens-before us; the slot is full
        // and owned by the consumer until the Release store below.
        let value = unsafe { (*slot.get()).assume_init_read() };
        inner.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        let inner = &*self.inner;
        inner
            .tail
            .0
            .load(Ordering::Acquire)
            .wrapping_sub(inner.head.0.load(Ordering::Relaxed)) as usize
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Drain any items neither side consumed.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        let mask = self.mask();
        let mut i = head;
        while i != tail {
            let slot = &self.slots[(i & mask) as usize];
            // SAFETY: Exclusive access in Drop; slots in [head, tail) are
            // initialized.
            unsafe { (*slot.get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let (mut tx, mut rx) = ring::<u32>(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99));
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        assert!(rx.is_empty());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (mut tx, _rx) = ring::<u8>(5);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        assert!(tx.push(8).is_err());
    }

    #[test]
    fn wraps_many_times() {
        let (mut tx, mut rx) = ring::<u64>(2);
        for i in 0..10_000u64 {
            tx.push(i).unwrap();
            assert_eq!(rx.pop(), Some(i));
        }
    }

    #[test]
    fn drops_are_not_leaked() {
        use flipc_core::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (mut tx, mut rx) = ring::<D>(8);
            for _ in 0..5 {
                tx.push(D).unwrap();
            }
            drop(rx.pop()); // one dropped by consumption
                            // four left inside on drop
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn cross_thread_stream_preserves_order() {
        let (mut tx, mut rx) = ring::<u32>(16);
        const N: u32 = 20_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                loop {
                    match tx.push(i) {
                        Ok(()) => break,
                        Err(_) => std::thread::yield_now(),
                    }
                }
            }
        });
        let mut expected = 0;
        while expected < N {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expected);
                    expected += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn boxed_payloads_transfer_intact() {
        let (mut tx, mut rx) = ring::<Box<[u8]>>(4);
        tx.push(vec![1, 2, 3].into()).unwrap();
        assert_eq!(&*rx.pop().unwrap(), &[1, 2, 3]);
    }
}
