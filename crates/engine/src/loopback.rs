//! In-process loopback transport: a full mesh of SPSC rings.
//!
//! Every ordered pair of nodes gets its own wait-free [`crate::spsc`] ring,
//! which gives the transport contract's per-path FIFO ordering for free and
//! keeps the wire itself within FLIPC's loads-and-stores synchronization
//! discipline. The receive side round-robins over its inbound rings so no
//! sender can starve another.
//!
//! This is the stand-in for the Paragon mesh in the *real* (host-executed)
//! implementation; the timing-accurate mesh lives in `flipc-mesh` and is
//! used by the simulation experiments instead.

use flipc_core::endpoint::FlipcNodeId;

use crate::spsc::{ring, Consumer, Producer};
use crate::transport::Transport;
use crate::wire::Frame;

/// One node's attachment to the loopback fabric.
pub struct LoopbackPort {
    node: FlipcNodeId,
    /// `tx[d]` sends to node `d`; `None` at our own index.
    tx: Vec<Option<Producer<Frame>>>,
    /// `rx[s]` receives from node `s`; `None` at our own index.
    rx: Vec<Option<Consumer<Frame>>>,
    /// Round-robin cursor over `rx`.
    next_rx: usize,
}

/// Builds a fully connected fabric of `n` nodes with per-path rings of
/// `wire_depth` frames, returning one port per node (index = node id).
pub fn fabric(n: usize, wire_depth: usize) -> Vec<LoopbackPort> {
    assert!(n >= 1, "fabric needs at least one node");
    assert!(n <= u16::MAX as usize, "node id space is u16");
    // producers[s][d] / consumers[d][s]
    let mut producers: Vec<Vec<Option<Producer<Frame>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    let mut consumers: Vec<Vec<Option<Consumer<Frame>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            let (p, c) = ring(wire_depth);
            producers[s][d] = Some(p);
            consumers[d][s] = Some(c);
        }
    }
    producers
        .into_iter()
        .zip(consumers)
        .enumerate()
        .map(|(i, (tx, rx))| LoopbackPort {
            node: FlipcNodeId(i as u16),
            tx,
            rx,
            next_rx: 0,
        })
        .collect()
}

impl Transport for LoopbackPort {
    fn try_send(&mut self, dst: FlipcNodeId, frame: &Frame) -> bool {
        let Some(slot) = self.tx.get_mut(dst.0 as usize) else {
            // Unknown node: a reliable interconnect would never route this;
            // drop it (the engine has already counted misaddressing when
            // the *endpoint* was bad; an out-of-fabric node id is treated
            // as accepted-and-black-holed, like a powered-off node slot).
            return true;
        };
        match slot {
            Some(p) => p.push(frame.clone()).is_ok(),
            None => true, // self-addressed frames never reach the transport
        }
    }

    fn try_recv(&mut self) -> Option<Frame> {
        let n = self.rx.len();
        for step in 0..n {
            let i = (self.next_rx + step) % n;
            if let Some(c) = self.rx[i].as_mut() {
                if let Some(f) = c.pop() {
                    self.next_rx = (i + 1) % n;
                    return Some(f);
                }
            }
        }
        None
    }

    fn local_node(&self) -> FlipcNodeId {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipc_core::endpoint::{EndpointAddress, EndpointIndex};

    fn frame(src_node: u16, dst_node: u16, tag: u8) -> Frame {
        Frame {
            src: EndpointAddress::new(FlipcNodeId(src_node), EndpointIndex(0), 1),
            dst: EndpointAddress::new(FlipcNodeId(dst_node), EndpointIndex(0), 1),
            payload: vec![tag; 8].into(),
            stamp_ns: 0,
        }
    }

    #[test]
    fn frames_route_between_nodes() {
        let mut ports = fabric(3, 8);
        let f = frame(0, 2, 7);
        assert!(ports[0].try_send(FlipcNodeId(2), &f));
        assert!(ports[1].try_recv().is_none());
        let got = ports[2].try_recv().unwrap();
        assert_eq!(got, f);
        assert!(ports[2].try_recv().is_none());
    }

    #[test]
    fn per_path_fifo_is_preserved() {
        let mut ports = fabric(2, 64);
        for i in 0..50u8 {
            assert!(ports[0].try_send(FlipcNodeId(1), &frame(0, 1, i)));
        }
        for i in 0..50u8 {
            assert_eq!(ports[1].try_recv().unwrap().payload[0], i);
        }
    }

    #[test]
    fn full_wire_backpressures_without_losing_the_frame() {
        let mut ports = fabric(2, 2);
        let f = frame(0, 1, 1);
        assert!(ports[0].try_send(FlipcNodeId(1), &f));
        assert!(ports[0].try_send(FlipcNodeId(1), &f));
        // Ring of 2 is now full.
        assert!(!ports[0].try_send(FlipcNodeId(1), &f));
        ports[1].try_recv().unwrap();
        assert!(ports[0].try_send(FlipcNodeId(1), &f));
    }

    #[test]
    fn receive_round_robins_across_sources() {
        let mut ports = fabric(3, 8);
        // Nodes 0 and 1 each send two frames to node 2.
        let (a, rest) = ports.split_at_mut(1);
        let (b, c) = rest.split_at_mut(1);
        for _ in 0..2 {
            assert!(a[0].try_send(FlipcNodeId(2), &frame(0, 2, 0)));
            assert!(b[0].try_send(FlipcNodeId(2), &frame(1, 2, 1)));
        }
        let mut seen = Vec::new();
        while let Some(f) = c[0].try_recv() {
            seen.push(f.payload[0]);
        }
        assert_eq!(seen.len(), 4);
        // Round-robin interleaves the two sources rather than draining one.
        assert_ne!(seen, vec![0, 0, 1, 1]);
    }

    #[test]
    fn unknown_destination_is_black_holed() {
        let mut ports = fabric(2, 4);
        assert!(ports[0].try_send(FlipcNodeId(9), &frame(0, 9, 3)));
    }
}
