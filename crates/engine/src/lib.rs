//! FLIPC messaging engine: the component that moves messages between nodes.
//!
//! The engine is "an independently executing component of the system",
//! intended for the programmable controller in the communication interface
//! (the Paragon's message coprocessor) but also runnable inside the kernel
//! for debugging. This crate provides:
//!
//! * [`engine`] — the bounded, wait-free event loop itself;
//! * [`transport`] — the reliable per-path-ordered frame contract the
//!   engine layers its optimistic protocol over;
//! * [`spsc`] — a loads-and-stores-only SPSC ring (the in-process wire);
//! * [`loopback`] — a full mesh of those rings standing in for the Paragon
//!   interconnect on the host;
//! * [`thread`] — the dedicated "message coprocessor" thread;
//! * [`node`] — assembled clusters (threaded and inline/deterministic).
//!
//! The KKT RPC-per-message transport (the paper's development platform)
//! lives in the `flipc-kkt` crate.

pub mod bus;
pub mod engine;
pub mod loopback;
pub mod node;
pub mod shaper;
pub mod spsc;
pub mod thread;
pub mod transport;
pub mod wire;

pub use bus::{bus_fabric, BusPort};
pub use engine::{Domain, Engine, EngineConfig, EngineStats};
pub use loopback::{fabric, LoopbackPort};
pub use node::{InlineCluster, NodeCore, ThreadedCluster};
pub use shaper::{Shaper, TokenBucket};
pub use thread::{spawn_engine, spawn_engine_traced, EngineHandle};
pub use transport::Transport;
pub use wire::Frame;
