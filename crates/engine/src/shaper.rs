//! Capacity / bandwidth control on the inter-node transport.
//!
//! One of the paper's Future Work items: "we intend to pursue further
//! integration of FLIPC into a real time environment by adding real time
//! prioritization and capacity/bandwidth control functionality to the
//! basic inter-node transport." Prioritization is the engine's
//! importance-ordered scan; this module adds the capacity half: per-
//! endpoint token buckets that bound how much wire capacity an endpoint
//! may consume, so a misbehaving or low-importance stream cannot crowd the
//! interconnect no matter how fast its application queues messages.
//!
//! Buckets are replenished once per engine iteration (the engine's event
//! loop is its clock); an endpoint whose bucket cannot cover the next
//! message is simply skipped for that iteration — its buffers stay queued,
//! nothing is dropped, and the engine's wait-free bounded-work discipline
//! is untouched.

use std::collections::HashMap;

/// A token bucket measured in payload bytes.
#[derive(Clone, Copy, Debug)]
pub struct TokenBucket {
    /// Tokens added per engine iteration.
    pub refill_per_iteration: u64,
    /// Maximum accumulated tokens (burst capacity).
    pub burst: u64,
    tokens: u64,
}

impl TokenBucket {
    /// Creates a bucket that starts full.
    pub fn new(refill_per_iteration: u64, burst: u64) -> TokenBucket {
        TokenBucket {
            refill_per_iteration,
            burst,
            tokens: burst,
        }
    }

    /// Adds one iteration's refill.
    pub fn tick(&mut self) {
        self.tokens = (self.tokens + self.refill_per_iteration).min(self.burst);
    }

    /// Attempts to spend `bytes` tokens.
    pub fn try_spend(&mut self, bytes: u64) -> bool {
        if self.tokens >= bytes {
            self.tokens -= bytes;
            true
        } else {
            false
        }
    }

    /// Tokens currently available.
    pub fn available(&self) -> u64 {
        self.tokens
    }
}

/// Per-endpoint transmit shaping state for one engine.
#[derive(Default, Debug)]
pub struct Shaper {
    buckets: HashMap<u16, TokenBucket>,
}

impl Shaper {
    /// Creates an empty shaper (no endpoint is limited).
    pub fn new() -> Shaper {
        Shaper::default()
    }

    /// Installs (or replaces) a rate limit for endpoint slot `ep`.
    pub fn limit(&mut self, ep: u16, bucket: TokenBucket) {
        self.buckets.insert(ep, bucket);
    }

    /// Removes the limit from endpoint slot `ep`.
    pub fn unlimit(&mut self, ep: u16) {
        self.buckets.remove(&ep);
    }

    /// Replenishes all buckets; called once per engine iteration.
    pub fn tick(&mut self) {
        for b in self.buckets.values_mut() {
            b.tick();
        }
    }

    /// Returns `true` if endpoint `ep` may transmit `bytes` now (and spends
    /// the tokens). Unlimited endpoints always may.
    pub fn admit(&mut self, ep: u16, bytes: u64) -> bool {
        match self.buckets.get_mut(&ep) {
            Some(b) => b.try_spend(bytes),
            None => true,
        }
    }

    /// Whether any endpoint is limited.
    pub fn is_active(&self) -> bool {
        !self.buckets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_spends_and_refills() {
        let mut b = TokenBucket::new(10, 30);
        assert_eq!(b.available(), 30);
        assert!(b.try_spend(25));
        assert!(!b.try_spend(10));
        b.tick();
        assert_eq!(b.available(), 15);
        assert!(b.try_spend(15));
        assert!(!b.try_spend(1));
    }

    #[test]
    fn burst_caps_accumulation() {
        let mut b = TokenBucket::new(100, 50);
        for _ in 0..10 {
            b.tick();
        }
        assert_eq!(b.available(), 50);
    }

    #[test]
    fn unlimited_endpoints_always_admit() {
        let mut s = Shaper::new();
        assert!(s.admit(3, u64::MAX));
        assert!(!s.is_active());
    }

    #[test]
    fn limited_endpoint_is_throttled_then_recovers() {
        let mut s = Shaper::new();
        s.limit(1, TokenBucket::new(64, 128));
        assert!(s.is_active());
        assert!(s.admit(1, 128));
        assert!(!s.admit(1, 64), "bucket exhausted");
        // Another endpoint is unaffected.
        assert!(s.admit(2, 1 << 20));
        s.tick();
        assert!(s.admit(1, 64));
        s.unlimit(1);
        assert!(s.admit(1, 1 << 20));
    }
}
