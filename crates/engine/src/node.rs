//! Node assembly: communication buffer + engine + transport, ready to use.
//!
//! Two cluster flavors mirror the paper's two engine placements:
//!
//! * [`ThreadedCluster`] — each node's engine runs on its own "message
//!   coprocessor" thread (the optimized native configuration);
//! * [`InlineCluster`] — engines are pumped explicitly by the caller,
//!   "implemented as part of the operating system kernel for debugging
//!   purposes": fully deterministic, used heavily by tests.

use std::sync::Arc;

use flipc_core::api::Flipc;
use flipc_core::commbuf::CommBuffer;
use flipc_core::endpoint::FlipcNodeId;
use flipc_core::error::Result;
use flipc_core::layout::Geometry;
use flipc_core::wait::WaitRegistry;

use crate::engine::{Engine, EngineConfig, EngineStats};
use crate::loopback::fabric;
use crate::thread::{spawn_engine, spawn_engine_traced, EngineHandle};

/// Shared node state applications attach to.
#[derive(Clone)]
pub struct NodeCore {
    id: FlipcNodeId,
    cb: Arc<CommBuffer>,
    registry: Arc<WaitRegistry>,
}

impl NodeCore {
    /// The node's id.
    pub fn id(&self) -> FlipcNodeId {
        self.id
    }

    /// Attaches a new application handle (multiple cooperating applications
    /// per node share one communication buffer by dividing its endpoints).
    pub fn attach(&self) -> Flipc {
        Flipc::attach(self.cb.clone(), self.id, self.registry.clone())
    }

    /// The node's communication buffer.
    pub fn commbuf(&self) -> &Arc<CommBuffer> {
        &self.cb
    }
}

fn build_cores(n: usize, geo: Geometry) -> Result<Vec<(NodeCore, Arc<WaitRegistry>)>> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let cb = Arc::new(CommBuffer::new(geo)?);
        let registry = WaitRegistry::new();
        out.push((
            NodeCore {
                id: FlipcNodeId(i as u16),
                cb,
                registry: registry.clone(),
            },
            registry,
        ));
    }
    Ok(out)
}

/// A cluster whose engines run on dedicated threads.
pub struct ThreadedCluster {
    cores: Vec<NodeCore>,
    handles: Vec<EngineHandle>,
}

impl ThreadedCluster {
    /// Builds `n` nodes on a loopback fabric and starts their engines.
    pub fn new(n: usize, geo: Geometry, cfg: EngineConfig) -> Result<ThreadedCluster> {
        ThreadedCluster::build(n, geo, cfg, None)
    }

    /// Like [`ThreadedCluster::new`], but every engine starts with a trace
    /// ring of `trace_capacity` events installed; observers claim the
    /// consumer halves via [`ThreadedCluster::handle_mut`] +
    /// [`EngineHandle::take_trace_reader`].
    pub fn new_traced(
        n: usize,
        geo: Geometry,
        cfg: EngineConfig,
        trace_capacity: usize,
    ) -> Result<ThreadedCluster> {
        ThreadedCluster::build(n, geo, cfg, Some(trace_capacity))
    }

    fn build(
        n: usize,
        geo: Geometry,
        cfg: EngineConfig,
        trace_capacity: Option<usize>,
    ) -> Result<ThreadedCluster> {
        let ports = fabric(n, 256);
        let cores = build_cores(n, geo)?;
        let mut handles = Vec::with_capacity(n);
        let mut out_cores = Vec::with_capacity(n);
        for ((core, registry), port) in cores.into_iter().zip(ports) {
            let engine = Engine::new(core.cb.clone(), Box::new(port), registry, cfg);
            handles.push(match trace_capacity {
                Some(cap) => spawn_engine_traced(engine, cap),
                None => spawn_engine(engine),
            });
            out_cores.push(core);
        }
        Ok(ThreadedCluster {
            cores: out_cores,
            handles,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// True when the cluster has no nodes (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Node `i`'s core (attach applications through it).
    pub fn node(&self, i: usize) -> &NodeCore {
        &self.cores[i]
    }

    /// Node `i`'s engine statistics.
    pub fn engine_stats(&self, i: usize) -> &Arc<EngineStats> {
        self.handles[i].stats()
    }

    /// Node `i`'s engine telemetry (histogram snapshots readable while
    /// the engine runs).
    pub fn engine_telemetry(&self, i: usize) -> &Arc<flipc_obs::EngineTelemetry> {
        self.handles[i].telemetry()
    }

    /// Mutable access to node `i`'s engine handle (e.g. to take a trace
    /// reader installed with [`ThreadedCluster::new_traced`]).
    pub fn handle_mut(&mut self, i: usize) -> &mut EngineHandle {
        &mut self.handles[i]
    }

    /// Stops all engines (also happens on drop).
    pub fn shutdown(self) {
        for h in self.handles {
            h.stop();
        }
    }
}

/// A cluster whose engines are pumped by the caller — deterministic, for
/// tests and simulation-style experiments.
pub struct InlineCluster {
    cores: Vec<NodeCore>,
    engines: Vec<Engine>,
}

impl InlineCluster {
    /// Builds `n` nodes on a loopback fabric with inline engines.
    pub fn new(n: usize, geo: Geometry, cfg: EngineConfig) -> Result<InlineCluster> {
        let ports = fabric(n, 256);
        let built = build_cores(n, geo)?;
        let mut cores = Vec::with_capacity(n);
        let mut engines = Vec::with_capacity(n);
        for ((core, registry), port) in built.into_iter().zip(ports) {
            engines.push(Engine::new(core.cb.clone(), Box::new(port), registry, cfg));
            cores.push(core);
        }
        Ok(InlineCluster { cores, engines })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// True when the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Node `i`'s core.
    pub fn node(&self, i: usize) -> &NodeCore {
        &self.cores[i]
    }

    /// Node `i`'s engine statistics.
    pub fn engine_stats(&self, i: usize) -> Arc<EngineStats> {
        self.engines[i].stats()
    }

    /// Node `i`'s engine telemetry.
    pub fn engine_telemetry(&self, i: usize) -> Arc<flipc_obs::EngineTelemetry> {
        self.engines[i].telemetry()
    }

    /// Mutable access to node `i`'s engine (e.g. to install rate limits).
    pub fn engine_mut(&mut self, i: usize) -> &mut Engine {
        &mut self.engines[i]
    }

    /// One engine iteration on every node; returns total messages moved.
    pub fn pump(&mut self) -> u32 {
        self.engines.iter_mut().map(|e| e.iterate()).sum()
    }

    /// Pumps until every engine reports idle (or `max_rounds` elapses);
    /// returns true if the cluster went idle.
    ///
    /// Caveat: an engine with rate-limited endpoints can report a
    /// zero-work iteration while messages are merely waiting for token
    /// refills; drive such clusters with a plain [`InlineCluster::pump`]
    /// loop instead.
    pub fn pump_until_idle(&mut self, max_rounds: u32) -> bool {
        for _ in 0..max_rounds {
            if self.pump() == 0 {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipc_core::endpoint::{EndpointType, Importance};

    #[test]
    fn inline_cluster_roundtrip() {
        let mut cl = InlineCluster::new(3, Geometry::small(), EngineConfig::default()).unwrap();
        let a = cl.node(0).attach();
        let c = cl.node(2).attach();
        let tx = a
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = c
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = c.address(&rx);
        let b = c.buffer_allocate().unwrap();
        c.provide_receive_buffer(&rx, b)
            .map_err(|r| r.error)
            .unwrap();
        let mut t = a.buffer_allocate().unwrap();
        a.payload_mut(&mut t)[..2].copy_from_slice(b"ok");
        a.send(&tx, t, dest).unwrap();
        assert!(cl.pump_until_idle(16));
        let got = c.recv(&rx).unwrap().unwrap();
        assert_eq!(&c.payload(&got.token)[..2], b"ok");
    }

    #[test]
    fn multiple_apps_share_one_node() {
        let mut cl = InlineCluster::new(1, Geometry::small(), EngineConfig::default()).unwrap();
        let app1 = cl.node(0).attach();
        let app2 = cl.node(0).attach();
        // Each app allocates its own endpoints from the shared buffer.
        let tx = app1
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = app2
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = app2.address(&rx);
        let b = app2.buffer_allocate().unwrap();
        app2.provide_receive_buffer(&rx, b)
            .map_err(|r| r.error)
            .unwrap();
        let t = app1.buffer_allocate().unwrap();
        app1.send(&tx, t, dest).unwrap();
        cl.pump_until_idle(8);
        assert!(app2.recv(&rx).unwrap().is_some());
        // Both apps drew from the one shared pool: two buffers are out
        // (app2 holds the received one; app1's is still reclaimable).
        assert_eq!(cl.node(0).commbuf().free_buffers(), 62);
    }

    #[test]
    fn threaded_cluster_roundtrip() {
        let cl = ThreadedCluster::new(2, Geometry::small(), EngineConfig::default()).unwrap();
        let a = cl.node(0).attach();
        let b = cl.node(1).attach();
        let tx = a
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .unwrap();
        let rx = b
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .unwrap();
        let dest = b.address(&rx);
        let buf = b.buffer_allocate().unwrap();
        b.provide_receive_buffer(&rx, buf)
            .map_err(|r| r.error)
            .unwrap();
        let mut t = a.buffer_allocate().unwrap();
        a.payload_mut(&mut t)[..5].copy_from_slice(b"hello");
        a.send(&tx, t, dest).unwrap();
        let got = b
            .recv_blocking(&rx, std::time::Duration::from_secs(10))
            .unwrap();
        assert_eq!(&b.payload(&got.token)[..5], b"hello");
        cl.shutdown();
    }
}
