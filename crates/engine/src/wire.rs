//! The on-the-wire frame format.
//!
//! A frame is exactly one fixed-size FLIPC message in flight: source and
//! destination endpoint addresses (the 8 "internal" bytes of the paper's
//! message format, plus the reverse address the delivery path stamps into
//! the receive buffer's header) and the opaque payload. Frames between a
//! given (source endpoint, destination endpoint) pair are delivered
//! reliably and in order by every [`crate::transport::Transport`]
//! implementation; that is the engine's transport contract.

use flipc_core::endpoint::EndpointAddress;

/// One message in flight between two nodes.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Sending endpoint (stamped into the delivered buffer's header as the
    /// reply address).
    pub src: EndpointAddress,
    /// Destination endpoint.
    pub dst: EndpointAddress,
    /// Fixed-size application payload.
    pub payload: Box<[u8]>,
    /// Telemetry stamp: the sending engine's `flipc_obs::now_ns()` at
    /// transmit time, or 0 for "unstamped". Diagnostic metadata only — it
    /// is NOT serialized (clocks of different processes are not
    /// comparable), so it survives in-process transports (which move
    /// `Frame` values) and decodes to 0 off the wire. The delivery path
    /// turns a non-zero stamp into a send→deliver latency sample.
    pub stamp_ns: u64,
}

impl PartialEq for Frame {
    fn eq(&self, other: &Frame) -> bool {
        // `stamp_ns` is diagnostic metadata, not message identity: two
        // frames carrying the same addresses and payload are the same
        // message whether or not telemetry stamped them.
        self.src == other.src && self.dst == other.dst && self.payload == other.payload
    }
}

impl Eq for Frame {}

/// Byte length of the encoded frame header (packed src + packed dst).
pub const FRAME_HEADER_LEN: usize = 16;

impl Frame {
    /// Serializes the frame for byte-oriented transports (KKT, and any
    /// future network transport). Layout: `src:u64le | dst:u64le | payload`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.src.pack().to_le_bytes());
        out.extend_from_slice(&self.dst.pack().to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Deserializes a frame previously produced by [`Frame::encode`].
    ///
    /// Returns `None` if the bytes are too short to hold the header.
    pub fn decode(bytes: &[u8]) -> Option<Frame> {
        if bytes.len() < FRAME_HEADER_LEN {
            return None;
        }
        let src = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let dst = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
        Some(Frame {
            src: EndpointAddress::unpack(src),
            dst: EndpointAddress::unpack(dst),
            payload: bytes[FRAME_HEADER_LEN..].into(),
            stamp_ns: 0,
        })
    }

    /// Total bytes this frame occupies on a link, including the 16-byte
    /// header (used by byte-accounting transports).
    pub fn wire_len(&self) -> usize {
        FRAME_HEADER_LEN + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipc_core::endpoint::{EndpointIndex, FlipcNodeId};

    fn addr(n: u16, e: u16, g: u16) -> EndpointAddress {
        EndpointAddress::new(FlipcNodeId(n), EndpointIndex(e), g)
    }

    #[test]
    fn encode_decode_roundtrips() {
        let f = Frame {
            src: addr(1, 2, 3),
            dst: addr(4, 5, 6),
            payload: vec![9u8; 56].into(),
            stamp_ns: 0,
        };
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.wire_len());
        let g = Frame::decode(&bytes).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn decode_rejects_truncated_header() {
        assert!(Frame::decode(&[0u8; 15]).is_none());
        // Exactly a header with empty payload decodes.
        let f = Frame {
            src: addr(0, 0, 0),
            dst: addr(0, 0, 0),
            payload: Box::new([]),
            stamp_ns: 0,
        };
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }
}
