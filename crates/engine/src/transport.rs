//! The transport contract beneath the messaging engine.
//!
//! FLIPC's engine assumes a *reliable* interconnect that preserves order
//! per (source node, destination node) path — the Paragon mesh's property —
//! and layers nothing on top: no acknowledgements, no retransmission, no
//! end-to-end flow control. The only backpressure is link-level: a full
//! wire makes [`Transport::try_send`] return `false` and the engine retries
//! on its next event-loop iteration without advancing the endpoint queue.
//!
//! Implementations in this workspace:
//!
//! * [`crate::loopback`] — in-process SPSC rings (the "native" engine path
//!   used by tests, examples, and host benchmarks),
//! * `flipc-kkt` — an RPC-per-message transport reproducing the paper's
//!   development platform (and its overhead).

use flipc_core::endpoint::FlipcNodeId;
use flipc_core::inspect::TransportSnapshot;

use crate::wire::Frame;

/// A one-way, reliable, per-path-ordered frame carrier between nodes.
pub trait Transport: Send {
    /// Queues `frame` toward `dst`. Returns `false` if the wire cannot
    /// accept it right now (the engine retries later; the frame is NOT
    /// consumed — the caller keeps it).
    fn try_send(&mut self, dst: FlipcNodeId, frame: &Frame) -> bool;

    /// Polls for the next arrived frame, from any source.
    fn try_recv(&mut self) -> Option<Frame>;

    /// This transport's local node id.
    fn local_node(&self) -> FlipcNodeId;

    /// Data frames this transport retransmitted since the last poll
    /// (telemetry only; the engine forwards the count to its trace ring).
    /// Transports without a reliability layer never retransmit — the
    /// default is a constant 0.
    fn retransmits_since_poll(&mut self) -> u32 {
        0
    }

    /// A loads-only snapshot of this transport's reliability state, for
    /// observers (the metrics exposition, `flipc-top`). Transports without
    /// per-peer state report `None` — the default for in-process carriers
    /// like the loopback fabric.
    fn snapshot(&self) -> Option<TransportSnapshot> {
        None
    }

    /// True when this transport's failure detector has declared `dst`
    /// dead (retransmit budget exhausted). The engine checks this before
    /// draining a frame toward `dst` so the send fails back to the
    /// application's drop counter instead of being black-holed. Transports
    /// without a failure detector never give up on a peer — the default is
    /// a constant `false`.
    fn peer_down(&self, dst: FlipcNodeId) -> bool {
        let _ = dst;
        false
    }

    /// Marks a batch boundary: the engine calls this once at the end of
    /// every outgoing drain pass, after it has offered up to
    /// `max_batch` frames per endpoint via [`Transport::try_send`]. A
    /// coalescing transport transmits whatever it staged during the pass;
    /// transports that send eagerly (the loopback fabric, an uncoalesced
    /// wire) have nothing to do — the default is a no-op.
    fn flush(&mut self) {}
}
