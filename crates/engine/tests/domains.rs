//! Protection domains: multiple communication buffers per node with send
//! restrictions (the paper's Future Work item for "multiple applications
//! that do not trust each other").

use flipc_core::sync::atomic::Ordering;
use std::sync::Arc;

use flipc_core::api::Flipc;
use flipc_core::commbuf::CommBuffer;
use flipc_core::endpoint::{EndpointType, FlipcNodeId, Importance};
use flipc_core::layout::Geometry;
use flipc_core::wait::WaitRegistry;
use flipc_engine::engine::{Domain, Engine, EngineConfig};
use flipc_engine::loopback::fabric;

/// Two domains on node 0 (a trusted control app and a restricted guest
/// app) plus a plain node 1; returns engines and the attached handles.
struct World {
    engines: Vec<Engine>,
    control: Flipc,
    guest: Flipc,
    remote: Flipc,
}

fn world(guest_allowed: Option<Vec<FlipcNodeId>>) -> World {
    let geo = Geometry::small(); // 8 endpoints each
    let mut ports = fabric(2, 64).into_iter();

    // Node 0: two communication buffers — control at base 0, guest at 8.
    let control_cb = Arc::new(CommBuffer::new(geo).expect("commbuf"));
    let control_reg = WaitRegistry::new();
    let guest_cb = Arc::new(CommBuffer::new(geo).expect("commbuf"));
    let guest_reg = WaitRegistry::new();
    let node0 = Engine::new_multi(
        vec![
            Domain::unrestricted(control_cb.clone(), control_reg.clone()),
            Domain {
                cb: guest_cb.clone(),
                registry: guest_reg.clone(),
                index_base: 8,
                allowed_destinations: guest_allowed,
            },
        ],
        Box::new(ports.next().expect("port 0")),
        EngineConfig::default(),
    );

    // Node 1: ordinary single-domain node.
    let remote_cb = Arc::new(CommBuffer::new(geo).expect("commbuf"));
    let remote_reg = WaitRegistry::new();
    let node1 = Engine::new(
        remote_cb.clone(),
        Box::new(ports.next().expect("port 1")),
        remote_reg.clone(),
        EngineConfig::default(),
    );

    World {
        engines: vec![node0, node1],
        control: Flipc::attach_at(control_cb, FlipcNodeId(0), control_reg, 0),
        guest: Flipc::attach_at(guest_cb, FlipcNodeId(0), guest_reg, 8),
        remote: Flipc::attach(remote_cb, FlipcNodeId(1), remote_reg),
    }
}

fn pump(engines: &mut [Engine]) {
    for _ in 0..6 {
        for e in engines.iter_mut() {
            e.iterate();
        }
    }
}

fn send(
    f: &Flipc,
    ep: &flipc_core::api::LocalEndpoint,
    dest: flipc_core::EndpointAddress,
    tag: u8,
) {
    let mut t = f.buffer_allocate().expect("buffer");
    f.payload_mut(&mut t)[0] = tag;
    f.send(ep, t, dest).expect("send");
}

fn provide(f: &Flipc, ep: &flipc_core::api::LocalEndpoint, n: usize) {
    for _ in 0..n {
        let t = f.buffer_allocate().expect("buffer");
        f.provide_receive_buffer(ep, t)
            .map_err(|r| r.error)
            .expect("provide");
    }
}

#[test]
fn domains_route_by_index_base_and_stay_isolated() {
    let mut w = world(None);
    // Each domain gets a receive endpoint; the remote node sends to both.
    let c_rx = w
        .control
        .endpoint_allocate(EndpointType::Receive, Importance::Normal)
        .unwrap();
    let g_rx = w
        .guest
        .endpoint_allocate(EndpointType::Receive, Importance::Normal)
        .unwrap();
    provide(&w.control, &c_rx, 2);
    provide(&w.guest, &g_rx, 2);
    // Addresses carry the domain's base: control ep0 -> global 0, guest
    // ep0 -> global 8.
    let c_addr = w.control.address(&c_rx);
    let g_addr = w.guest.address(&g_rx);
    assert_eq!(c_addr.index().0, 0);
    assert_eq!(g_addr.index().0, 8);

    let r_tx = w
        .remote
        .endpoint_allocate(EndpointType::Send, Importance::Normal)
        .unwrap();
    send(&w.remote, &r_tx, c_addr, 1);
    send(&w.remote, &r_tx, g_addr, 2);
    pump(&mut w.engines);

    let got_c = w.control.recv(&c_rx).unwrap().expect("control delivery");
    assert_eq!(w.control.payload(&got_c.token)[0], 1);
    let got_g = w.guest.recv(&g_rx).unwrap().expect("guest delivery");
    assert_eq!(w.guest.payload(&got_g.token)[0], 2);
    // Nothing leaked across domains.
    assert!(w.control.recv(&c_rx).unwrap().is_none());
    assert!(w.guest.recv(&g_rx).unwrap().is_none());
    assert_eq!(w.control.drops_reset(&c_rx).unwrap(), 0);
    assert_eq!(w.guest.drops_reset(&g_rx).unwrap(), 0);
}

#[test]
fn cross_domain_messaging_on_one_node_goes_through_the_engine() {
    let mut w = world(None);
    let g_rx = w
        .guest
        .endpoint_allocate(EndpointType::Receive, Importance::Normal)
        .unwrap();
    provide(&w.guest, &g_rx, 1);
    let g_addr = w.guest.address(&g_rx);

    let c_tx = w
        .control
        .endpoint_allocate(EndpointType::Send, Importance::Normal)
        .unwrap();
    send(&w.control, &c_tx, g_addr, 42);
    pump(&mut w.engines);

    let got = w.guest.recv(&g_rx).unwrap().expect("cross-domain delivery");
    assert_eq!(w.guest.payload(&got.token)[0], 42);
    // Provenance shows the control domain's global index space.
    assert_eq!(got.from.node(), FlipcNodeId(0));
    assert!(got.from.index().0 < 8);
}

#[test]
fn send_restriction_denies_and_counts() {
    // The guest may only talk to node 0 (itself) — its messages to node 1
    // must be suppressed by the engine, visibly.
    let mut w = world(Some(vec![FlipcNodeId(0)]));
    let r_rx = w
        .remote
        .endpoint_allocate(EndpointType::Receive, Importance::Normal)
        .unwrap();
    provide(&w.remote, &r_rx, 4);
    let r_addr = w.remote.address(&r_rx);

    let g_tx = w
        .guest
        .endpoint_allocate(EndpointType::Send, Importance::Normal)
        .unwrap();
    for i in 0..3u8 {
        send(&w.guest, &g_tx, r_addr, i);
    }
    pump(&mut w.engines);

    // Nothing reached the remote node.
    assert!(
        w.remote.recv(&r_rx).unwrap().is_none(),
        "restricted send leaked off-node"
    );
    // The denial is observable: engine stat + the send endpoint's drop
    // counter, and the buffers complete so the guest can reclaim them.
    assert_eq!(w.engines[0].stats().denied.load(Ordering::Relaxed), 3);
    assert_eq!(w.guest.drops_reset(&g_tx).unwrap(), 3);
    let mut reclaimed = 0;
    while w.guest.reclaim_send(&g_tx).unwrap().is_some() {
        reclaimed += 1;
    }
    assert_eq!(reclaimed, 3);

    // The control domain (unrestricted) still reaches node 1.
    let c_tx = w
        .control
        .endpoint_allocate(EndpointType::Send, Importance::Normal)
        .unwrap();
    send(&w.control, &c_tx, r_addr, 9);
    pump(&mut w.engines);
    let got = w
        .remote
        .recv(&r_rx)
        .unwrap()
        .expect("control traffic must pass");
    assert_eq!(w.remote.payload(&got.token)[0], 9);
}

#[test]
fn restricted_guest_may_still_message_allowed_nodes() {
    let mut w = world(Some(vec![FlipcNodeId(0)]));
    // Guest -> control (same node, allowed).
    let c_rx = w
        .control
        .endpoint_allocate(EndpointType::Receive, Importance::Normal)
        .unwrap();
    provide(&w.control, &c_rx, 1);
    let c_addr = w.control.address(&c_rx);
    let g_tx = w
        .guest
        .endpoint_allocate(EndpointType::Send, Importance::Normal)
        .unwrap();
    send(&w.guest, &g_tx, c_addr, 7);
    pump(&mut w.engines);
    let got = w.control.recv(&c_rx).unwrap().expect("allowed destination");
    assert_eq!(w.control.payload(&got.token)[0], 7);
    assert_eq!(w.engines[0].stats().denied.load(Ordering::Relaxed), 0);
}

#[test]
fn unowned_global_index_is_misaddressed() {
    let mut w = world(None);
    let r_tx = w
        .remote
        .endpoint_allocate(EndpointType::Send, Importance::Normal)
        .unwrap();
    // Global index 99 belongs to no domain on node 0.
    let bogus = flipc_core::EndpointAddress::new(FlipcNodeId(0), flipc_core::EndpointIndex(99), 1);
    send(&w.remote, &r_tx, bogus, 5);
    pump(&mut w.engines);
    assert_eq!(w.engines[0].stats().misaddressed.load(Ordering::Relaxed), 1);
}

#[test]
#[should_panic(expected = "overlap")]
fn overlapping_domain_ranges_are_rejected() {
    let geo = Geometry::small();
    let mut ports = fabric(1, 4).into_iter();
    let cb1 = Arc::new(CommBuffer::new(geo).unwrap());
    let cb2 = Arc::new(CommBuffer::new(geo).unwrap());
    let _ = Engine::new_multi(
        vec![
            Domain::unrestricted(cb1, WaitRegistry::new()),
            Domain {
                cb: cb2,
                registry: WaitRegistry::new(),
                index_base: 4, // overlaps [0,8)
                allowed_destinations: None,
            },
        ],
        Box::new(ports.next().unwrap()),
        EngineConfig::default(),
    );
}
