//! Property tests of the frame wire encoding ([`flipc_engine::wire`]).
//!
//! The encoding is the contract between the engine and every
//! byte-oriented transport (KKT today, `flipc-net`'s UDP framing on top
//! of it): `encode` → `decode` must be the identity for every frame, and
//! `decode` must reject anything too short to carry the header rather
//! than fabricate addresses from garbage.

use proptest::prelude::*;

use flipc_core::endpoint::{EndpointAddress, EndpointIndex, FlipcNodeId};
use flipc_engine::wire::{Frame, FRAME_HEADER_LEN};

fn address() -> impl Strategy<Value = EndpointAddress> {
    (any::<u16>(), any::<u16>(), any::<u16>())
        .prop_map(|(n, e, g)| EndpointAddress::new(FlipcNodeId(n), EndpointIndex(e), g))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `decode(encode(f)) == f` for arbitrary addresses and payloads,
    /// including the empty payload and paper-sized (50–500 byte) ones.
    #[test]
    fn encode_decode_is_identity(
        src in address(),
        dst in address(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let frame = Frame { src, dst, payload: payload.into(), stamp_ns: 0 };
        let bytes = frame.encode();
        prop_assert_eq!(bytes.len(), frame.wire_len());
        let back = Frame::decode(&bytes).expect("well-formed frame decodes");
        prop_assert_eq!(back, frame);
    }

    /// Packed addresses survive the u64 trip through the header bytes.
    #[test]
    fn address_pack_unpack_is_identity(addr in address()) {
        prop_assert_eq!(EndpointAddress::unpack(addr.pack()), addr);
    }

    /// Any buffer shorter than the 16-byte header is rejected, whatever
    /// its contents — truncation never produces a phantom frame.
    #[test]
    fn truncated_header_is_rejected(
        bytes in proptest::collection::vec(any::<u8>(), 0..FRAME_HEADER_LEN),
    ) {
        prop_assert!(Frame::decode(&bytes).is_none());
    }

    /// Truncating an encoded frame anywhere inside the header makes it
    /// undecodable; truncating inside the payload yields a *different*
    /// frame (shorter payload), never a decode of the original.
    #[test]
    fn corruption_by_truncation_never_roundtrips(
        src in address(),
        dst in address(),
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        cut in any::<u16>(),
    ) {
        let frame = Frame { src, dst, payload: payload.into(), stamp_ns: 0 };
        let bytes = frame.encode();
        let cut = (cut as usize) % bytes.len();
        match Frame::decode(&bytes[..cut]) {
            None => prop_assert!(cut < FRAME_HEADER_LEN),
            Some(partial) => {
                prop_assert!(cut >= FRAME_HEADER_LEN);
                prop_assert_ne!(partial, frame);
                prop_assert_eq!(partial.payload.len(), cut - FRAME_HEADER_LEN);
            }
        }
    }
}
