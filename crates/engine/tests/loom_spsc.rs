//! Interleaving models of the engine's SPSC ring (the loopback "wire").
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; see
//! `crates/core/tests/loom_models.rs` for the ground rules (production
//! code under test, bounded loops only).
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p flipc-engine --release loom_`
#![cfg(loom)]

use flipc_engine::spsc;

/// FIFO order and item conservation under every producer/consumer
/// interleaving: the handoff of slot ownership through the head/tail
/// stores never loses, duplicates, or reorders an item.
#[test]
fn loom_spsc_fifo_ordering() {
    flipc_loom::model(|| {
        let (mut tx, mut rx) = spsc::ring::<u32>(2);
        let producer = flipc_loom::thread::spawn(move || {
            // Capacity 2 and only two pushes: neither can fail, so no
            // retry loop is needed (models must not spin).
            tx.push(1).expect("ring cannot be full");
            tx.push(2).expect("ring cannot be full");
        });
        let mut got = Vec::new();
        for _ in 0..3 {
            if let Some(v) = rx.pop() {
                got.push(v);
            }
        }
        producer.join().unwrap();
        while let Some(v) = rx.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![1, 2], "SPSC ring lost, duplicated, or reordered");
    });
}

/// Heap payloads survive the handoff: the value written into a slot before
/// the tail's Release store is exactly the value read after the head's
/// Acquire load, under every interleaving (exercises the `UnsafeCell`
/// write/read pairing, and `Drop` draining for unconsumed items).
#[test]
fn loom_spsc_owned_payload_handoff() {
    flipc_loom::model(|| {
        let (mut tx, mut rx) = spsc::ring::<Box<u32>>(2);
        let producer = flipc_loom::thread::spawn(move || {
            tx.push(Box::new(7)).expect("ring cannot be full");
            tx.push(Box::new(8)).expect("ring cannot be full");
        });
        let mut sum = 0u32;
        for _ in 0..2 {
            if let Some(v) = rx.pop() {
                sum += *v;
            }
        }
        producer.join().unwrap();
        // Whatever was not popped is dropped with the ring; what was popped
        // must have arrived intact and in order (7 first).
        assert!(
            sum == 0 || sum == 7 || sum == 15,
            "payload corrupted: {sum}"
        );
    });
}
