//! Hardware cost-model parameters.
//!
//! [`CostModel`] collects the per-step timing parameters shared by the
//! simulated messaging systems: cache/coherence costs, mesh link timing, DMA
//! setup, kernel trap cost, and memory-copy bandwidth. System-specific
//! *structural* parameters (how many traps NX takes, PAM's packet size, ...)
//! live with each system model; only raw hardware costs live here.
//!
//! The `paragon()` preset is calibrated so that the modeled FLIPC protocol
//! reproduces the paper's two anchor measurements — 16.2µs end-to-end for a
//! 120-byte message and a 6.25 ns/byte size slope — from published Paragon
//! hardware characteristics (50MHz i860s, 32-byte lines, no L2, 200 MB/s
//! mesh links). Everything else in the evaluation is emergent.

use crate::cache::CacheCosts;
use crate::time::SimDuration;

/// Timing parameters of the simulated hardware platform.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cache line size in bytes (32 on the i860).
    pub line_size: u64,
    /// Coherence-protocol costs.
    pub cache: CacheCosts,
    /// Mean gap between consecutive polls of the engine's event loop; a
    /// request arriving at a random point waits on average half of this.
    pub poll_gap: SimDuration,
    /// Fixed cost to program one DMA transfer on the mesh interface.
    pub dma_setup: SimDuration,
    /// Per-hop routing latency in the wormhole mesh.
    pub hop: SimDuration,
    /// Wire serialization cost per byte (200 MB/s peak => 5 ns/byte).
    pub wire_ns_per_byte: f64,
    /// Cost of a kernel trap (entry + exit), used by the kernel-mediated
    /// baselines (NX) and by blocking-receive wakeups.
    pub trap: SimDuration,
    /// Software memory-copy cost per byte (load + store on a 50MHz i860).
    pub copy_ns_per_byte: f64,
    /// Fixed per-call software overhead of a procedure call plus argument
    /// checking in a messaging library.
    pub call_overhead: SimDuration,
}

impl CostModel {
    /// The calibrated Intel Paragon (MP3 node) preset.
    pub fn paragon() -> Self {
        CostModel {
            line_size: 32,
            cache: CacheCosts {
                hit: SimDuration::from_ns(20),
                miss: SimDuration::from_ns(200),
                // A miss whose line is dirty in the other cache costs a
                // flush + cache-to-cache transfer on top (640ns total); an
                // invalidating write costs a bus upgrade transaction (470ns
                // total). Both are far costlier than a plain memory fill,
                // which is why the paper's cold-start exchanges (no remote
                // copies yet) run ~3µs faster than steady state.
                remote_dirty_extra: SimDuration::from_ns(440),
                invalidate_extra: SimDuration::from_ns(450),
                locked_rmw: SimDuration::from_ns(2_500),
            },
            poll_gap: SimDuration::from_ns(500),
            dma_setup: SimDuration::from_ns(800),
            hop: SimDuration::from_ns(40),
            wire_ns_per_byte: 5.0,
            trap: SimDuration::from_ns(3_500),
            copy_ns_per_byte: 15.0,
            call_overhead: SimDuration::from_ns(200),
        }
    }

    /// Serialization time of `bytes` on one mesh link.
    pub fn wire_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_ns_f64(self.wire_ns_per_byte * bytes as f64)
    }

    /// Software copy time for `bytes`.
    pub fn copy_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_ns_f64(self.copy_ns_per_byte * bytes as f64)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paragon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paragon_wire_rate_is_200_mb_per_s() {
        let m = CostModel::paragon();
        // 200 MB/s == 5 ns/byte.
        assert_eq!(m.wire_time(1_000), SimDuration::from_ns(5_000));
    }

    #[test]
    fn copy_is_slower_than_wire() {
        let m = CostModel::paragon();
        assert!(m.copy_time(120) > m.wire_time(120));
    }

    #[test]
    fn locked_rmw_dominates_cache_hit() {
        let m = CostModel::paragon();
        assert!(m.cache.locked_rmw.as_ns() > 50 * m.cache.hit.as_ns());
    }
}
