//! Simulated time.
//!
//! All simulation time is kept in integer nanoseconds. The paper reports
//! latencies in microseconds with a 6.25 ns/byte slope, so nanosecond
//! resolution is sufficient and integer arithmetic keeps every run exactly
//! reproducible.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `ns` nanoseconds after the start of the run.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the instant as nanoseconds since the start of the run.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the instant as (fractional) microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulated time never runs
    /// backwards, so this indicates a logic error in the caller.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::duration_since: `earlier` is in the future"),
        )
    }

    /// Saturating duration from `earlier` to `self`; zero if `earlier` is
    /// later.
    #[inline]
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `ns` nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration of `us` microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from fractional nanoseconds, rounding to nearest.
    ///
    /// Useful for per-byte costs such as the paper's 6.25 ns/byte slope.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "negative duration");
        SimDuration(ns.round() as u64)
    }

    /// Returns the duration in nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the duration as (fractional) microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction; zero if `other` is longer.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_ns(1_000);
        let d = SimDuration::from_us(2);
        assert_eq!((t + d).as_ns(), 3_000);
        assert_eq!((t + d) - t, SimDuration::from_ns(2_000));
        assert_eq!((t + d).duration_since(t).as_us(), 2.0);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_us(1), SimDuration::from_ns(1_000));
        assert_eq!(SimDuration::from_ms(1), SimDuration::from_us(1_000));
        assert_eq!(
            SimDuration::from_ns_f64(6.25 * 4.0),
            SimDuration::from_ns(25)
        );
    }

    #[test]
    fn fractional_ns_rounds_to_nearest() {
        assert_eq!(SimDuration::from_ns_f64(6.25).as_ns(), 6);
        assert_eq!(SimDuration::from_ns_f64(6.5).as_ns(), 7);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn duration_since_panics_on_reversed_order() {
        let _ = SimTime::from_ns(1).duration_since(SimTime::from_ns(2));
    }

    #[test]
    fn saturating_ops_clamp_to_zero() {
        let a = SimTime::from_ns(5);
        let b = SimTime::from_ns(9);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_ns(3).saturating_sub(SimDuration::from_ns(7)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn sum_and_scalar_ops() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ns).sum();
        assert_eq!(total.as_ns(), 10);
        assert_eq!((SimDuration::from_ns(6) * 4).as_ns(), 24);
        assert_eq!((SimDuration::from_ns(25) / 4).as_ns(), 6);
    }
}
