//! Simulation substrate for the FLIPC reproduction.
//!
//! The paper evaluates FLIPC on Intel Paragon MP3 nodes — hardware we do not
//! have — so the evaluation experiments run on a deterministic discrete-event
//! simulation of that platform. This crate provides the pieces every
//! simulated experiment shares:
//!
//! * [`time`] — integer-nanosecond simulated clocks,
//! * [`executor`] — the discrete-event kernel ([`executor::Sim`]),
//! * [`cache`] — a MESI-style coherent-cache model of the MP3 node (the
//!   source of the paper's false-sharing, bus-locked-TAS and cold-start
//!   effects),
//! * [`cost`] — the calibrated hardware cost parameters,
//! * [`stats`] — mean/stddev/percentiles and line fitting for the figures,
//! * [`rng`] — a seeded PRNG so every run is reproducible.
//!
//! Nothing in this crate knows about FLIPC itself; the protocol models live
//! in `flipc-paragon` and `flipc-baselines`, and the real (host) FLIPC
//! implementation in `flipc-core`/`flipc-engine` does not use this crate at
//! all.

pub mod cache;
pub mod cost;
pub mod executor;
pub mod rng;
pub mod stats;
pub mod time;

pub use cache::{CacheCosts, CacheStats, CoherentBus, CpuId, CPU_APP, CPU_MCP};
pub use cost::CostModel;
pub use executor::{EventId, Sim};
pub use rng::SimRng;
pub use stats::{linear_fit, percentile, LineFit, RunningStats};
pub use time::{SimDuration, SimTime};
