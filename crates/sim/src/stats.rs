//! Statistics used by the benchmark harnesses.
//!
//! The Figure 4 reproduction needs a mean and standard deviation per message
//! size and a least-squares line fit (to extract the paper's
//! `15.45µs + 6.25 ns/byte` form), so this module provides Welford running
//! statistics, percentile extraction and simple linear regression.

use crate::time::SimDuration;

/// Single-pass (Welford) mean/variance accumulator.
#[derive(Clone, Debug, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a duration sample, in nanoseconds.
    pub fn push_duration(&mut self, d: SimDuration) {
        self.push(d.as_ns() as f64);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n-1 denominator; 0 for fewer than two
    /// samples).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Result of a least-squares line fit `y = intercept + slope * x`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LineFit {
    /// Intercept (value of `y` at `x = 0`).
    pub intercept: f64,
    /// Slope (`dy/dx`).
    pub slope: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r2: f64,
}

/// Least-squares fit of `y = a + b x` over paired samples.
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than two points, or
/// if all `x` are identical.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LineFit {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    assert!(xs.len() >= 2, "need at least two points to fit a line");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    assert!(sxx > 0.0, "all x values identical; slope undefined");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LineFit {
        intercept,
        slope,
        r2,
    }
}

/// Returns the `p`-th percentile (0–100, nearest-rank) of `samples`.
///
/// # Panics
///
/// Panics if `samples` is empty or `p` is outside `[0, 100]`.
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of empty sample set");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    if p == 0.0 {
        return samples[0];
    }
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.saturating_sub(1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_match_direct_computation() {
        let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &samples {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is sqrt(32/7).
        assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn single_sample_has_zero_stddev() {
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn push_duration_uses_nanoseconds() {
        let mut s = RunningStats::new();
        s.push_duration(SimDuration::from_us(2));
        assert_eq!(s.mean(), 2_000.0);
    }

    #[test]
    fn fit_recovers_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 32.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 15_450.0 + 6.25 * x).collect();
        let fit = linear_fit(&xs, &ys);
        assert!((fit.intercept - 15_450.0).abs() < 1e-6);
        assert!((fit.slope - 6.25).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_of_noisy_line_has_reasonable_r2() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 3.0 + 2.0 * x + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let fit = linear_fit(&xs, &ys);
        assert!((fit.slope - 2.0).abs() < 0.02);
        assert!(fit.r2 > 0.99);
    }

    #[test]
    fn flat_data_r2_is_one() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        let fit = linear_fit(&xs, &ys);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut v = vec![15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&mut v, 0.0), 15.0);
        assert_eq!(percentile(&mut v, 30.0), 20.0);
        assert_eq!(percentile(&mut v, 40.0), 20.0);
        assert_eq!(percentile(&mut v, 50.0), 35.0);
        assert_eq!(percentile(&mut v, 100.0), 50.0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn fit_needs_two_points() {
        let _ = linear_fit(&[1.0], &[2.0]);
    }
}
