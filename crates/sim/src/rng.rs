//! A small deterministic PRNG for simulation jitter and workloads.
//!
//! The simulator must be exactly reproducible from a seed, so it carries its
//! own xoshiro256** implementation rather than depending on thread-local or
//! OS entropy. The paper reports standard deviations of 0.5–0.65µs on its
//! latency measurements; the jitter helpers here are how the models inject
//! comparable measurement noise (e.g. the random phase of the engine's
//! polling loop).

/// xoshiro256** pseudo-random generator (public-domain algorithm by
/// Blackman & Vigna), seeded via splitmix64.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is invalid for xoshiro; splitmix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        SimRng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift reduction with rejection for exactness.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // Inverse CDF; clamp away from ln(0).
        let u = self.f64().max(1e-300);
        -mean * u.ln()
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(42);
        for bound in [1u64, 2, 3, 7, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn below_covers_small_range() {
        let mut r = SimRng::new(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = SimRng::new(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match r.range_inclusive(10, 12) {
                10 => lo_seen = true,
                12 => hi_seen = true,
                11 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_is_unit_interval_with_sane_mean() {
        let mut r = SimRng::new(11);
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = SimRng::new(13);
        const N: usize = 20_000;
        let mean: f64 = (0..N).map(|_| r.exponential(250.0)).sum::<f64>() / N as f64;
        assert!((mean - 250.0).abs() < 15.0, "mean {mean} far from 250");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn reversed_range_panics() {
        SimRng::new(0).range_inclusive(5, 4);
    }
}
