//! A small coherent-cache model for the simulated Paragon MP3 node.
//!
//! The paper's performance story is dominated by cache behaviour: bus-locked
//! test-and-set (locks are not cached on the Paragon), false sharing of
//! application- and engine-written fields in one 32-byte line, and a
//! cold-start transient where lines are not yet shared and therefore writes
//! do not pay invalidation traffic. This module models exactly enough MESI
//! behaviour between the node's processors to reproduce those effects: per
//! line and per processor we track Invalid/Shared/Modified, and each access
//! returns the simulated time it costs.
//!
//! This is an infinite-capacity model — the 16KB i860 caches are large
//! enough for FLIPC's working set inside the test loop, and the paper's
//! capacity effect ("saving results evicts lines between cycles") is modeled
//! explicitly via [`CoherentBus::evict_all`].

use crate::time::SimDuration;
use std::collections::HashMap;

/// Identifies one processor on the node (the MP3 node has three; FLIPC uses
/// the application processor(s) and the message coprocessor).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CpuId(pub u8);

/// The application processor in the two-party experiments.
pub const CPU_APP: CpuId = CpuId(0);
/// The dedicated message coprocessor.
pub const CPU_MCP: CpuId = CpuId(1);

/// Maximum processors per node supported by the model (MP3 = 3).
pub const MAX_CPUS: usize = 4;

/// Per-access costs of the coherence protocol.
#[derive(Clone, Copy, Debug)]
pub struct CacheCosts {
    /// Read or write that hits in the local cache with sufficient ownership.
    pub hit: SimDuration,
    /// Fill from memory on a miss (read or write-allocate).
    pub miss: SimDuration,
    /// Additional cost when the missing line is Modified in another cache
    /// (flush / cache-to-cache transfer).
    pub remote_dirty_extra: SimDuration,
    /// Additional cost of the bus transaction that invalidates remote copies
    /// on a write (upgrade or write-miss with sharers).
    pub invalidate_extra: SimDuration,
    /// A bus-locked read-modify-write. On the Paragon "the caches do not
    /// implement cache residency for multiprocessor locks", so this is an
    /// uncached locked bus transaction and is expensive.
    pub locked_rmw: SimDuration,
}

/// Per-processor access statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses satisfied locally.
    pub hits: u64,
    /// Accesses that filled from memory.
    pub misses: u64,
    /// Misses whose line was dirty in a remote cache.
    pub remote_dirty: u64,
    /// Writes that had to invalidate one or more remote copies.
    pub invalidations: u64,
    /// Bus-locked read-modify-write operations.
    pub locked_rmws: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LineState {
    Invalid,
    Shared,
    Modified,
}

/// The shared bus connecting the node's caches; owns all line state.
pub struct CoherentBus {
    line_size: u64,
    costs: CacheCosts,
    lines: HashMap<u64, [LineState; MAX_CPUS]>,
    stats: [CacheStats; MAX_CPUS],
}

impl CoherentBus {
    /// Creates a bus with the given line size (32 bytes on the Paragon) and
    /// cost parameters. All caches start empty (every line Invalid).
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    pub fn new(line_size: u64, costs: CacheCosts) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        CoherentBus {
            line_size,
            costs,
            lines: HashMap::new(),
            stats: [CacheStats::default(); MAX_CPUS],
        }
    }

    /// The configured cache line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Statistics accumulated for `cpu`.
    pub fn stats(&self, cpu: CpuId) -> CacheStats {
        self.stats[cpu.0 as usize]
    }

    /// Clears all statistics (line states are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = [CacheStats::default(); MAX_CPUS];
    }

    fn line_range(&self, addr: u64, len: u64) -> std::ops::RangeInclusive<u64> {
        debug_assert!(len > 0, "zero-length access");
        let first = addr / self.line_size;
        let last = (addr + len - 1) / self.line_size;
        first..=last
    }

    /// Simulates `cpu` reading `len` bytes at `addr`; returns the cost.
    pub fn read(&mut self, cpu: CpuId, addr: u64, len: u64) -> SimDuration {
        let mut cost = SimDuration::ZERO;
        for line in self.line_range(addr, len) {
            cost += self.read_line(cpu, line);
        }
        cost
    }

    /// Simulates `cpu` writing `len` bytes at `addr`; returns the cost.
    pub fn write(&mut self, cpu: CpuId, addr: u64, len: u64) -> SimDuration {
        let mut cost = SimDuration::ZERO;
        for line in self.line_range(addr, len) {
            cost += self.write_line(cpu, line);
        }
        cost
    }

    /// Simulates a bus-locked read-modify-write (test-and-set) by `cpu` on
    /// the line containing `addr`. The operation bypasses the caches and
    /// invalidates every cached copy of the line.
    pub fn locked_rmw(&mut self, cpu: CpuId, addr: u64) -> SimDuration {
        let line = addr / self.line_size;
        let states = self
            .lines
            .entry(line)
            .or_insert([LineState::Invalid; MAX_CPUS]);
        for st in states.iter_mut() {
            *st = LineState::Invalid;
        }
        self.stats[cpu.0 as usize].locked_rmws += 1;
        self.costs.locked_rmw
    }

    /// Evicts every line from `cpu`'s cache, writing back dirty data.
    ///
    /// Models the paper's observation that code executed outside the test
    /// loop (saving results) replaces a significant portion of the small
    /// i860 caches.
    pub fn evict_all(&mut self, cpu: CpuId) {
        for states in self.lines.values_mut() {
            states[cpu.0 as usize] = LineState::Invalid;
        }
    }

    /// Drops all cached state everywhere (cold machine).
    pub fn flush_machine(&mut self) {
        self.lines.clear();
    }

    fn read_line(&mut self, cpu: CpuId, line: u64) -> SimDuration {
        let me = cpu.0 as usize;
        let states = self
            .lines
            .entry(line)
            .or_insert([LineState::Invalid; MAX_CPUS]);
        match states[me] {
            LineState::Shared | LineState::Modified => {
                self.stats[me].hits += 1;
                self.costs.hit
            }
            LineState::Invalid => {
                let mut cost = self.costs.miss;
                self.stats[me].misses += 1;
                // A remote Modified copy must be flushed; both copies end up
                // Shared.
                let mut remote_dirty = false;
                for (i, st) in states.iter_mut().enumerate() {
                    if i != me && *st == LineState::Modified {
                        *st = LineState::Shared;
                        remote_dirty = true;
                    }
                }
                if remote_dirty {
                    cost += self.costs.remote_dirty_extra;
                    self.stats[me].remote_dirty += 1;
                }
                states[me] = LineState::Shared;
                cost
            }
        }
    }

    fn write_line(&mut self, cpu: CpuId, line: u64) -> SimDuration {
        let me = cpu.0 as usize;
        let states = self
            .lines
            .entry(line)
            .or_insert([LineState::Invalid; MAX_CPUS]);
        let others_have_copy = states
            .iter()
            .enumerate()
            .any(|(i, st)| i != me && *st != LineState::Invalid);
        let others_dirty = states
            .iter()
            .enumerate()
            .any(|(i, st)| i != me && *st == LineState::Modified);
        let mut cost;
        match states[me] {
            LineState::Modified => {
                debug_assert!(!others_have_copy, "two Modified copies");
                self.stats[me].hits += 1;
                cost = self.costs.hit;
            }
            LineState::Shared => {
                // Upgrade: hit locally, but sharers must be invalidated.
                self.stats[me].hits += 1;
                cost = self.costs.hit;
                if others_have_copy {
                    cost += self.costs.invalidate_extra;
                    self.stats[me].invalidations += 1;
                }
            }
            LineState::Invalid => {
                self.stats[me].misses += 1;
                cost = self.costs.miss;
                if others_dirty {
                    cost += self.costs.remote_dirty_extra;
                    self.stats[me].remote_dirty += 1;
                }
                if others_have_copy {
                    cost += self.costs.invalidate_extra;
                    self.stats[me].invalidations += 1;
                }
            }
        }
        for (i, st) in states.iter_mut().enumerate() {
            *st = if i == me {
                LineState::Modified
            } else {
                LineState::Invalid
            };
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> CacheCosts {
        CacheCosts {
            hit: SimDuration::from_ns(20),
            miss: SimDuration::from_ns(340),
            remote_dirty_extra: SimDuration::from_ns(160),
            invalidate_extra: SimDuration::from_ns(300),
            locked_rmw: SimDuration::from_ns(2_000),
        }
    }

    fn bus() -> CoherentBus {
        CoherentBus::new(32, costs())
    }

    #[test]
    fn cold_read_misses_then_hits() {
        let mut b = bus();
        assert_eq!(b.read(CPU_APP, 0, 4), SimDuration::from_ns(340));
        assert_eq!(b.read(CPU_APP, 4, 4), SimDuration::from_ns(20));
        assert_eq!(b.stats(CPU_APP).misses, 1);
        assert_eq!(b.stats(CPU_APP).hits, 1);
    }

    #[test]
    fn access_spanning_lines_pays_per_line() {
        let mut b = bus();
        // 64 bytes starting at 0 covers two 32-byte lines.
        assert_eq!(b.read(CPU_APP, 0, 64), SimDuration::from_ns(680));
        assert_eq!(b.stats(CPU_APP).misses, 2);
    }

    #[test]
    fn write_to_shared_line_pays_invalidation() {
        let mut b = bus();
        b.read(CPU_APP, 0, 4);
        b.read(CPU_MCP, 0, 4);
        // Both Shared; now the app writes: local hit + invalidate remote.
        let c = b.write(CPU_APP, 0, 4);
        assert_eq!(c, SimDuration::from_ns(20 + 300));
        assert_eq!(b.stats(CPU_APP).invalidations, 1);
        // Remote copy is gone: the coprocessor's next read misses and finds
        // the line dirty in the app cache.
        let c = b.read(CPU_MCP, 0, 4);
        assert_eq!(c, SimDuration::from_ns(340 + 160));
        assert_eq!(b.stats(CPU_MCP).remote_dirty, 1);
    }

    #[test]
    fn write_to_unshared_line_is_cheaper_than_to_shared_line() {
        // This asymmetry is the paper's cold-start transient: at start-up the
        // other processor has not yet cached the line, so writes do not pay
        // invalidation traffic.
        let mut b = bus();
        let cold = b.write(CPU_APP, 0, 4);
        b.read(CPU_MCP, 0, 4); // establishes sharing
        let steady = b.write(CPU_APP, 0, 4);
        assert!(steady > SimDuration::ZERO);
        assert!(
            cold > steady - SimDuration::from_ns(1),
            "cold write missed; steady is upgrade"
        );
        // After the handshake settles, repeated write/read cycles keep paying
        // coherence costs.
        b.read(CPU_MCP, 0, 4);
        let again = b.write(CPU_APP, 0, 4);
        assert_eq!(again, SimDuration::from_ns(20 + 300));
    }

    #[test]
    fn repeated_exclusive_writes_hit() {
        let mut b = bus();
        b.write(CPU_APP, 0, 4);
        assert_eq!(b.write(CPU_APP, 0, 4), SimDuration::from_ns(20));
        assert_eq!(b.write(CPU_APP, 8, 8), SimDuration::from_ns(20));
    }

    #[test]
    fn false_sharing_bounces_the_line() {
        // App writes byte 0, MCP writes byte 8 of the same 32-byte line:
        // every access misses or invalidates, never a cheap hit.
        let mut b = bus();
        b.write(CPU_APP, 0, 4);
        let mut expensive = 0;
        for _ in 0..10 {
            if b.write(CPU_MCP, 8, 4) > costs().hit {
                expensive += 1;
            }
            if b.write(CPU_APP, 0, 4) > costs().hit {
                expensive += 1;
            }
        }
        assert_eq!(
            expensive, 20,
            "every falsely-shared write pays coherence cost"
        );
        // Padded to separate lines, the same pattern is all hits after warmup.
        b.write(CPU_APP, 64, 4);
        b.write(CPU_MCP, 128, 4);
        for _ in 0..10 {
            assert_eq!(b.write(CPU_APP, 64, 4), costs().hit);
            assert_eq!(b.write(CPU_MCP, 128, 4), costs().hit);
        }
    }

    #[test]
    fn locked_rmw_is_expensive_and_invalidates() {
        let mut b = bus();
        b.read(CPU_APP, 0, 4);
        assert_eq!(b.locked_rmw(CPU_APP, 0), SimDuration::from_ns(2_000));
        assert_eq!(b.stats(CPU_APP).locked_rmws, 1);
        // The locked op bypassed and invalidated the cached copy.
        assert_eq!(b.read(CPU_APP, 0, 4), SimDuration::from_ns(340));
    }

    #[test]
    fn evict_all_forces_refills_for_one_cpu_only() {
        let mut b = bus();
        b.read(CPU_APP, 0, 4);
        b.read(CPU_MCP, 0, 4);
        b.evict_all(CPU_APP);
        assert_eq!(b.read(CPU_APP, 0, 4), SimDuration::from_ns(340));
        assert_eq!(b.read(CPU_MCP, 0, 4), SimDuration::from_ns(20));
    }

    #[test]
    fn flush_machine_resets_everything() {
        let mut b = bus();
        b.write(CPU_APP, 0, 4);
        b.flush_machine();
        assert_eq!(b.read(CPU_MCP, 0, 4), SimDuration::from_ns(340));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_size_panics() {
        let _ = CoherentBus::new(48, costs());
    }
}
