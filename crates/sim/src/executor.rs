//! The discrete-event simulation kernel.
//!
//! [`Sim<S>`] owns a user-supplied world state `S` and a time-ordered event
//! queue. Events are boxed closures invoked with exclusive access to the
//! whole simulation, so they can both mutate the world and schedule further
//! events. Ties in firing time are broken by insertion order, which makes
//! every run deterministic.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::{SimDuration, SimTime};

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

/// An event body: a one-shot closure run with exclusive simulation access.
pub type EventFn<S> = Box<dyn FnOnce(&mut Sim<S>)>;

struct Scheduled<S> {
    at: SimTime,
    seq: u64,
    f: EventFn<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event simulator over world state `S`.
///
/// # Examples
///
/// ```
/// use flipc_sim::executor::Sim;
/// use flipc_sim::time::SimDuration;
///
/// let mut sim = Sim::new(0u32);
/// sim.schedule_in(SimDuration::from_ns(10), |sim| {
///     sim.state += 1;
///     sim.schedule_in(SimDuration::from_ns(5), |sim| sim.state += 10);
/// });
/// sim.run();
/// assert_eq!(sim.state, 11);
/// assert_eq!(sim.now().as_ns(), 15);
/// ```
pub struct Sim<S> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<S>>,
    cancelled: HashSet<EventId>,
    /// The simulated world, freely accessible to event bodies.
    pub state: S,
}

impl<S> Sim<S> {
    /// Creates a simulator at time zero over `state`.
    pub fn new(state: S) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            state,
        }
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events still pending (including cancelled-but-unpopped).
    pub fn pending(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// Schedules `f` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut Sim<S>) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at:?} < {:?})",
            self.now
        );
        let id = EventId(self.seq);
        self.queue.push(Scheduled {
            at,
            seq: self.seq,
            f: Box::new(f),
        });
        self.seq += 1;
        id
    }

    /// Schedules `f` to fire `after` from now.
    pub fn schedule_in<F>(&mut self, after: SimDuration, f: F) -> EventId
    where
        F: FnOnce(&mut Sim<S>) + 'static,
    {
        self.schedule_at(self.now + after, f)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (or been cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.seq {
            return false;
        }
        self.cancelled.insert(id)
    }

    /// Fires the next pending event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        while let Some(ev) = self.queue.pop() {
            if self.cancelled.remove(&EventId(ev.seq)) {
                continue;
            }
            debug_assert!(ev.at >= self.now, "event queue went backwards");
            self.now = ev.at;
            (ev.f)(self);
            return true;
        }
        false
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs events with firing time `<= deadline`, then advances the clock
    /// to `deadline` (if it is later than the last fired event).
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            // Skip over cancelled entries at the head so peeking sees a live
            // event time.
            while let Some(head) = self.queue.peek() {
                if self.cancelled.contains(&EventId(head.seq)) {
                    let popped = self.queue.pop().expect("peeked entry vanished");
                    self.cancelled.remove(&EventId(popped.seq));
                } else {
                    break;
                }
            }
            match self.queue.peek() {
                Some(head) if head.at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if deadline > self.now {
            self.now = deadline;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(Vec::new());
        sim.schedule_at(SimTime::from_ns(30), |s| s.state.push(3));
        sim.schedule_at(SimTime::from_ns(10), |s| s.state.push(1));
        sim.schedule_at(SimTime::from_ns(20), |s| s.state.push(2));
        sim.run();
        assert_eq!(sim.state, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_ns(30));
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut sim = Sim::new(Vec::new());
        for i in 0..16 {
            sim.schedule_at(SimTime::from_ns(5), move |s| s.state.push(i));
        }
        sim.run();
        assert_eq!(sim.state, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(0u64);
        fn tick(sim: &mut Sim<u64>) {
            sim.state += 1;
            if sim.state < 100 {
                sim.schedule_in(SimDuration::from_ns(7), tick);
            }
        }
        sim.schedule_in(SimDuration::ZERO, tick);
        sim.run();
        assert_eq!(sim.state, 100);
        assert_eq!(sim.now().as_ns(), 99 * 7);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim = Sim::new(0u32);
        let id = sim.schedule_in(SimDuration::from_ns(10), |s| s.state += 1);
        sim.schedule_in(SimDuration::from_ns(20), |s| s.state += 10);
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel must report false");
        sim.run();
        assert_eq!(sim.state, 10);
    }

    #[test]
    fn cancel_of_unknown_id_is_false() {
        let mut sim: Sim<()> = Sim::new(());
        assert!(!sim.cancel(EventId(42)));
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Sim::new(Vec::new());
        sim.schedule_at(SimTime::from_ns(10), |s| s.state.push(10));
        sim.schedule_at(SimTime::from_ns(50), |s| s.state.push(50));
        sim.run_until(SimTime::from_ns(30));
        assert_eq!(sim.state, vec![10]);
        assert_eq!(sim.now(), SimTime::from_ns(30));
        sim.run();
        assert_eq!(sim.state, vec![10, 50]);
    }

    #[test]
    fn run_until_skips_cancelled_head() {
        let mut sim = Sim::new(0u32);
        let id = sim.schedule_at(SimTime::from_ns(10), |s| s.state += 1);
        sim.schedule_at(SimTime::from_ns(20), |s| s.state += 2);
        sim.cancel(id);
        sim.run_until(SimTime::from_ns(15));
        assert_eq!(sim.state, 0);
        sim.run_until(SimTime::from_ns(25));
        assert_eq!(sim.state, 2);
    }

    #[test]
    fn pending_accounts_for_cancellations() {
        let mut sim: Sim<()> = Sim::new(());
        let a = sim.schedule_in(SimDuration::from_ns(1), |_| {});
        let _b = sim.schedule_in(SimDuration::from_ns(2), |_| {});
        assert_eq!(sim.pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Sim::new(());
        sim.schedule_at(SimTime::from_ns(10), |_| {});
        sim.run();
        sim.schedule_at(SimTime::from_ns(5), |_| {});
    }
}

impl<S: 'static> Sim<S> {
    /// Schedules `f` every `period` starting at `first`, until it returns
    /// `false`. Convenience for periodic real-time traffic sources.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (the event would recur at the same
    /// instant forever).
    pub fn schedule_every<F>(&mut self, first: SimTime, period: SimDuration, f: F)
    where
        F: FnMut(&mut Sim<S>) -> bool + 'static,
    {
        assert!(period > SimDuration::ZERO, "zero period");
        fn tick<S: 'static, F>(sim: &mut Sim<S>, period: SimDuration, mut f: F)
        where
            F: FnMut(&mut Sim<S>) -> bool + 'static,
        {
            if f(sim) {
                sim.schedule_in(period, move |sim| tick(sim, period, f));
            }
        }
        self.schedule_at(first, move |sim| tick(sim, period, f));
    }
}

#[cfg(test)]
mod periodic_tests {
    use super::*;

    #[test]
    fn periodic_events_fire_on_schedule_until_stopped() {
        let mut sim = Sim::new(Vec::new());
        sim.schedule_every(SimTime::from_ns(100), SimDuration::from_ns(50), |sim| {
            let t = sim.now().as_ns();
            sim.state.push(t);
            t < 300
        });
        sim.run();
        assert_eq!(sim.state, vec![100, 150, 200, 250, 300]);
    }

    #[test]
    fn two_periodic_sources_interleave_deterministically() {
        let mut sim = Sim::new(Vec::new());
        sim.schedule_every(SimTime::from_ns(0), SimDuration::from_ns(30), |sim| {
            let t = sim.now().as_ns();
            sim.state.push(('a', t));
            t < 90
        });
        sim.schedule_every(SimTime::from_ns(15), SimDuration::from_ns(30), |sim| {
            let t = sim.now().as_ns();
            sim.state.push(('b', t));
            t < 90
        });
        sim.run();
        let times: Vec<u64> = sim.state.iter().map(|&(_, t)| t).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "time order must hold across sources");
        assert_eq!(sim.state.len(), 8);
    }

    #[test]
    #[should_panic(expected = "zero period")]
    fn zero_period_panics() {
        let mut sim: Sim<()> = Sim::new(());
        sim.schedule_every(SimTime::ZERO, SimDuration::ZERO, |_| true);
    }
}
