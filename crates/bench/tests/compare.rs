//! End-to-end checks of the `BENCH.json` schema and the regression
//! comparator: a report written to disk must read back identical, and an
//! injected 3x latency regression must be flagged past a 2x tolerance —
//! exactly the path CI's perf-smoke job exercises.

use flipc_bench::report::{compare, Direction, Metric, Report, SCHEMA_VERSION};

fn sample_report(rev: &str) -> Report {
    let mut r = Report::new(rev, true);
    r.push(Metric {
        name: "oneway_p50_ns_56B".into(),
        unit: "ns".into(),
        value: 1500.0,
        p50: Some(1500.0),
        p99: Some(4200.0),
        direction: Direction::LowerIsBetter,
        gate: true,
    });
    r.push(Metric {
        name: "udp_rtt_p50_ns".into(),
        unit: "ns".into(),
        value: 11000.0,
        p50: Some(11000.0),
        p99: Some(36000.0),
        direction: Direction::LowerIsBetter,
        gate: true,
    });
    r.push(Metric {
        name: "loss10_delivery_ratio".into(),
        unit: "ratio".into(),
        value: 1.0,
        p50: None,
        p99: None,
        direction: Direction::HigherIsBetter,
        gate: true,
    });
    r
}

#[test]
fn written_report_reads_back_identical() {
    let report = sample_report("abc1234");
    let path = std::env::temp_dir().join(format!("flipc_bench_{}.json", std::process::id()));
    std::fs::write(&path, report.render_json()).unwrap();
    let back = Report::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(back, report);
    assert_eq!(back.schema, SCHEMA_VERSION);
}

#[test]
fn injected_3x_regression_is_flagged_at_2x_tolerance() {
    let baseline = sample_report("base");
    let mut regressed = sample_report("head");
    regressed.metrics[1].value *= 3.0; // udp_rtt_p50_ns triples

    let regs = compare(&baseline, &regressed, 2.0).unwrap();
    assert_eq!(regs.len(), 1, "exactly the injected regression: {regs:?}");
    assert_eq!(regs[0].name, "udp_rtt_p50_ns");
    assert!((regs[0].factor - 3.0).abs() < 1e-9);

    // The same pair passes a 4x gate.
    assert!(compare(&baseline, &regressed, 4.0).unwrap().is_empty());
}

#[test]
fn collapsed_delivery_ratio_is_a_regression_too() {
    let baseline = sample_report("base");
    let mut broken = sample_report("head");
    broken.metrics[2].value = 0.25; // delivered a quarter of the frames
    let regs = compare(&baseline, &broken, 2.0).unwrap();
    assert_eq!(regs.len(), 1);
    assert_eq!(regs[0].name, "loss10_delivery_ratio");
    assert!((regs[0].factor - 4.0).abs() < 1e-9);
}

#[test]
fn schema_skew_refuses_to_compare() {
    let baseline = sample_report("base");
    let mut future = sample_report("head");
    future.schema += 1;
    assert!(compare(&baseline, &future, 2.0).is_err());
}
