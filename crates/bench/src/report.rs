//! Machine-readable performance reports (`BENCH.json`) and the pure-Rust
//! regression comparator behind `bench-report --compare`.
//!
//! A [`Report`] is a flat list of named [`Metric`]s plus provenance
//! (schema version, git revision, quick/full mode). It serializes through
//! [`flipc_obs::json`] — no external dependencies — so CI can archive the
//! file as an artifact and diff runs across commits. The comparator
//! ([`compare`]) is direction-aware: a latency metric regresses when it
//! grows, a delivery-ratio metric regresses when it shrinks.
//!
//! Everything in this module is pure data and arithmetic; the measurement
//! loops live in the `bench-report` binary so they can be rerun or
//! replaced without touching the schema.

use flipc_obs::json::Value;

/// Version stamp written into every `BENCH.json`. Bump when the metric
/// list or field meanings change incompatibly; the comparator refuses to
/// diff across schema versions.
pub const SCHEMA_VERSION: u64 = 1;

/// Which way "better" points for a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (latencies, retransmit counts).
    LowerIsBetter,
    /// Larger is better (delivery ratios, throughput).
    HigherIsBetter,
}

impl Direction {
    /// The string written into JSON (`"lower"` / `"higher"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::LowerIsBetter => "lower",
            Direction::HigherIsBetter => "higher",
        }
    }

    /// Parses the JSON form back.
    pub fn parse(s: &str) -> Option<Direction> {
        match s {
            "lower" => Some(Direction::LowerIsBetter),
            "higher" => Some(Direction::HigherIsBetter),
            _ => None,
        }
    }
}

/// One measured quantity.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Stable identifier (`oneway_p50_ns_56B`, `udp_rtt_p50_ns`, ...).
    /// The comparator matches metrics across runs by this name.
    pub name: String,
    /// Unit string for humans (`ns`, `ns/B`, `ratio`, `frames`).
    pub unit: String,
    /// The headline value the comparator diffs.
    pub value: f64,
    /// Median of the underlying samples, when the metric has a
    /// distribution behind it.
    pub p50: Option<f64>,
    /// 99th percentile of the underlying samples.
    pub p99: Option<f64>,
    /// Which way "better" points.
    pub direction: Direction,
    /// Whether the comparator gates on this metric. Derived or intrinsically
    /// noisy quantities (e.g. the fitted ns/byte slope, whose signal is
    /// small against the flat per-message cost) are reported for humans but
    /// excluded from the CI pass/fail decision.
    pub gate: bool,
}

/// A complete performance report: provenance plus metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Schema version ([`SCHEMA_VERSION`] when produced by this build).
    pub schema: u64,
    /// Git revision the suite ran against (or `"unknown"`).
    pub git_rev: String,
    /// True when produced by `--quick` (fewer iterations; CI smoke mode).
    pub quick: bool,
    /// The measurements, in suite order.
    pub metrics: Vec<Metric>,
}

impl Report {
    /// An empty report stamped with this build's schema version.
    pub fn new(git_rev: impl Into<String>, quick: bool) -> Report {
        Report {
            schema: SCHEMA_VERSION,
            git_rev: git_rev.into(),
            quick,
            metrics: Vec::new(),
        }
    }

    /// Appends a metric.
    pub fn push(&mut self, metric: Metric) {
        self.metrics.push(metric);
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Serializes to the `BENCH.json` object form.
    pub fn to_json(&self) -> Value {
        Value::object(vec![
            ("schema", Value::from(self.schema)),
            ("git_rev", Value::from(self.git_rev.as_str())),
            ("quick", Value::Bool(self.quick)),
            (
                "metrics",
                Value::Array(
                    self.metrics
                        .iter()
                        .map(|m| {
                            let mut fields = vec![
                                ("name", Value::from(m.name.as_str())),
                                ("unit", Value::from(m.unit.as_str())),
                                ("value", Value::from(m.value)),
                            ];
                            if let Some(p50) = m.p50 {
                                fields.push(("p50", Value::from(p50)));
                            }
                            if let Some(p99) = m.p99 {
                                fields.push(("p99", Value::from(p99)));
                            }
                            fields.push(("direction", Value::from(m.direction.as_str())));
                            if !m.gate {
                                fields.push(("gate", Value::Bool(false)));
                            }
                            Value::object(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Pretty-printed `BENCH.json` text (trailing newline included).
    pub fn render_json(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Parses a report back from `BENCH.json` text.
    pub fn parse(text: &str) -> Result<Report, String> {
        let v = Value::parse(text).map_err(|e| e.to_string())?;
        Report::from_json(&v)
    }

    /// Decodes the object form produced by [`Report::to_json`].
    pub fn from_json(v: &Value) -> Result<Report, String> {
        let schema = v
            .get("schema")
            .and_then(Value::as_f64)
            .ok_or("missing schema")? as u64;
        let git_rev = v
            .get("git_rev")
            .and_then(Value::as_str)
            .ok_or("missing git_rev")?
            .to_string();
        let quick = matches!(v.get("quick"), Some(Value::Bool(true)));
        let metrics = v
            .get("metrics")
            .and_then(Value::as_array)
            .ok_or("missing metrics")?
            .iter()
            .map(|m| {
                let name = m
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("metric missing name")?
                    .to_string();
                let unit = m
                    .get("unit")
                    .and_then(Value::as_str)
                    .ok_or("metric missing unit")?
                    .to_string();
                let value = m
                    .get("value")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("metric {name} missing value"))?;
                let direction = m
                    .get("direction")
                    .and_then(Value::as_str)
                    .and_then(Direction::parse)
                    .ok_or_else(|| format!("metric {name} missing direction"))?;
                Ok(Metric {
                    name,
                    unit,
                    value,
                    p50: m.get("p50").and_then(Value::as_f64),
                    p99: m.get("p99").and_then(Value::as_f64),
                    direction,
                    gate: !matches!(m.get("gate"), Some(Value::Bool(false))),
                })
            })
            .collect::<Result<Vec<Metric>, String>>()?;
        Ok(Report {
            schema,
            git_rev,
            quick,
            metrics,
        })
    }
}

/// One metric that moved past the tolerance between two runs.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// The metric that regressed.
    pub name: String,
    /// Baseline value.
    pub old: f64,
    /// Current value.
    pub new: f64,
    /// Worsening factor (always oriented so >1 means worse; e.g. 3.0 for
    /// a latency that tripled or a ratio that dropped to a third).
    pub factor: f64,
}

/// Diffs `new` against the `old` baseline.
///
/// Returns the metrics that got worse by more than `tolerance`
/// (a factor: `2.0` means "no more than 2x worse"). Metrics present in
/// only one report are ignored — adding a metric must not fail CI, and a
/// retired metric must not wedge the baseline. Ungated metrics
/// (`gate: false` in either report) and non-positive baseline values are
/// skipped (a zero-latency baseline makes every factor infinite and means
/// the measurement, not the code, is broken).
///
/// # Errors
///
/// Fails when the schema versions differ — cross-schema factors are not
/// meaningful.
pub fn compare(old: &Report, new: &Report, tolerance: f64) -> Result<Vec<Regression>, String> {
    if old.schema != new.schema {
        return Err(format!(
            "schema mismatch: baseline v{}, current v{} — regenerate the baseline",
            old.schema, new.schema
        ));
    }
    let mut out = Vec::new();
    for m_old in &old.metrics {
        let Some(m_new) = new.get(&m_old.name) else {
            continue;
        };
        if !m_old.gate || !m_new.gate || m_old.value <= 0.0 || m_new.value <= 0.0 {
            continue;
        }
        let factor = match m_old.direction {
            Direction::LowerIsBetter => m_new.value / m_old.value,
            Direction::HigherIsBetter => m_old.value / m_new.value,
        };
        if factor > tolerance {
            out.push(Regression {
                name: m_old.name.clone(),
                old: m_old.value,
                new: m_new.value,
                factor,
            });
        }
    }
    Ok(out)
}

/// Renders a per-metric delta table between two reports as GitHub
/// markdown — the informational trend CI appends to the step summary.
///
/// Every metric present in both reports appears with its baseline value,
/// current value, delta percentage oriented so negative means *better*,
/// and a marker (improved / flat / worse / `(ungated)`). Metrics in only
/// one report are listed as added/retired. Purely informational: callers
/// must not gate on this output (the gate is [`compare`]).
pub fn render_trend(old: &Report, new: &Report) -> String {
    let mut out = String::new();
    out.push_str("### Bench trend vs committed baseline\n\n");
    out.push_str(&format!(
        "Baseline `{}` → current `{}`{}\n\n",
        old.git_rev,
        new.git_rev,
        if new.quick { " (quick mode)" } else { "" }
    ));
    out.push_str("| metric | baseline | current | delta | |\n");
    out.push_str("|---|---:|---:|---:|---|\n");
    for m_old in &old.metrics {
        let Some(m_new) = new.get(&m_old.name) else {
            out.push_str(&format!(
                "| {} | {} | — | retired | |\n",
                m_old.name, m_old.value
            ));
            continue;
        };
        if m_old.value <= 0.0 {
            out.push_str(&format!(
                "| {} | {} | {} | n/a | |\n",
                m_old.name, m_old.value, m_new.value
            ));
            continue;
        }
        // Oriented delta: negative = better, regardless of direction.
        let raw = (m_new.value - m_old.value) / m_old.value * 100.0;
        let delta = match m_old.direction {
            Direction::LowerIsBetter => raw,
            Direction::HigherIsBetter => -raw,
        };
        let marker = if !m_old.gate || !m_new.gate {
            "(ungated)"
        } else if delta <= -5.0 {
            "improved"
        } else if delta < 5.0 {
            "flat"
        } else {
            "worse"
        };
        out.push_str(&format!(
            "| {} | {:.1} {} | {:.1} | {:+.1}% | {} |\n",
            m_old.name, m_old.value, m_old.unit, m_new.value, delta, marker
        ));
    }
    for m_new in &new.metrics {
        if old.get(&m_new.name).is_none() {
            out.push_str(&format!(
                "| {} | — | {:.1} {} | added | |\n",
                m_new.name, m_new.value, m_new.unit
            ));
        }
    }
    out.push_str("\nDelta is oriented so negative is better. Informational only — the gate is the tolerance comparison.\n");
    out
}

/// Parses a `--tolerance` argument: `"2.0"` or `"2.0x"`.
///
/// # Errors
///
/// Fails on non-numeric input or factors below 1.0 (a tolerance under 1
/// would flag improvements as regressions).
pub fn parse_tolerance(s: &str) -> Result<f64, String> {
    let t: f64 = s
        .trim()
        .trim_end_matches(['x', 'X'])
        .parse()
        .map_err(|_| format!("bad tolerance {s:?} (want e.g. 2.0x)"))?;
    if t < 1.0 {
        return Err(format!("tolerance {t} < 1.0 would flag improvements"));
    }
    Ok(t)
}

/// Least-squares line fit through `(x, y)` points, returning
/// `(slope, intercept)`. `None` with fewer than two distinct x values
/// (the slope is undefined).
pub fn fit_slope(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    let n = points.len() as f64;
    if points.len() < 2 {
        return None;
    }
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    Some((slope, intercept))
}

/// Exact percentile of an ascending-sorted sample set (nearest-rank).
/// Returns 0 on an empty slice.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(name: &str, value: f64, direction: Direction) -> Metric {
        Metric {
            name: name.into(),
            unit: "ns".into(),
            value,
            p50: Some(value),
            p99: Some(value * 2.0),
            direction,
            gate: true,
        }
    }

    #[test]
    fn json_roundtrip_preserves_the_report() {
        let mut r = Report::new("abc1234", true);
        r.push(metric("oneway_p50_ns_56B", 812.0, Direction::LowerIsBetter));
        r.push(metric(
            "loss10_delivery_ratio",
            1.0,
            Direction::HigherIsBetter,
        ));
        let text = r.render_json();
        let back = Report::parse(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.schema, SCHEMA_VERSION);
    }

    #[test]
    fn compare_is_direction_aware() {
        let mut old = Report::new("base", false);
        old.push(metric("latency", 100.0, Direction::LowerIsBetter));
        old.push(metric("ratio", 1.0, Direction::HigherIsBetter));

        // Within tolerance both ways.
        let mut new = old.clone();
        new.metrics[0].value = 150.0;
        new.metrics[1].value = 0.8;
        assert!(compare(&old, &new, 2.0).unwrap().is_empty());

        // Latency tripled: flagged. Ratio collapsed: flagged.
        new.metrics[0].value = 300.0;
        new.metrics[1].value = 0.3;
        let regs = compare(&old, &new, 2.0).unwrap();
        assert_eq!(regs.len(), 2);
        assert_eq!(regs[0].name, "latency");
        assert!((regs[0].factor - 3.0).abs() < 1e-9);
        assert!((regs[1].factor - 1.0 / 0.3).abs() < 1e-9);

        // A big improvement is never a regression.
        new.metrics[0].value = 1.0;
        new.metrics[1].value = 10.0;
        assert!(compare(&old, &new, 2.0).unwrap().is_empty());
    }

    #[test]
    fn compare_ignores_asymmetric_metrics_but_rejects_schema_skew() {
        let mut old = Report::new("base", false);
        old.push(metric("gone", 1.0, Direction::LowerIsBetter));
        let mut new = Report::new("head", false);
        new.push(metric("added", 1.0, Direction::LowerIsBetter));
        assert!(compare(&old, &new, 1.0).unwrap().is_empty());

        new.schema = SCHEMA_VERSION + 1;
        assert!(compare(&old, &new, 2.0).is_err());
    }

    #[test]
    fn trend_table_orients_deltas_and_lists_membership_changes() {
        let mut old = Report::new("base", false);
        old.push(metric("latency", 100.0, Direction::LowerIsBetter));
        old.push(metric("throughput", 1000.0, Direction::HigherIsBetter));
        old.push(metric("gone", 5.0, Direction::LowerIsBetter));
        let mut new = Report::new("head", true);
        new.push(metric("latency", 80.0, Direction::LowerIsBetter));
        new.push(metric("throughput", 500.0, Direction::HigherIsBetter));
        new.push(metric("added", 7.0, Direction::LowerIsBetter));

        let t = render_trend(&old, &new);
        assert!(t.contains("`base` → current `head` (quick mode)"));
        // Latency dropped 20%: better, oriented negative.
        assert!(
            t.contains("| latency | 100.0 ns | 80.0 | -20.0% | improved |"),
            "{t}"
        );
        // Throughput halved: a -50% raw change, oriented positive.
        assert!(
            t.contains("| throughput | 1000.0 ns | 500.0 | +50.0% | worse |"),
            "{t}"
        );
        assert!(t.contains("| gone | 5 | — | retired | |"), "{t}");
        assert!(t.contains("| added | — | 7.0 ns | added | |"), "{t}");
        // Informational framing survives.
        assert!(t.contains("Informational only"));
    }

    #[test]
    fn tolerance_accepts_factor_suffix() {
        assert_eq!(parse_tolerance("2.0x").unwrap(), 2.0);
        assert_eq!(parse_tolerance("1.5").unwrap(), 1.5);
        assert!(parse_tolerance("fast").is_err());
        assert!(parse_tolerance("0.5x").is_err());
    }

    #[test]
    fn slope_fit_recovers_a_known_line() {
        // y = 2.5x + 100 exactly.
        let pts: Vec<(f64, f64)> = [0.0, 64.0, 128.0, 256.0, 512.0]
            .iter()
            .map(|&x| (x, 2.5 * x + 100.0))
            .collect();
        let (slope, intercept) = fit_slope(&pts).unwrap();
        assert!((slope - 2.5).abs() < 1e-9);
        assert!((intercept - 100.0).abs() < 1e-9);
        assert!(fit_slope(&pts[..1]).is_none());
        assert!(fit_slope(&[(1.0, 5.0), (1.0, 6.0)]).is_none());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 0.5), 50);
        assert_eq!(percentile(&s, 0.99), 99);
        assert_eq!(percentile(&s, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.5), 7);
    }
}
