//! `bench-report`: the fixed deterministic performance suite behind CI's
//! perf-smoke gate.
//!
//! Runs a small set of end-to-end measurements against the real stack and
//! writes a schema-versioned, machine-readable `BENCH.json`
//! (see [`flipc_bench::report`]):
//!
//! * one-way latency over the in-process loopback fabric at five message
//!   sizes spanning the paper's 50–500 B payload range, plus the fitted
//!   ns/byte slope of that curve,
//! * ping-pong RTT over the loopback fabric and over real `127.0.0.1` UDP
//!   sockets through `flipc-net`'s reliability layer,
//! * recovery under seeded 1% / 10% datagram loss (delivery ratio and
//!   retransmissions per frame — the fault schedule is a fixed, replayable
//!   adversary),
//! * per-frame recovery latency p99 under the seeded 10% adversary with
//!   the adaptive RTO estimator, plus the fixed-RTO schedule as a
//!   non-gated reference,
//! * the engine's own telemetry view of deliver latency (histogram p50),
//!   which cross-checks the external stopwatch numbers.
//!
//! ```text
//! bench-report [--quick] [--out BENCH.json]
//! bench-report --compare OLD.json [--current BENCH.json] [--tolerance 2.0x]
//! bench-report --trend OLD.json [--current BENCH.json]
//! ```
//!
//! `--compare` never reruns the suite: it diffs two report files with the
//! direction-aware comparator and exits non-zero if any metric got worse
//! by more than the tolerance factor. `--trend` renders the same pair as
//! an informational markdown delta table (for `$GITHUB_STEP_SUMMARY`) and
//! always exits zero — the gate is `--compare`, never the trend.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use flipc_bench::report::{
    compare, fit_slope, parse_tolerance, percentile, Direction, Metric, Report,
};
use flipc_core::api::{Flipc, LocalEndpoint};
use flipc_core::commbuf::CommBuffer;
use flipc_core::endpoint::{EndpointAddress, EndpointIndex, EndpointType, FlipcNodeId, Importance};
use flipc_core::layout::Geometry;
use flipc_core::wait::WaitRegistry;
use flipc_engine::engine::{Engine, EngineConfig};
use flipc_engine::node::InlineCluster;
use flipc_engine::transport::Transport;
use flipc_engine::wire::Frame;
use flipc_net::{
    udp_transport, FaultConfig, FaultInjector, ManualClock, MemHub, NetConfig, NetTransport,
    NodeAddr, NodeMap,
};
use flipc_obs::merge::{merge, NodeInput};
use flipc_obs::{trace_ring, TraceEvent};
use flipc_workloads::{
    Broadcast, BroadcastConfig, LogConfig, ReplicatedLog, TierConfig, Tiered, TopicSpec,
};

/// Message sizes (8-byte header + payload) spanning the paper's range.
const MSG_SIZES: [u32; 5] = [64, 96, 160, 288, 544];

/// Suite iteration counts: (warmup, measured) per size point.
const FULL_ITERS: (usize, usize) = (200, 2000);
const QUICK_ITERS: (usize, usize) = (50, 300);

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = String::from("BENCH.json");
    let mut compare_with: Option<String> = None;
    let mut trend_with: Option<String> = None;
    let mut current = String::from("BENCH.json");
    let mut tolerance = 2.0;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = expect_arg(&args, i, "--out");
            }
            "--compare" => {
                i += 1;
                compare_with = Some(expect_arg(&args, i, "--compare"));
            }
            "--trend" => {
                i += 1;
                trend_with = Some(expect_arg(&args, i, "--trend"));
            }
            "--current" => {
                i += 1;
                current = expect_arg(&args, i, "--current");
            }
            "--tolerance" => {
                i += 1;
                let raw = expect_arg(&args, i, "--tolerance");
                tolerance = match parse_tolerance(&raw) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("bench-report: {e}");
                        return ExitCode::from(2);
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench-report [--quick] [--out FILE]\n       \
                     bench-report --compare OLD [--current FILE] [--tolerance 2.0x]\n       \
                     bench-report --trend OLD [--current FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bench-report: unknown flag {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    if let Some(baseline) = compare_with {
        return run_compare(&baseline, &current, tolerance);
    }
    if let Some(baseline) = trend_with {
        return run_trend(&baseline, &current);
    }

    let report = run_suite(quick);
    println!("{}", summarize(&report));
    if let Err(e) = std::fs::write(&out, report.render_json()) {
        eprintln!("bench-report: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    eprintln!(
        "bench-report: wrote {out} ({} metrics)",
        report.metrics.len()
    );
    ExitCode::SUCCESS
}

fn expect_arg(args: &[String], i: usize, flag: &str) -> String {
    args.get(i).cloned().unwrap_or_else(|| {
        eprintln!("bench-report: {flag} needs a value");
        std::process::exit(2);
    })
}

/// Loads two report files, diffs them, prints the verdict. Exit code 1 on
/// regression, 2 on operational errors (unreadable/invalid files).
fn run_compare(baseline: &str, current: &str, tolerance: f64) -> ExitCode {
    let load = |path: &str| -> Result<Report, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Report::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (old, new) = match (load(baseline), load(current)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-report: {e}");
            return ExitCode::from(2);
        }
    };
    let regressions = match compare(&old, &new, tolerance) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench-report: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "comparing {current} (rev {}) against {baseline} (rev {}), tolerance {tolerance}x",
        new.git_rev, old.git_rev
    );
    if regressions.is_empty() {
        println!("OK: no metric regressed past {tolerance}x");
        return ExitCode::SUCCESS;
    }
    for r in &regressions {
        println!(
            "REGRESSION {}: {} -> {} ({:.2}x worse, limit {tolerance}x)",
            r.name, r.old, r.new, r.factor
        );
    }
    ExitCode::FAILURE
}

/// Loads two report files and prints the informational markdown delta
/// table. Never fails the build on metric movement — the gate is
/// `--compare` — so any problem (unreadable file, schema drift) degrades
/// to a note in the table's place and a clean exit.
fn run_trend(baseline: &str, current: &str) -> ExitCode {
    let load = |path: &str| -> Result<Report, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Report::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    match (load(baseline), load(current)) {
        (Ok(old), Ok(new)) => println!("{}", flipc_bench::report::render_trend(&old, &new)),
        (Err(e), _) | (_, Err(e)) => {
            println!("### Bench trend vs committed baseline\n\n_unavailable: {e}_");
        }
    }
    ExitCode::SUCCESS
}

/// The git revision to stamp into the report: CI's `GITHUB_SHA`, else the
/// working tree's HEAD, else `"unknown"`.
fn git_rev() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Runs the whole deterministic suite and assembles the report.
fn run_suite(quick: bool) -> Report {
    let (warmup, iters) = if quick { QUICK_ITERS } else { FULL_ITERS };
    let mut report = Report::new(git_rev(), quick);

    // --- One-way loopback latency across the size sweep + fitted slope.
    let mut slope_points = Vec::new();
    for msg_size in MSG_SIZES {
        let geo = Geometry {
            ring_capacity: 32,
            buffers: 128,
            msg_size,
            ..Geometry::small()
        };
        let payload = geo.payload_size();
        let (rtts, telemetry_p50) = loopback_pingpong(geo, warmup, iters);
        let p50 = percentile(&rtts, 0.5) as f64 / 2.0;
        let p99 = percentile(&rtts, 0.99) as f64 / 2.0;
        slope_points.push((payload as f64, p50));
        report.push(Metric {
            name: format!("oneway_p50_ns_{payload}B"),
            unit: "ns".into(),
            value: p50,
            p50: Some(p50),
            p99: Some(p99),
            direction: Direction::LowerIsBetter,
            gate: true,
        });
        if msg_size == MSG_SIZES[0] {
            report.push(Metric {
                name: "loopback_rtt_p50_ns".into(),
                unit: "ns".into(),
                value: percentile(&rtts, 0.5) as f64,
                p50: Some(percentile(&rtts, 0.5) as f64),
                p99: Some(percentile(&rtts, 0.99) as f64),
                direction: Direction::LowerIsBetter,
                gate: true,
            });
            report.push(Metric {
                name: "deliver_latency_telemetry_p50_ns".into(),
                unit: "ns".into(),
                value: telemetry_p50,
                p50: Some(telemetry_p50),
                p99: None,
                direction: Direction::LowerIsBetter,
                // Log2-bucket quantization is coarser than the 2x CI gate.
                gate: false,
            });
        }
    }
    if let Some((slope, intercept)) = fit_slope(&slope_points) {
        report.push(Metric {
            name: "oneway_ns_per_byte".into(),
            unit: "ns/B".into(),
            // A noisy sub-ns/byte slope can fit slightly negative; clamp so
            // the baseline comparison stays meaningful.
            value: slope.max(0.001),
            p50: None,
            p99: None,
            direction: Direction::LowerIsBetter,
            // The slope signal is small against the flat per-message cost;
            // run-to-run noise would flap a 2x gate.
            gate: false,
        });
        report.push(Metric {
            name: "oneway_intercept_ns".into(),
            unit: "ns".into(),
            value: intercept.max(1.0),
            p50: None,
            p99: None,
            direction: Direction::LowerIsBetter,
            gate: false,
        });
    }

    // --- Real-UDP ping-pong RTT (sockets + reliability layer).
    let udp_rtts = udp_pingpong(warmup, iters.min(1000));
    report.push(Metric {
        name: "udp_rtt_p50_ns".into(),
        unit: "ns".into(),
        value: percentile(&udp_rtts, 0.5) as f64,
        p50: Some(percentile(&udp_rtts, 0.5) as f64),
        p99: Some(percentile(&udp_rtts, 0.99) as f64),
        direction: Direction::LowerIsBetter,
        gate: true,
    });

    // --- Cross-node chain latency through the merge pipeline: the same
    // loopback-UDP node pair, but measured the way `flipc-top --cluster`
    // measures a real cluster — each engine's trace ring drained per
    // node, rebased by the transport's own wire-measured clock offset,
    // and the send→deliver chains reconstructed by `obs::merge`.
    let (chain_p50, chain_p99) = cross_node_chain_latency(warmup, iters.min(1000));
    report.push(Metric {
        name: "cross_node_chain_latency_p99_ns".into(),
        unit: "ns".into(),
        value: chain_p99,
        p50: Some(chain_p50),
        p99: Some(chain_p99),
        direction: Direction::LowerIsBetter,
        gate: true,
    });

    // --- Sustained throughput: saturating open loop over the loopback
    // pair (the ROADMAP's msgs/s metric; higher is better).
    let msgs_per_sec = sustained_throughput(quick);
    report.push(Metric {
        name: "sustained_throughput_msgs_per_sec".into(),
        unit: "msg/s".into(),
        value: msgs_per_sec,
        p50: None,
        p99: None,
        direction: Direction::HigherIsBetter,
        gate: true,
    });

    // --- Batched wire path: the same open-loop shape driven through the
    // reliability layer with the per-peer frame coalescer enabled, so the
    // jumbo-datagram path (pack, seal, fan-out) is what gets measured.
    report.push(Metric {
        name: "batched_throughput_msgs_per_sec".into(),
        unit: "msg/s".into(),
        value: batched_throughput(quick),
        p50: None,
        p99: None,
        direction: Direction::HigherIsBetter,
        gate: true,
    });

    // --- Seeded-loss recovery: the same fixed adversary every run.
    let frames = if quick { 200 } else { 1000 };
    for (loss_pct, loss) in [(1u32, 0.01f64), (10, 0.10)] {
        let (delivered, retransmitted) = lossy_delivery(loss, frames);
        report.push(Metric {
            name: format!("loss{loss_pct}_delivery_ratio"),
            unit: "ratio".into(),
            value: delivered as f64 / frames as f64,
            p50: None,
            p99: None,
            direction: Direction::HigherIsBetter,
            gate: true,
        });
        report.push(Metric {
            name: format!("loss{loss_pct}_retransmits_per_frame"),
            unit: "frames".into(),
            // Loss-free padding so a zero-retransmit run still yields a
            // positive, comparable value.
            value: (retransmitted as f64 + 1.0) / frames as f64,
            p50: None,
            p99: None,
            direction: Direction::LowerIsBetter,
            gate: true,
        });
    }

    // --- Per-frame recovery latency under the same seeded 10% adversary:
    // the adaptive estimator (gated) against the fixed-RTO schedule
    // (reported as the reference point). Manual-clock ticks are nominal
    // nanoseconds, and the fault schedule is seed-fixed, so these numbers
    // are exactly reproducible per build.
    for (name, adaptive, gate) in [
        ("loss_recovery_adaptive_p99_ns", true, true),
        ("loss_recovery_fixed_p99_ns", false, false),
    ] {
        let (p50, p99) = lossy_recovery_latency(0.10, frames, adaptive);
        report.push(Metric {
            name: name.into(),
            unit: "ns".into(),
            value: p99,
            p50: Some(p50),
            p99: Some(p99),
            direction: Direction::LowerIsBetter,
            gate,
        });
    }

    // --- Workload-level metrics over the deterministic chaos cluster.
    // Manual-clock ticks are nominal nanoseconds and every schedule is
    // seed-fixed, so all three reproduce exactly per build.
    report.push(Metric {
        name: "broadcast_fanout_msgs_per_sec".into(),
        unit: "msg/s".into(),
        value: broadcast_fanout_rate(quick),
        p50: None,
        p99: None,
        direction: Direction::HigherIsBetter,
        gate: true,
    });
    let (replay_p50, replay_p99) = log_append_replay_latency(quick);
    report.push(Metric {
        name: "log_append_replay_p99_ns".into(),
        unit: "ns".into(),
        value: replay_p99,
        p50: Some(replay_p50),
        p99: Some(replay_p99),
        direction: Direction::LowerIsBetter,
        gate: true,
    });
    let (tier_p50, tier_p99) = tiered_high_class_latency(quick);
    report.push(Metric {
        name: "tiered_high_class_p99_ns".into(),
        unit: "ns".into(),
        value: tier_p99,
        p50: Some(tier_p50),
        p99: Some(tier_p99),
        direction: Direction::LowerIsBetter,
        gate: true,
    });

    // --- Flow control under congestion: the reliability layer pushing a
    // fixed frame count through a token-bucket-shaped link, the credit
    // loop holding the sender inside the bottleneck. Goodput over nominal
    // (manual-clock) time; shaper, clock, and schedule are all seeded, so
    // the number reproduces exactly per build.
    report.push(Metric {
        name: "goodput_under_congestion_msgs_per_sec".into(),
        unit: "msg/s".into(),
        value: congested_goodput(quick),
        p50: None,
        p99: None,
        direction: Direction::HigherIsBetter,
        gate: true,
    });
    let (cong_p50, cong_p99) = tiered_high_class_latency_under_bulk(quick);
    report.push(Metric {
        name: "tiered_high_class_p99_under_bulk_ns".into(),
        unit: "ns".into(),
        value: cong_p99,
        p50: Some(cong_p50),
        p99: Some(cong_p99),
        direction: Direction::LowerIsBetter,
        gate: true,
    });

    report
}

/// Transport tuning for the workload metrics: the same fast manual-clock
/// timers the workload chaos suite pins, so RTOs and heartbeats fire
/// within a bench-sized run.
fn workload_net() -> NetConfig {
    NetConfig {
        window: 8,
        rto: 100,
        rto_min: 10,
        rto_max: 400,
        suspect_strikes: 2,
        dead_strikes: 8,
        heartbeat_interval: 2_000,
        ..NetConfig::default()
    }
}

/// Reliable fan-out throughput: one publisher, three ack-backed
/// subscribers on a clean link; total deliveries over nominal time.
fn broadcast_fanout_rate(quick: bool) -> f64 {
    let bursts = if quick { 60 } else { 240 };
    let topics = vec![TopicSpec {
        topic: 0,
        publisher: 0,
        subscribers: vec![1, 2, 3],
    }];
    let mut b = Broadcast::new(
        4,
        workload_net(),
        0xBE9C_0001,
        BroadcastConfig::default(),
        topics,
    );
    for _ in 0..bursts {
        b.publish_burst(4);
        b.step();
    }
    for _ in 0..4_000 {
        if b.completeness_violations().is_empty() {
            break;
        }
        b.step();
    }
    assert!(
        b.completeness_violations().is_empty(),
        "fanout bench failed to quiesce"
    );
    let delivered: u64 = [1u16, 2, 3].iter().map(|&s| b.delivered(0, s)).sum();
    delivered as f64 * 1e9 / b.cluster_mut().now().max(1) as f64
}

/// Append latency at a follower that crashes mid-stream and catches up
/// through replay-from-offset: the p99 is dominated by the recovery
/// path, which is exactly what the gate watches.
fn log_append_replay_latency(quick: bool) -> (f64, f64) {
    let entries = if quick { 60 } else { 240 } as u32;
    let mut log = ReplicatedLog::new(2, workload_net(), 0xBE9C_0002, LogConfig::default());
    for v in 0..entries / 2 {
        log.append(v);
    }
    log.run(60);
    log.crash_follower(1);
    for v in entries / 2..entries {
        log.append(v);
    }
    log.run(60);
    log.restart_follower(1);
    for _ in 0..600 {
        if log.committed() == log.leader_len() {
            break;
        }
        log.run(10);
    }
    assert_eq!(
        log.committed(),
        log.leader_len(),
        "replay bench failed to quiesce"
    );
    let snaps = log.snapshots();
    let h = &snaps[1].classes[0].latency;
    (
        h.quantile(0.5).unwrap_or(0.0),
        h.quantile(0.99).unwrap_or(0.0),
    )
}

/// High-class delivery latency while the bulk class saturates the link
/// under seeded 10% loss — the strict-priority bound the tiered chaos
/// story asserts, measured.
fn tiered_high_class_latency(quick: bool) -> (f64, f64) {
    let steps = if quick { 150 } else { 400 };
    let mut cfg = TierConfig::default();
    cfg.classes[2].deadline = 3_000;
    let mut t = Tiered::new(workload_net(), 0xBE9C_0003, cfg);
    t.cluster_mut().faults(0, FaultConfig::lossy(0.10));
    let mut high_sent = 0u64;
    for step in 0..steps {
        t.offer(2, 8);
        if step % 4 == 0 {
            t.offer(0, 1);
            high_sent += 1;
        }
        t.step();
    }
    t.cluster_mut().faults(0, FaultConfig::default());
    for _ in 0..1_000 {
        if t.delivered(0) == high_sent {
            break;
        }
        t.step();
    }
    assert_eq!(t.delivered(0), high_sent, "tiered bench failed to quiesce");
    (
        t.latency_quantile(0, 0.5).unwrap_or(0.0),
        t.latency_quantile(0, 0.99).unwrap_or(0.0),
    )
}

/// Goodput through the reliability layer over a token-bucket-shaped link
/// running far below the sender's natural rate: the sender keeps the
/// window full, the shaper meters the wire, and the receiver-granted
/// credit window (AIMD on the shaper's tail drops) has to keep the
/// retransmit ratio bounded while the link drains at capacity.
fn congested_goodput(quick: bool) -> f64 {
    let frames = if quick { 200 } else { 600 } as u32;
    let hub = MemHub::new(2, 4096);
    let clock = ManualClock::new();
    // The initial RTO must sit above the shaped link's worst-case queue
    // service time, or the first timeout fires before the first ack can
    // possibly return, Karn's rule then discards every RTT sample, and
    // the run degenerates into a spurious go-back-N storm (the shaped
    // chaos test documents the same calibration).
    let cfg = NetConfig {
        window: 32,
        rto: 4_000,
        rto_min: 100,
        rto_max: 20_000,
        ..NetConfig::default()
    };
    let shaped = FaultConfig {
        bandwidth_bps: 2_000_000,
        ..FaultConfig::default()
    };
    let mut a: NetTransport<_, _> = NetTransport::new(
        FlipcNodeId(0),
        &[FlipcNodeId(1)],
        FaultInjector::new(hub.link(FlipcNodeId(0)), shaped, 0xF11C),
        clock.clone(),
        cfg,
    );
    let mut b: NetTransport<_, _> = NetTransport::new(
        FlipcNodeId(1),
        &[FlipcNodeId(0)],
        hub.link(FlipcNodeId(1)),
        clock.clone(),
        cfg,
    );

    let frame = Frame {
        src: EndpointAddress::new(FlipcNodeId(0), EndpointIndex(0), 1),
        dst: EndpointAddress::new(FlipcNodeId(1), EndpointIndex(0), 1),
        payload: vec![0xAB; 56].into(),
        stamp_ns: 0,
    };
    let mut sent = 0u32;
    let mut delivered = 0u32;
    let mut now = 0u64;
    let mut budget = frames * 600;
    while delivered < frames && budget > 0 {
        budget -= 1;
        if sent < frames && a.try_send(FlipcNodeId(1), &frame) {
            sent += 1;
        }
        while b.try_recv().is_some() {
            delivered += 1;
        }
        let _ = a.try_recv(); // processes acks + services timers
        clock.advance(25);
        now += 25;
    }
    assert_eq!(delivered, frames, "congested goodput bench failed to drain");
    let retransmitted = a.stats().snapshot().paths[0].retransmitted;
    assert!(
        retransmitted <= frames,
        "retransmit storm under congestion: {retransmitted} for {frames} frames"
    );
    delivered as f64 * 1e9 / now.max(1) as f64
}

/// High-class delivery latency while the bulk tier saturates a
/// token-bucket-shaped bottleneck (no loss — pure congestion): the DRR
/// arbiter and per-peer credit window are what keep the high tier's p99
/// bounded here, measured over the same harness the chaos suite pins.
fn tiered_high_class_latency_under_bulk(quick: bool) -> (f64, f64) {
    let steps = if quick { 150 } else { 400 };
    let mut cfg = TierConfig::default();
    cfg.classes[2].deadline = 3_000;
    // Patient timers for the same reason as `congested_goodput`: the
    // bottleneck queue's service time must not outrun the initial RTO.
    let net = NetConfig {
        rto: 2_000,
        rto_min: 100,
        rto_max: 20_000,
        ..workload_net()
    };
    let mut t = Tiered::new(net, 0xBE9C_0004, cfg);
    let shaped = FaultConfig {
        bandwidth_bps: 2_000_000,
        ..FaultConfig::default()
    };
    t.cluster_mut().faults(0, shaped);
    let mut high_sent = 0u64;
    for step in 0..steps {
        t.offer(2, 8);
        if step % 4 == 0 {
            t.offer(0, 1);
            high_sent += 1;
        }
        t.step();
    }
    t.cluster_mut().faults(0, FaultConfig::default());
    for _ in 0..1_000 {
        if t.delivered(0) == high_sent {
            break;
        }
        t.step();
    }
    assert_eq!(
        t.delivered(0),
        high_sent,
        "bulk-congested tiered bench failed to quiesce"
    );
    (
        t.latency_quantile(0, 0.5).unwrap_or(0.0),
        t.latency_quantile(0, 0.99).unwrap_or(0.0),
    )
}

/// One node pair on the in-process loopback fabric; returns measured
/// ping-pong RTTs (ns) and the receiving engine's own telemetry p50 of
/// send→deliver latency — the internal view of the same traffic.
fn loopback_pingpong(geo: Geometry, warmup: usize, iters: usize) -> (Vec<u64>, f64) {
    let mut cl = InlineCluster::new(2, geo, EngineConfig::default()).expect("cluster");
    // Exercise the trace ring on real traffic: engine 1 records its
    // deliveries; the drained events sanity-check the sample counts.
    let (tw, mut tr) = trace_ring(4096);
    cl.engine_mut(1).set_trace(tw);
    let app0 = cl.node(0).attach();
    let app1 = cl.node(1).attach();
    let tx0 = alloc(&app0, EndpointType::Send);
    let rx0 = alloc(&app0, EndpointType::Receive);
    let tx1 = alloc(&app1, EndpointType::Send);
    let rx1 = alloc(&app1, EndpointType::Receive);
    let to_b = app1.address(&rx1);
    let to_a = app0.address(&rx0);

    let mut rtts = Vec::with_capacity(iters);
    for i in 0..warmup + iters {
        let start = Instant::now();
        let buf = app1.buffer_allocate().expect("buffer");
        app1.provide_receive_buffer(&rx1, buf)
            .map_err(|r| r.error)
            .expect("provide");
        let buf = app0.buffer_allocate().expect("buffer");
        app0.provide_receive_buffer(&rx0, buf)
            .map_err(|r| r.error)
            .expect("provide");
        let ping = app0.buffer_allocate().expect("buffer");
        app0.send_unlocked(&tx0, ping, to_b).expect("send");
        cl.pump_until_idle(8);
        let got = app1.recv_unlocked(&rx1).expect("recv").expect("message");
        app1.send_unlocked(&tx1, got.token, to_a).expect("send");
        cl.pump_until_idle(8);
        let back = app0.recv_unlocked(&rx0).expect("recv").expect("message");
        app0.buffer_free(back.token);
        for (app, tx) in [(&app0, &tx0), (&app1, &tx1)] {
            while let Some(tok) = app.reclaim_send_unlocked(tx).expect("reclaim") {
                app.buffer_free(tok);
            }
        }
        if i >= warmup {
            rtts.push(start.elapsed().as_nanos() as u64);
        }
    }
    rtts.sort_unstable();

    // The engine's internal latency distribution for node 1's deliveries.
    let snap = cl.engine_telemetry(1).harvest();
    let telemetry_p50 = snap
        .total_deliver_latency()
        .quantile(0.5)
        .unwrap_or(0.0)
        .max(1.0);
    // Each round trip delivers one frame to node 1; the trace ring saw
    // every one (or honestly reported what it shed).
    let delivers = tr
        .drain()
        .iter()
        .filter(|e| e.kind == flipc_obs::TraceKind::Deliver)
        .count() as u64;
    assert!(
        delivers + tr.lost() >= (warmup + iters) as u64,
        "trace ring lost deliveries silently"
    );
    (rtts, telemetry_p50)
}

fn alloc(app: &Flipc, ty: EndpointType) -> LocalEndpoint {
    app.endpoint_allocate(ty, Importance::Normal).expect("ep")
}

/// Saturating open loop over an inline loopback pair: the sender keeps the
/// send ring full, the receiver keeps buffers provided and frees arrivals
/// as they land, and no send ever waits for a response — the engines run
/// at their iteration-bounded maximum. Returns messages delivered per
/// second of wall time over the measured window (a warmup window runs
/// first so ramp-up cost stays out of the number).
fn sustained_throughput(quick: bool) -> f64 {
    let geo = Geometry {
        ring_capacity: 32,
        buffers: 128,
        ..Geometry::small()
    };
    let mut cl = InlineCluster::new(2, geo, EngineConfig::default()).expect("cluster");
    let app0 = cl.node(0).attach();
    let app1 = cl.node(1).attach();
    let tx = alloc(&app0, EndpointType::Send);
    let rx = alloc(&app1, EndpointType::Receive);
    let dest = app1.address(&rx);

    let (warmup, window): (u64, u64) = if quick {
        (5_000, 50_000)
    } else {
        (20_000, 400_000)
    };
    let mut delivered = 0u64;
    let mut window_base: Option<u64> = None;
    let mut start = Instant::now();
    loop {
        // Keep the receive ring stocked...
        while let Ok(buf) = app1.buffer_allocate() {
            if let Err(r) = app1.provide_receive_buffer_unlocked(&rx, buf) {
                app1.buffer_free(r.token);
                break;
            }
        }
        // ...and the send ring full (reclaim completed sends first so the
        // pool never starves).
        while let Some(tok) = app0.reclaim_send_unlocked(&tx).expect("reclaim") {
            app0.buffer_free(tok);
        }
        while let Ok(buf) = app0.buffer_allocate() {
            if let Err(r) = app0.send_unlocked(&tx, buf, dest) {
                app0.buffer_free(r.token);
                break;
            }
        }
        cl.pump();
        while let Some(got) = app1.recv_unlocked(&rx).expect("recv") {
            app1.buffer_free(got.token);
            delivered += 1;
        }
        if window_base.is_none() && delivered >= warmup {
            window_base = Some(delivered);
            start = Instant::now();
        }
        if let Some(base) = window_base {
            if delivered >= base + window {
                return (delivered - base) as f64 / start.elapsed().as_secs_f64();
            }
        }
    }
}

/// Open-loop throughput through the reliability layer with the per-peer
/// frame coalescer on: the sender fills the go-back-N window, seals the
/// staged jumbos with an explicit [`Transport::flush`] (exactly what the
/// engine does at the end of each drain pass), and the receiver fans the
/// batches back out through the ordinary dedup window. Wall-clock rate
/// over the measured window; the manual clock crawls so retransmit
/// timers never fire and the number is the clean batched path.
fn batched_throughput(quick: bool) -> f64 {
    let hub = MemHub::new(2, 8192);
    let clock = ManualClock::new();
    let cfg = NetConfig {
        window: 256,
        coalesce: true,
        ..NetConfig::default()
    };
    let mut a: NetTransport<_, _> = NetTransport::new(
        FlipcNodeId(0),
        &[FlipcNodeId(1)],
        hub.link(FlipcNodeId(0)),
        clock.clone(),
        cfg,
    );
    let mut b: NetTransport<_, _> = NetTransport::new(
        FlipcNodeId(1),
        &[FlipcNodeId(0)],
        hub.link(FlipcNodeId(1)),
        clock.clone(),
        cfg,
    );

    let frame = Frame {
        src: EndpointAddress::new(FlipcNodeId(0), EndpointIndex(0), 1),
        dst: EndpointAddress::new(FlipcNodeId(1), EndpointIndex(0), 1),
        payload: vec![0xAB; 56].into(),
        stamp_ns: 0,
    };
    let (warmup, window): (u64, u64) = if quick {
        (5_000, 50_000)
    } else {
        (20_000, 200_000)
    };
    let mut delivered = 0u64;
    let mut window_base: Option<u64> = None;
    let mut start = Instant::now();
    loop {
        // Fill the send window; every frame stages into the coalescer.
        while a.try_send(FlipcNodeId(1), &frame) {}
        a.flush();
        while b.try_recv().is_some() {
            delivered += 1;
        }
        let _ = a.try_recv(); // process acks so the window frees
        clock.advance(1);
        if window_base.is_none() && delivered >= warmup {
            window_base = Some(delivered);
            start = Instant::now();
        }
        if let Some(base) = window_base {
            if delivered >= base + window {
                return (delivered - base) as f64 / start.elapsed().as_secs_f64();
            }
        }
    }
}

/// One engine-driven node pair joined by real 127.0.0.1 UDP sockets, same
/// bootstrap as the `flipc-net` ping demo; returns ping-pong RTTs (ns).
fn udp_pingpong(warmup: usize, iters: usize) -> Vec<u64> {
    struct Node {
        app: Flipc,
        engine: Engine,
        tx: LocalEndpoint,
        rx: LocalEndpoint,
    }

    let geo = Geometry {
        ring_capacity: 32,
        buffers: 128,
        ..Geometry::small()
    };
    let mut map0 = NodeMap::new();
    map0.insert(
        FlipcNodeId(0),
        NodeAddr::Static(SocketAddr::from(([127, 0, 0, 1], 0))),
    )
    .insert(FlipcNodeId(1), NodeAddr::Dynamic);
    let t0 = udp_transport(&map0, FlipcNodeId(0), NetConfig::default()).expect("bind node 0");
    let addr0 = t0.link().local_addr().expect("local addr");
    let mut map1 = NodeMap::new();
    map1.insert(FlipcNodeId(0), NodeAddr::Static(addr0)).insert(
        FlipcNodeId(1),
        NodeAddr::Static(SocketAddr::from(([127, 0, 0, 1], 0))),
    );
    let t1 = udp_transport(&map1, FlipcNodeId(1), NetConfig::default()).expect("bind node 1");

    let mut nodes = Vec::new();
    for (i, t) in [Box::new(t0), Box::new(t1)].into_iter().enumerate() {
        let cb = Arc::new(CommBuffer::new(geo).expect("geometry"));
        let registry = WaitRegistry::new();
        let app = Flipc::attach(cb.clone(), FlipcNodeId(i as u16), registry.clone());
        let engine = Engine::new(cb, t, registry, EngineConfig::default());
        let tx = alloc(&app, EndpointType::Send);
        let rx = alloc(&app, EndpointType::Receive);
        nodes.push(Node {
            app,
            engine,
            tx,
            rx,
        });
    }
    // The pinger must be node 1: it holds a static route to node 0, while
    // node 0 only learns node 1's ephemeral port from the first arriving
    // ping (same bootstrap as the flipc-net demo).
    let mut a = nodes.pop().expect("node 1");
    let mut b = nodes.pop().expect("node 0");
    let to_b = b.app.address(&b.rx);
    let to_a = a.app.address(&a.rx);

    let mut rtts = Vec::with_capacity(iters);
    for i in 0..warmup + iters {
        let start = Instant::now();
        for n in [&b, &a] {
            let buf = n.app.buffer_allocate().expect("buffer");
            n.app
                .provide_receive_buffer(&n.rx, buf)
                .map_err(|r| r.error)
                .expect("provide");
        }
        let ping = a.app.buffer_allocate().expect("buffer");
        a.app.send_unlocked(&a.tx, ping, to_b).expect("send");
        let got = loop {
            a.engine.iterate();
            b.engine.iterate();
            if let Some(got) = b.app.recv_unlocked(&b.rx).expect("recv") {
                break got;
            }
        };
        b.app.send_unlocked(&b.tx, got.token, to_a).expect("send");
        let back = loop {
            a.engine.iterate();
            b.engine.iterate();
            if let Some(back) = a.app.recv_unlocked(&a.rx).expect("recv") {
                break back;
            }
        };
        a.app.buffer_free(back.token);
        for n in [&a, &b] {
            while let Some(tok) = n.app.reclaim_send_unlocked(&n.tx).expect("reclaim") {
                n.app.buffer_free(tok);
            }
        }
        if i >= warmup {
            rtts.push(start.elapsed().as_nanos() as u64);
        }
    }
    rtts.sort_unstable();
    rtts
}

/// The same loopback-UDP engine pair as [`udp_pingpong`], observed the
/// way the cluster plane observes real deployments: both engines record
/// into trace rings, the transports measure their mutual clock offset on
/// the heartbeat path (quiet windows between bursts let the ping
/// exchange fire), and [`merge`] rebases node 1's events onto node 0's
/// clock and reconstructs the cross-node send→deliver chains. Returns
/// `(p50, p99)` of the merged chain latencies in ns.
fn cross_node_chain_latency(warmup: usize, iters: usize) -> (f64, f64) {
    struct Node {
        app: Flipc,
        engine: Engine,
        tx: LocalEndpoint,
        rx: LocalEndpoint,
    }

    let geo = Geometry {
        ring_capacity: 32,
        buffers: 128,
        ..Geometry::small()
    };
    // Fast heartbeats (2 ms in the transport's µs ticks) so the clock
    // exchange collects samples inside a bench-sized run.
    let net = NetConfig {
        heartbeat_interval: 2_000,
        ..NetConfig::default()
    };
    let mut map0 = NodeMap::new();
    map0.insert(
        FlipcNodeId(0),
        NodeAddr::Static(SocketAddr::from(([127, 0, 0, 1], 0))),
    )
    .insert(FlipcNodeId(1), NodeAddr::Dynamic);
    let t0 = udp_transport(&map0, FlipcNodeId(0), net).expect("bind node 0");
    let addr0 = t0.link().local_addr().expect("local addr");
    let mut map1 = NodeMap::new();
    map1.insert(FlipcNodeId(0), NodeAddr::Static(addr0)).insert(
        FlipcNodeId(1),
        NodeAddr::Static(SocketAddr::from(([127, 0, 0, 1], 0))),
    );
    let t1 = udp_transport(&map1, FlipcNodeId(1), net).expect("bind node 1");

    let mut nodes = Vec::new();
    let mut readers = Vec::new();
    for (i, t) in [Box::new(t0), Box::new(t1)].into_iter().enumerate() {
        let cb = Arc::new(CommBuffer::new(geo).expect("geometry"));
        let registry = WaitRegistry::new();
        let app = Flipc::attach(cb.clone(), FlipcNodeId(i as u16), registry.clone());
        let mut engine = Engine::new(cb, t, registry, EngineConfig::default());
        let (tw, tr) = trace_ring(4096);
        engine.set_trace(tw);
        readers.push(tr);
        let tx = alloc(&app, EndpointType::Send);
        let rx = alloc(&app, EndpointType::Receive);
        nodes.push(Node {
            app,
            engine,
            tx,
            rx,
        });
    }
    let mut a = nodes.pop().expect("node 1");
    let mut b = nodes.pop().expect("node 0");
    let to_b = b.app.address(&b.rx);
    let to_a = a.app.address(&a.rx);

    let mut events: [Vec<TraceEvent>; 2] = [Vec::new(), Vec::new()];
    let mut lost = [0u64; 2];
    let drain = |readers: &mut Vec<flipc_obs::TraceReader>,
                 events: &mut [Vec<TraceEvent>; 2],
                 lost: &mut [u64; 2]| {
        for (i, r) in readers.iter_mut().enumerate() {
            events[i].extend_from_slice(&r.drain());
            lost[i] = r.lost();
        }
    };

    for i in 0..warmup + iters {
        for n in [&b, &a] {
            let buf = n.app.buffer_allocate().expect("buffer");
            n.app
                .provide_receive_buffer(&n.rx, buf)
                .map_err(|r| r.error)
                .expect("provide");
        }
        let ping = a.app.buffer_allocate().expect("buffer");
        a.app.send_unlocked(&a.tx, ping, to_b).expect("send");
        let got = loop {
            a.engine.iterate();
            b.engine.iterate();
            if let Some(got) = b.app.recv_unlocked(&b.rx).expect("recv") {
                break got;
            }
        };
        b.app.send_unlocked(&b.tx, got.token, to_a).expect("send");
        let back = loop {
            a.engine.iterate();
            b.engine.iterate();
            if let Some(back) = a.app.recv_unlocked(&a.rx).expect("recv") {
                break back;
            }
        };
        a.app.buffer_free(back.token);
        for n in [&a, &b] {
            while let Some(tok) = n.app.reclaim_send_unlocked(&n.tx).expect("reclaim") {
                n.app.buffer_free(tok);
            }
        }
        if i < warmup {
            // Events from the warmup window would skew the merged p99.
            drain(&mut readers, &mut events, &mut lost);
            for e in &mut events {
                e.clear();
            }
            // Quiet window between warmup rounds: the heartbeat path only
            // probes an idle peer, so this is where the clock exchange
            // collects its samples — before the measured burst, which
            // must stay contiguous (a multi-ms idle gap inside the
            // measured window would dominate the merged p99).
            if i % 8 == 7 {
                let until = Instant::now() + std::time::Duration::from_millis(5);
                while Instant::now() < until {
                    a.engine.iterate();
                    b.engine.iterate();
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }
        } else if i % 64 == 0 {
            drain(&mut readers, &mut events, &mut lost);
        }
    }
    drain(&mut readers, &mut events, &mut lost);

    // Node 1's transport measured "node 0's clock minus mine" on the
    // wire; that is exactly the rebase that maps its stamps onto the
    // reference (node 0) clock. Zero samples (possible in ultra-short
    // quick runs) degrades to offset 0 — same process, same epoch, so
    // the true offset is 0 anyway.
    let snap = a.engine.transport_snapshot().expect("node 1 snapshot");
    let path = &snap.paths[0];
    let [ev0, ev1] = events;
    let merged = merge(&[
        NodeInput {
            node: 0,
            offset_ns: 0,
            dispersion_ns: 0,
            events: ev0,
            lost: lost[0],
        },
        NodeInput {
            node: 1,
            offset_ns: path.clock_offset_ns,
            dispersion_ns: path.clock_dispersion_ns,
            events: ev1,
            lost: lost[1],
        },
    ]);
    assert!(
        merged.cross_chains.len() as u64 >= iters as u64,
        "merge reconstructed {} cross-node chains from {} rounds",
        merged.cross_chains.len(),
        iters
    );
    let mut lat: Vec<u64> = merged.cross_chains.iter().map(|c| c.latency_ns).collect();
    lat.sort_unstable();
    (percentile(&lat, 0.5) as f64, percentile(&lat, 0.99) as f64)
}

/// Pushes `frames` frames through the reliability layer over a seeded
/// lossy in-memory link (sender side drops with probability `loss`);
/// returns (frames delivered in order, frames retransmitted). The fault
/// schedule depends only on the seed, so a given build always sees the
/// same adversary.
fn lossy_delivery(loss: f64, frames: u32) -> (u32, u32) {
    let hub = MemHub::new(2, 4096);
    let clock = ManualClock::new();
    // `rto_min` must sit below the in-memory link's observed RTT scale or
    // the adaptive estimator pins at the clamp and the schedule stops
    // resembling the fixed baseline the historical numbers were cut from.
    let cfg = NetConfig {
        window: 32,
        rto: 100,
        rto_min: 25,
        rto_max: 800,
        ..NetConfig::default()
    };
    let mut a: NetTransport<_, _> = NetTransport::new(
        FlipcNodeId(0),
        &[FlipcNodeId(1)],
        FaultInjector::new(hub.link(FlipcNodeId(0)), FaultConfig::lossy(loss), 0xF11C),
        clock.clone(),
        cfg,
    );
    let mut b: NetTransport<_, _> = NetTransport::new(
        FlipcNodeId(1),
        &[FlipcNodeId(0)],
        hub.link(FlipcNodeId(1)),
        clock.clone(),
        cfg,
    );

    let frame = Frame {
        src: EndpointAddress::new(FlipcNodeId(0), EndpointIndex(0), 1),
        dst: EndpointAddress::new(FlipcNodeId(1), EndpointIndex(0), 1),
        payload: vec![0xAB; 56].into(),
        stamp_ns: 0,
    };
    let mut sent = 0u32;
    let mut delivered = 0u32;
    // Time advances one tick per pump; the retransmit timers fire on the
    // manual clock, so recovery is deterministic.
    let mut budget = frames * 400;
    while delivered < frames && budget > 0 {
        budget -= 1;
        if sent < frames && a.try_send(FlipcNodeId(1), &frame) {
            sent += 1;
        }
        while b.try_recv().is_some() {
            delivered += 1;
        }
        let _ = a.try_recv(); // processes acks + services timers
        clock.advance(25);
    }
    let retransmitted = a.stats().snapshot().paths[0].retransmitted;
    (delivered, retransmitted)
}

/// Send→deliver latency per frame (in manual-clock ticks ≙ ns) through
/// the reliability layer under the seeded 10%-class adversary, with the
/// RTO estimator switched by `adaptive`; returns `(p50, p99)`. Go-back-N
/// delivers in order, so the i-th delivery pairs with the i-th send.
fn lossy_recovery_latency(loss: f64, frames: u32, adaptive: bool) -> (f64, f64) {
    let hub = MemHub::new(2, 4096);
    let clock = ManualClock::new();
    let cfg = NetConfig {
        window: 32,
        rto: 100,
        rto_min: 25,
        rto_max: 800,
        adaptive_rto: adaptive,
        ..NetConfig::default()
    };
    let mut a: NetTransport<_, _> = NetTransport::new(
        FlipcNodeId(0),
        &[FlipcNodeId(1)],
        FaultInjector::new(hub.link(FlipcNodeId(0)), FaultConfig::lossy(loss), 0xF11C),
        clock.clone(),
        cfg,
    );
    let mut b: NetTransport<_, _> = NetTransport::new(
        FlipcNodeId(1),
        &[FlipcNodeId(0)],
        hub.link(FlipcNodeId(1)),
        clock.clone(),
        cfg,
    );

    let frame = Frame {
        src: EndpointAddress::new(FlipcNodeId(0), EndpointIndex(0), 1),
        dst: EndpointAddress::new(FlipcNodeId(1), EndpointIndex(0), 1),
        payload: vec![0xAB; 56].into(),
        stamp_ns: 0,
    };
    let mut sent = 0u32;
    let mut now = 0u64;
    let mut send_times: Vec<u64> = Vec::with_capacity(frames as usize);
    let mut latencies: Vec<u64> = Vec::with_capacity(frames as usize);
    let mut budget = frames * 400;
    while (latencies.len() as u32) < frames && budget > 0 {
        budget -= 1;
        if sent < frames && a.try_send(FlipcNodeId(1), &frame) {
            send_times.push(now);
            sent += 1;
        }
        while b.try_recv().is_some() {
            let i = latencies.len();
            latencies.push(now - send_times[i]);
        }
        let _ = a.try_recv(); // processes acks + services timers
        clock.advance(25);
        now += 25;
    }
    latencies.sort_unstable();
    (
        percentile(&latencies, 0.5) as f64,
        percentile(&latencies, 0.99) as f64,
    )
}

/// Human-readable one-screen summary printed alongside the JSON artifact.
fn summarize(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench-report rev {} ({})",
        report.git_rev,
        if report.quick { "quick" } else { "full" }
    );
    for m in &report.metrics {
        let _ = write!(out, "  {:<36} {:>14.1} {}", m.name, m.value, m.unit);
        if let (Some(p50), Some(p99)) = (m.p50, m.p99) {
            let _ = write!(out, "  (p50 {p50:.0}, p99 {p99:.0})");
        }
        let _ = writeln!(out);
    }
    out
}
