//! Benchmark support: report formatting for the paper-table harnesses.
//!
//! Every table and figure in the paper has a bench target in this crate's
//! `benches/` directory (`cargo bench -p flipc-bench --bench <name>`), each
//! printing the regenerated rows next to the paper's reported values. The
//! formatting helpers here keep those reports uniform.

use std::fmt::Write as _;

pub mod report;

/// Prints a titled, column-aligned table to stdout.
///
/// # Panics
///
/// Panics if a row's width differs from the header's.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "\n=== {title} ===");
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ");
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:>w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    print!("{out}");
}

/// Formats a microsecond value for report cells.
pub fn us(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a ratio (e.g. measured/paper) for report cells.
pub fn ratio(measured: f64, paper: f64) -> String {
    format!("{:.2}x", measured / paper)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(16.234), "16.23");
        assert_eq!(ratio(32.4, 16.2), "2.00x");
    }

    #[test]
    fn print_table_accepts_aligned_rows() {
        print_table(
            "demo",
            &["system", "us"],
            &[
                vec!["FLIPC".into(), "16.2".into()],
                vec!["NX".into(), "46.0".into()],
            ],
        );
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn print_table_rejects_ragged_rows() {
        print_table("bad", &["a", "b"], &[vec!["only-one".into()]]);
    }
}
