//! E10: the development-transport penalty. The paper built FLIPC first on
//! the Kernel-to-Kernel Transport, whose RPC-per-message structure "is not
//! a good match to the one way messages used by FLIPC"; the native engine
//! replaced it. Here the *same* engine runs over both transports and a
//! burst of messages is timed in deterministic engine rounds and in
//! wall-clock time.

use std::sync::Arc;
use std::time::Instant;

use flipc_bench::print_table;
use flipc_core::api::Flipc;
use flipc_core::commbuf::CommBuffer;
use flipc_core::endpoint::{EndpointType, FlipcNodeId, Importance};
use flipc_core::layout::Geometry;
use flipc_core::wait::WaitRegistry;
use flipc_engine::engine::{Engine, EngineConfig};
use flipc_engine::loopback::fabric;
use flipc_engine::transport::Transport;
use flipc_kkt::kkt_fabric;

const BURST: usize = 64;

fn build(transports: Vec<Box<dyn Transport>>) -> (Vec<Flipc>, Vec<Engine>) {
    let geo = Geometry {
        ring_capacity: 128,
        buffers: 256,
        ..Geometry::small()
    };
    let mut flipc = Vec::new();
    let mut engines = Vec::new();
    for (i, port) in transports.into_iter().enumerate() {
        let cb = Arc::new(CommBuffer::new(geo).expect("commbuf"));
        let registry = WaitRegistry::new();
        flipc.push(Flipc::attach(
            cb.clone(),
            FlipcNodeId(i as u16),
            registry.clone(),
        ));
        engines.push(Engine::new(cb, port, registry, EngineConfig::default()));
    }
    (flipc, engines)
}

/// Sends a burst and returns (engine rounds, wall-clock µs) to deliver all.
fn run(flipc: &[Flipc], engines: &mut [Engine]) -> (u32, f64) {
    let tx = flipc[0]
        .endpoint_allocate(EndpointType::Send, Importance::Normal)
        .expect("ep");
    let rx = flipc[1]
        .endpoint_allocate(EndpointType::Receive, Importance::Normal)
        .expect("ep");
    let dest = flipc[1].address(&rx);
    for _ in 0..BURST {
        let b = flipc[1].buffer_allocate().expect("buffer");
        flipc[1]
            .provide_receive_buffer(&rx, b)
            .map_err(|r| r.error)
            .expect("provide");
    }
    for i in 0..BURST {
        let mut t = flipc[0].buffer_allocate().expect("buffer");
        flipc[0].payload_mut(&mut t)[0] = i as u8;
        flipc[0].send(&tx, t, dest).expect("send");
    }
    let start = Instant::now();
    let mut rounds = 0;
    let mut received = 0;
    while received < BURST {
        rounds += 1;
        assert!(rounds < 10_000, "burst never delivered");
        engines[0].iterate();
        engines[1].iterate();
        while flipc[1].recv(&rx).expect("recv").is_some() {
            received += 1;
        }
    }
    (rounds, start.elapsed().as_secs_f64() * 1e6)
}

fn main() {
    let (nf, mut ne) = build(
        fabric(2, 256)
            .into_iter()
            .map(|p| Box::new(p) as Box<dyn Transport>)
            .collect(),
    );
    let (native_rounds, native_us) = run(&nf, &mut ne);

    let (kf, mut ke) = build(
        kkt_fabric(2)
            .into_iter()
            .map(|p| Box::new(p) as Box<dyn Transport>)
            .collect(),
    );
    let (kkt_rounds, kkt_us) = run(&kf, &mut ke);

    print_table(
        &format!("Delivering a {BURST}-message burst: native engine vs KKT transport (host)"),
        &["transport", "engine rounds", "wall clock (us)"],
        &[
            vec![
                "native (one-way frames)".into(),
                native_rounds.to_string(),
                format!("{native_us:.0}"),
            ],
            vec![
                "KKT (RPC per message)".into(),
                kkt_rounds.to_string(),
                format!("{kkt_us:.0}"),
            ],
        ],
    );
    println!();
    println!(
        "KKT needs {:.0}x the engine rounds: one request/acknowledge round trip per message,",
        kkt_rounds as f64 / native_rounds as f64
    );
    println!("which is why the paper replaced it with the native optimistic engine.");
}
