//! Calibration sensitivity: how the Figure 4 fit responds to the model's
//! free parameters.
//!
//! DESIGN.md's calibration policy rests on the claim that the paper's
//! *shapes* are structural, not knife-edge artifacts of two tuned anchors.
//! This harness perturbs each major cost parameter by +-25% and reports
//! the fitted base and slope: the slope (who-wins factors, crossovers)
//! should barely move — it is pinned by wire structure — while the base
//! absorbs fixed-cost changes roughly additively.

use flipc_baselines::model::{pingpong, SimEnv};
use flipc_bench::print_table;
use flipc_mesh::topology::NodeId;
use flipc_paragon::{FlipcParagonModel, FlipcSoftwareCosts};
use flipc_sim::stats::linear_fit;
use flipc_sim::time::SimDuration;

fn fit_with(sw: FlipcSoftwareCosts) -> (f64, f64) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut size = 120u64;
    while size <= 1016 {
        let mut env = SimEnv::paragon_pair(42 ^ size);
        let mut m = FlipcParagonModel::tuned();
        m.set_software_costs(sw);
        let stats = pingpong(&mut m, &mut env, NodeId(0), NodeId(1), size, 30, 150);
        xs.push(size as f64);
        ys.push(stats.mean());
        size += 64;
    }
    let f = linear_fit(&xs, &ys);
    (f.intercept / 1000.0, f.slope)
}

fn scaled(d: SimDuration, pct: i32) -> SimDuration {
    SimDuration::from_ns_f64(d.as_ns() as f64 * (100 + pct) as f64 / 100.0)
}

fn main() {
    let base = FlipcSoftwareCosts::default();
    let mut rows = Vec::new();
    let (b0, s0) = fit_with(base);
    rows.push(vec![
        "calibrated".to_string(),
        format!("{b0:.2}"),
        format!("{s0:.3}"),
    ]);

    for (name, sw) in [
        (
            "poll_gap +25%",
            FlipcSoftwareCosts {
                poll_gap: scaled(base.poll_gap, 25),
                ..base
            },
        ),
        (
            "poll_gap -25%",
            FlipcSoftwareCosts {
                poll_gap: scaled(base.poll_gap, -25),
                ..base
            },
        ),
        (
            "dma_setup +25%",
            FlipcSoftwareCosts {
                dma_setup: scaled(base.dma_setup, 25),
                ..base
            },
        ),
        (
            "engine_sw +25%",
            FlipcSoftwareCosts {
                engine_sw_tx: scaled(base.engine_sw_tx, 25),
                engine_sw_rx: scaled(base.engine_sw_rx, 25),
                ..base
            },
        ),
        (
            "call_overhead +25%",
            FlipcSoftwareCosts {
                call_overhead: scaled(base.call_overhead, 25),
                ..base
            },
        ),
        (
            "dma_per_line +25%",
            FlipcSoftwareCosts {
                dma_per_line: scaled(base.dma_per_line, 25),
                ..base
            },
        ),
    ] {
        let (b, s) = fit_with(sw);
        rows.push(vec![name.to_string(), format!("{b:.2}"), format!("{s:.3}")]);
    }

    print_table(
        "Calibration sensitivity: Figure 4 fit under +-25% parameter changes",
        &["parameter change", "base (us)", "slope (ns/B)"],
        &rows,
    );
    println!();
    println!("expected: the slope moves only with per-byte terms (dma_per_line);");
    println!("fixed-cost changes shift the base additively and leave every shape claim intact.");
}
