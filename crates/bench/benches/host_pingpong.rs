//! H1b: host end-to-end benchmarks of the real implementation.
//!
//! Inline (deterministic) cluster: the pure software cost of a full
//! message transfer — app queueing, engine pickup, wire, delivery, app
//! dequeue — with the engine pumped on the same thread. Threaded cluster:
//! the same transfer with real "message coprocessor" threads (on machines
//! with few cores this is dominated by scheduling, which is reported as
//! honest wall-clock behaviour, not protocol cost).

#![allow(missing_docs)] // criterion macros generate undocumented entry points

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use flipc_core::endpoint::{EndpointType, Importance};
use flipc_core::layout::Geometry;
use flipc_engine::engine::EngineConfig;
use flipc_engine::node::InlineCluster;

fn inline_roundtrip(c: &mut Criterion) {
    let geo = Geometry {
        ring_capacity: 32,
        buffers: 128,
        ..Geometry::small()
    };
    let mut cl = InlineCluster::new(2, geo, EngineConfig::default()).expect("cluster");
    let a = cl.node(0).attach();
    let b = cl.node(1).attach();
    let tx_a = a
        .endpoint_allocate(EndpointType::Send, Importance::Normal)
        .expect("ep");
    let rx_a = a
        .endpoint_allocate(EndpointType::Receive, Importance::Normal)
        .expect("ep");
    let tx_b = b
        .endpoint_allocate(EndpointType::Send, Importance::Normal)
        .expect("ep");
    let rx_b = b
        .endpoint_allocate(EndpointType::Receive, Importance::Normal)
        .expect("ep");
    let to_b = b.address(&rx_b);
    let to_a = a.address(&rx_a);

    c.bench_function("inline/120B_round_trip", |bench| {
        bench.iter(|| {
            // A -> B.
            let buf = b.buffer_allocate().expect("buffer");
            b.provide_receive_buffer(&rx_b, buf)
                .map_err(|r| r.error)
                .expect("provide");
            let mut t = a.buffer_allocate().expect("buffer");
            t_fill(a.payload_mut(&mut t));
            a.send_unlocked(&tx_a, t, to_b).expect("send");
            cl.pump_until_idle(8);
            let got = b.recv_unlocked(&rx_b).expect("recv").expect("message");
            // B -> A (echo).
            let buf = a.buffer_allocate().expect("buffer");
            a.provide_receive_buffer(&rx_a, buf)
                .map_err(|r| r.error)
                .expect("provide");
            b.send_unlocked(&tx_b, got.token, to_a).expect("send");
            cl.pump_until_idle(8);
            let back = a.recv_unlocked(&rx_a).expect("recv").expect("message");
            a.buffer_free(back.token);
            if let Some(tok) = a.reclaim_send_unlocked(&tx_a).expect("reclaim") {
                a.buffer_free(tok);
            }
            if let Some(tok) = b.reclaim_send_unlocked(&tx_b).expect("reclaim") {
                b.buffer_free(tok);
            }
            black_box(());
        })
    });
}

fn t_fill(p: &mut [u8]) {
    for (i, byte) in p.iter_mut().take(120).enumerate() {
        *byte = i as u8;
    }
}

fn inline_streaming(c: &mut Criterion) {
    // One-way streaming throughput through the full stack, per message.
    let geo = Geometry {
        ring_capacity: 64,
        buffers: 256,
        ..Geometry::small()
    };
    let mut cl = InlineCluster::new(2, geo, EngineConfig::default()).expect("cluster");
    let a = cl.node(0).attach();
    let b = cl.node(1).attach();
    let tx = a
        .endpoint_allocate(EndpointType::Send, Importance::Normal)
        .expect("ep");
    let rx = b
        .endpoint_allocate(EndpointType::Receive, Importance::Normal)
        .expect("ep");
    let dest = b.address(&rx);
    c.bench_function("inline/one_way_stream_msg", |bench| {
        bench.iter(|| {
            let buf = b.buffer_allocate().expect("buffer");
            b.provide_receive_buffer(&rx, buf)
                .map_err(|r| r.error)
                .expect("provide");
            let t = a.buffer_allocate().expect("buffer");
            a.send_unlocked(&tx, t, dest).expect("send");
            cl.pump_until_idle(8);
            let got = b.recv_unlocked(&rx).expect("recv").expect("message");
            b.buffer_free(got.token);
            let back = a
                .reclaim_send_unlocked(&tx)
                .expect("reclaim")
                .expect("token");
            a.buffer_free(back);
        })
    });
}

fn false_sharing_microbench(c: &mut Criterion) {
    // The paper's layout lesson on modern hardware: two threads writing
    // adjacent words (one line) vs padded words (separate lines). On a
    // single-core host the contrast is muted — reported for completeness.
    use flipc_core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    #[repr(align(64))]
    struct Padded(AtomicU64);

    struct Shared {
        a: AtomicU64,
        b: AtomicU64,
        pa: Padded,
        pb: Padded,
        stop: AtomicBool,
    }
    let sh = Arc::new(Shared {
        a: AtomicU64::new(0),
        b: AtomicU64::new(0),
        pa: Padded(AtomicU64::new(0)),
        pb: Padded(AtomicU64::new(0)),
        stop: AtomicBool::new(false),
    });

    let sh2 = sh.clone();
    let writer = std::thread::spawn(move || {
        while !sh2.stop.load(Ordering::Acquire) {
            sh2.b.fetch_add(1, Ordering::Relaxed);
            sh2.pb.0.fetch_add(1, Ordering::Relaxed);
        }
    });

    c.bench_function("layout/false_shared_write", |bench| {
        bench.iter(|| sh.a.fetch_add(black_box(1), Ordering::Relaxed))
    });
    c.bench_function("layout/padded_write", |bench| {
        bench.iter(|| sh.pa.0.fetch_add(black_box(1), Ordering::Relaxed))
    });

    sh.stop.store(true, Ordering::Release);
    writer.join().expect("writer");
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = inline_roundtrip, inline_streaming, false_sharing_microbench
}
criterion_main!(benches);
