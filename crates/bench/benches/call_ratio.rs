//! E9: the call-ratio observation. The paper: "a FLIPC application can
//! expect to employ about half of its calls to FLIPC to send or receive
//! messages, and the other half for message buffer management", motivating
//! the managed buffer layer of the Future Work section.
//!
//! Measured on the *real* host implementation: a request/response workload
//! run over the inline (deterministic) engine, once against the raw API
//! and once against the managed layer.

use flipc_bench::print_table;
use flipc_core::endpoint::{EndpointType, Importance};
use flipc_core::layout::Geometry;
use flipc_core::managed::{ManagedReceiver, ManagedSender};
use flipc_engine::engine::EngineConfig;
use flipc_engine::node::InlineCluster;

const MESSAGES: u64 = 500;

fn main() {
    // Raw API in its steady state: buffers are allocated once and recycled
    // — each message still costs the sender a `reclaim_send` and the
    // receiver a `provide_receive_buffer`, which is exactly the paper's
    // "half of the calls are buffer management".
    let mut cl =
        InlineCluster::new(2, Geometry::small(), EngineConfig::default()).expect("cluster");
    let a = cl.node(0).attach();
    let b = cl.node(1).attach();
    let tx = a
        .endpoint_allocate(EndpointType::Send, Importance::Normal)
        .expect("ep");
    let rx = b
        .endpoint_allocate(EndpointType::Receive, Importance::Normal)
        .expect("ep");
    let dest = b.address(&rx);
    let first = b.buffer_allocate().expect("buffer");
    b.provide_receive_buffer(&rx, first)
        .map_err(|r| r.error)
        .expect("provide");
    let mut token = Some(a.buffer_allocate().expect("buffer"));
    for _ in 0..MESSAGES {
        let mut t = token.take().expect("send buffer");
        a.payload_mut(&mut t)[..4].copy_from_slice(b"ping");
        a.send(&tx, t, dest).expect("send");
        cl.pump_until_idle(16);
        let got = b.recv(&rx).expect("recv").expect("message");
        b.provide_receive_buffer(&rx, got.token)
            .map_err(|r| r.error)
            .expect("recycle");
        token = Some(a.reclaim_send(&tx).expect("reclaim").expect("buffer"));
    }
    let sa = a.call_stats();
    let sb = b.call_stats();
    let raw_msg_calls = sa.sends + sb.recvs;
    let raw_buf_calls = sa.buffer_mgmt + sb.buffer_mgmt;

    // Managed layer: one call per message per side.
    let mut cl =
        InlineCluster::new(2, Geometry::small(), EngineConfig::default()).expect("cluster");
    let a = cl.node(0).attach();
    let b = cl.node(1).attach();
    let tx = a
        .endpoint_allocate(EndpointType::Send, Importance::Normal)
        .expect("ep");
    let rx = b
        .endpoint_allocate(EndpointType::Receive, Importance::Normal)
        .expect("ep");
    let dest = b.address(&rx);
    let mut mtx = ManagedSender::new(&a, tx, 8).expect("sender");
    let mut mrx = ManagedReceiver::new(&b, rx, 8).expect("receiver");
    for _ in 0..MESSAGES {
        mtx.send_bytes(dest, b"ping").expect("send");
        cl.pump_until_idle(16);
        mrx.recv_bytes().expect("recv").expect("message");
    }
    let managed_calls = mtx.user_calls() + mrx.user_calls();

    print_table(
        &format!("Programmer-visible FLIPC calls for {MESSAGES} request messages"),
        &[
            "API",
            "send/recv calls",
            "buffer-mgmt calls",
            "buffer-mgmt share",
        ],
        &[
            vec![
                "raw (paper's API)".into(),
                raw_msg_calls.to_string(),
                raw_buf_calls.to_string(),
                format!(
                    "{:.0}%",
                    raw_buf_calls as f64 / (raw_msg_calls + raw_buf_calls) as f64 * 100.0
                ),
            ],
            vec![
                "managed layer (future work)".into(),
                managed_calls.to_string(),
                "0".into(),
                "0%".into(),
            ],
        ],
    );
    println!();
    println!("paper: ~half of an application's FLIPC calls are buffer management;");
    println!("the managed layer folds them away ({raw_msg_calls} + {raw_buf_calls} calls -> {managed_calls}).");
}
