//! Where do the 16.2µs go? Per-phase decomposition of a steady-state
//! 120-byte message on the simulated Paragon, for each configuration of
//! the tuning ablation. Not a figure in the paper, but the accounting
//! behind its Figure 4 and tuning narrative.

use flipc_baselines::model::{pingpong, MessagingModel, SimEnv};
use flipc_bench::print_table;
use flipc_mesh::topology::NodeId;
use flipc_paragon::{FlipcModelConfig, FlipcParagonModel};
use flipc_sim::time::SimTime;

fn breakdown(cfg: FlipcModelConfig) -> [f64; 6] {
    let mut env = SimEnv::paragon_pair(7);
    let mut m = FlipcParagonModel::new(cfg);
    // Warm to steady state, then take one deterministic message (the poll
    // jitter stays, so this is a representative sample, not a mean).
    pingpong(&mut m, &mut env, NodeId(0), NodeId(1), 120, 50, 1);
    let now = SimTime::from_ns(50_000_000);
    let done = m.one_way(&mut env, now, NodeId(0), NodeId(1), 120);
    let b = m.last;
    [
        b.sender_app_ns as f64 / 1000.0,
        b.src_engine_ns as f64 / 1000.0,
        b.wire_ns as f64 / 1000.0,
        b.dst_engine_ns as f64 / 1000.0,
        b.dst_app_ns as f64 / 1000.0,
        (done - now).as_ns() as f64 / 1000.0,
    ]
}

fn main() {
    let configs = [
        ("tuned", FlipcModelConfig::tuned()),
        (
            "checks on",
            FlipcModelConfig {
                checks: true,
                ..FlipcModelConfig::tuned()
            },
        ),
        (
            "locked",
            FlipcModelConfig {
                locked_ops: true,
                ..FlipcModelConfig::tuned()
            },
        ),
        ("untuned", FlipcModelConfig::untuned()),
    ];
    let rows: Vec<Vec<String>> = configs
        .iter()
        .map(|(name, cfg)| {
            let b = breakdown(*cfg);
            let mut row = vec![name.to_string()];
            row.extend(b.iter().map(|v| format!("{v:.2}")));
            row
        })
        .collect();
    print_table(
        "120B one-way latency decomposition (us, one steady-state sample)",
        &[
            "config",
            "sender app",
            "src engine",
            "wire+DMA",
            "dst engine",
            "dst app",
            "total",
        ],
        &rows,
    );
    println!();
    println!("the wire+DMA column is the size-dependent term (6.25 ns/B); everything");
    println!("else is the 15.45us base the software path and coherence traffic make up.");
}
