//! E8: real-time responsiveness under a competing bulk transfer.
//!
//! The paper's critique of SUNMOS: sending multi-megabyte messages as a
//! single wormhole packet "occupies the path through the interconnect for
//! the duration of the message and is a potential responsiveness problem
//! in a real time environment". A periodic 120-byte stream crosses the
//! path of a 4MB transfer; with SUNMOS the stream stalls for the packet's
//! full ~21ms serialization, while FLIPC's fixed-size messages interleave.

use flipc_bench::{print_table, us};
use flipc_paragon::responsiveness;

fn main() {
    let r = responsiveness(42);
    print_table(
        "120B real-time stream latency while a 4MB transfer crosses its path",
        &["scenario", "worst-case stream latency (us)"],
        &[
            vec!["no bulk transfer (baseline)".into(), us(r.baseline_max_us)],
            vec![
                "4MB as FLIPC fixed-size messages".into(),
                us(r.flipc_chunked_max_us),
            ],
            vec!["4MB as one SUNMOS packet".into(), us(r.sunmos_max_us)],
        ],
    );
    println!();
    println!(
        "baseline mean {:.1}us; SUNMOS worst case is {:.0}x the FLIPC-chunked worst case",
        r.baseline_mean_us,
        r.sunmos_max_us / r.flipc_chunked_max_us
    );
}
