//! E5: the cache start-up transient. The paper observed that short test
//! runs are ~3µs faster than steady state: cache lines that are shared
//! (and therefore bounce) in steady state are not yet shared at start-up,
//! so writes pay fewer invalidations.

use flipc_bench::{print_table, us};
use flipc_paragon::startup_transient;

fn main() {
    let mut rows = Vec::new();
    let mut steady_us = 0.0;
    for short in [1u32, 2, 3, 5, 10, 25] {
        let (cold, steady) = startup_transient(42, short);
        steady_us = steady;
        rows.push(vec![
            format!("{short}"),
            us(cold),
            format!("{:+.2}", cold - steady),
        ]);
    }
    rows.push(vec!["steady (400+)".into(), us(steady_us), "+0.00".into()]);
    print_table(
        "Start-up transient: cold-start run mean vs run length, 120B (simulated Paragon)",
        &["exchanges", "mean latency (us)", "vs steady (us)"],
        &rows,
    );
    println!();
    println!("paper: small-exchange runs are ~3us faster than steady state;");
    println!("the gap decays as sharing (and therefore invalidation traffic) builds up.");
}
