//! E3: the cache-tuning ablation — bus-locked TAS operations and false
//! sharing vs the lockless, cache-line-separated configuration. The paper
//! reports the two fixes together improved latency by ~15µs, "almost a
//! factor of two".

use flipc_bench::{print_table, us};
use flipc_paragon::ablation_cache_tuning;

fn main() {
    let rows = ablation_cache_tuning(42);
    let tuned = rows.last().expect("ablation rows").latency_us;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.to_string(),
                us(r.latency_us),
                format!("+{:.1}", r.latency_us - tuned),
            ]
        })
        .collect();
    print_table(
        "Cache-tuning ablation: 120-byte latency (simulated Paragon)",
        &["configuration", "latency (us)", "vs tuned (us)"],
        &table,
    );
    let untuned = rows.first().expect("ablation rows").latency_us;
    println!();
    println!(
        "tuning delta: {:.1}us, factor {:.2}x   (paper: ~15us, \"almost a factor of two\")",
        untuned - tuned,
        untuned / tuned
    );
}
