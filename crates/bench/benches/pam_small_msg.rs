//! E6: the PAM small-message point. PAM is optimized for 20-byte payloads:
//! under 10µs, about a third faster than FLIPC at that size, with a copy
//! cost below 0.2µs — the regime where copying beats buffer management.

use flipc_bench::{print_table, us};
use flipc_paragon::pam_small_message;

fn main() {
    let (pam_us, flipc_us, copy_ns) = pam_small_message(42);
    print_table(
        "20-byte message latency (simulated Paragon)",
        &["system", "latency (us)"],
        &[
            vec!["PAM".into(), us(pam_us)],
            vec!["FLIPC".into(), us(flipc_us)],
        ],
    );
    println!();
    println!(
        "PAM advantage at 20B: {:.0}%   (paper: \"about a third faster\"; PAM < 10us)",
        (flipc_us - pam_us) / flipc_us * 100.0
    );
    println!(
        "PAM per-message copy cost: {copy_ns}ns   (paper: \"almost zero cost, less than 0.2us\")"
    );
}
