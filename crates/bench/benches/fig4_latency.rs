//! E1 / Figure 4: FLIPC message latency vs message size.
//!
//! Regenerates the paper's latency curve on the simulated Paragon: mean
//! one-way latency and standard deviation per size, plus the fitted
//! `base + slope * size` line the paper reports as
//! `15.45µs + 6.25 ns/byte` for sizes of 96 bytes and above.

use flipc_bench::{print_table, us};
use flipc_paragon::{fig4_fit, fig4_sweep};

fn main() {
    let rows = fig4_sweep(42, 1016, 400);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.msg_bytes.to_string(), us(r.mean_us), us(r.stddev_us)])
        .collect();
    print_table(
        "Figure 4: FLIPC message latency vs size (simulated Paragon)",
        &["size (B)", "latency (us)", "stddev (us)"],
        &table,
    );
    let fit = fig4_fit(&rows, 96);
    println!();
    println!(
        "fit (>=96B): latency = {:.2}us + {:.3} ns/B   (r^2 = {:.4})",
        fit.intercept, fit.slope, fit.r2
    );
    println!("paper:       latency = 15.45us + 6.250 ns/B");
    println!(
        "implied interconnect use: {:.0} MB/s of the 200 MB/s peak (paper: >150 MB/s)",
        1000.0 / fit.slope
    );
}
