//! E2: the Related Work comparison table — 120-byte message latency on the
//! Paragon for FLIPC, PAM, SUNMOS, and NX.

use flipc_bench::{print_table, ratio, us};
use flipc_paragon::comparison_table;

fn main() {
    let rows = comparison_table(42);
    let flipc = rows[0].latency_us;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.system.to_string(),
                us(r.latency_us),
                us(r.paper_us),
                ratio(r.latency_us, flipc),
            ]
        })
        .collect();
    print_table(
        "120-byte message latency (simulated Paragon)",
        &["system", "measured (us)", "paper (us)", "vs FLIPC"],
        &table,
    );
    println!();
    println!("paper's point: FLIPC 16.2us vs PAM 26us, SUNMOS 28us, NX 46us —");
    println!(
        "the medium-message class is not served by systems tuned for small or large messages."
    );
}
