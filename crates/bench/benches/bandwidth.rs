//! E7: bandwidth points. FLIPC streams medium messages at >150 MB/s (the
//! 6.25 ns/B slope); NX's rendezvous bulk protocol exceeds 140 MB/s;
//! SUNMOS's single-packet protocol approaches 160 MB/s.

use flipc_bench::print_table;
use flipc_paragon::bandwidth_table;

fn main() {
    let rows = bandwidth_table(42);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                format!("{:.0}", r.mb_per_s),
                format!("{:.0}", r.paper_mb_per_s),
            ]
        })
        .collect();
    print_table(
        "Streaming bandwidth (simulated Paragon, 200 MB/s mesh peak)",
        &["system / workload", "measured (MB/s)", "paper (MB/s)"],
        &table,
    );
    println!();
    println!("note: FLIPC has no bulk-transfer mechanism (the paper calls it complementary");
    println!("to NX/SUNMOS); its row streams back-to-back fixed-size medium messages.");
}
