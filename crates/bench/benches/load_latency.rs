//! E11 (extension): 120-byte stream latency vs offered load.
//!
//! The paper pins this curve's two ends — the ~16µs low-load latency floor
//! (Figure 4) and the >150 MB/s saturation bandwidth (the 6.25 ns/B
//! slope). This harness fills in the middle: Poisson arrivals queue at the
//! source once the offered load approaches the per-message service bound,
//! and latency departs the floor.

use flipc_bench::print_table;
use flipc_paragon::experiments::load_latency;

fn show(payload: u64, loads: &[f64]) {
    let rows = load_latency(42, payload, loads);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.offered_mb_s),
                format!("{:.1}", r.mean_us),
                format!("{:.1}", r.p99_us),
                format!("{:.0}", r.delivered_mb_s),
            ]
        })
        .collect();
    print_table(
        &format!("{payload}B FLIPC stream: latency vs offered load (simulated Paragon)"),
        &[
            "offered (MB/s)",
            "mean (us)",
            "p99 (us)",
            "delivered (MB/s)",
        ],
        &table,
    );
}

fn main() {
    // 120B messages saturate at the engine's per-message service bound
    // (~36 MB/s): medium-message rate, not bytes, is the limit.
    show(120, &[5.0, 10.0, 20.0, 30.0, 34.0, 36.0]);
    // 1016B messages are wire-bound and reach the paper's >150 MB/s.
    show(1016, &[20.0, 80.0, 120.0, 140.0, 150.0, 156.0]);
    println!();
    println!("paper anchors: ~16.2us latency floor at low load (Figure 4);");
    println!(">150 MB/s wire-bound saturation for ~1KB messages (the 6.25 ns/B slope).");
}
