//! H2: half-RTT of the real UDP transport vs the in-process loopback,
//! over the paper's 50–500 byte message range.
//!
//! Two complete FLIPC nodes live in this process, joined by real
//! `127.0.0.1` UDP sockets through `flipc-net`; the loopback rows run the
//! identical engine/API code over the in-process wire. Each criterion
//! iteration is one full ping-pong, so **half-RTT = reported time / 2**.
//! The gap between the two rows is the cost of sockets + the reliability
//! layer; the loopback row is the pure software floor.

#![allow(missing_docs)] // criterion macros generate undocumented entry points

use criterion::{criterion_group, criterion_main, Criterion};
use std::net::SocketAddr;
use std::sync::Arc;

use flipc_core::api::{Flipc, LocalEndpoint};
use flipc_core::commbuf::CommBuffer;
use flipc_core::endpoint::{EndpointType, FlipcNodeId, Importance};
use flipc_core::layout::Geometry;
use flipc_core::wait::WaitRegistry;
use flipc_engine::engine::{Engine, EngineConfig};
use flipc_engine::node::InlineCluster;
use flipc_net::{udp_transport, NetConfig, NodeAddr, NodeMap};

/// Message sizes (header + payload) spanning the paper's 50–500 B range.
const MSG_SIZES: [u32; 4] = [64, 128, 256, 512];

fn geometry(msg_size: u32) -> Geometry {
    Geometry {
        ring_capacity: 32,
        buffers: 128,
        msg_size,
        ..Geometry::small()
    }
}

struct Node {
    app: Flipc,
    engine: Engine,
    tx: LocalEndpoint,
    rx: LocalEndpoint,
}

impl Node {
    fn new(engine: Engine, app: Flipc) -> Node {
        let tx = app
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .expect("ep");
        let rx = app
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .expect("ep");
        Node {
            app,
            engine,
            tx,
            rx,
        }
    }
}

/// Two engine-driven nodes joined by real UDP sockets on 127.0.0.1, both
/// on ephemeral ports. Returned as (pinger, ponger): the pinger is node 1,
/// which has a static route to node 0; node 0 learns node 1's port from
/// the first ping's source address, like the demo server.
fn udp_pair(geo: Geometry) -> (Node, Node) {
    let mut map0 = NodeMap::new();
    map0.insert(
        FlipcNodeId(0),
        NodeAddr::Static(SocketAddr::from(([127, 0, 0, 1], 0))),
    )
    .insert(FlipcNodeId(1), NodeAddr::Dynamic);
    let t0 = udp_transport(&map0, FlipcNodeId(0), NetConfig::default()).expect("bind node 0");
    let addr0 = t0.link().local_addr().expect("local addr");

    let mut map1 = NodeMap::new();
    map1.insert(FlipcNodeId(0), NodeAddr::Static(addr0)).insert(
        FlipcNodeId(1),
        NodeAddr::Static(SocketAddr::from(([127, 0, 0, 1], 0))),
    );
    let t1 = udp_transport(&map1, FlipcNodeId(1), NetConfig::default()).expect("bind node 1");

    let mut nodes = Vec::new();
    for (i, t) in [Box::new(t0), Box::new(t1)].into_iter().enumerate() {
        let cb = Arc::new(CommBuffer::new(geo).expect("geometry"));
        let registry = WaitRegistry::new();
        let app = Flipc::attach(cb.clone(), FlipcNodeId(i as u16), registry.clone());
        nodes.push(Node::new(
            Engine::new(cb, t, registry, EngineConfig::default()),
            app,
        ));
    }
    let node1 = nodes.pop().expect("node 1");
    let node0 = nodes.pop().expect("node 0");
    (node1, node0)
}

/// One full ping-pong through two engines pumped inline until delivery.
fn roundtrip(a: &mut Node, b: &mut Node) {
    let to_b = b.app.address(&b.rx);
    let to_a = a.app.address(&a.rx);

    let buf = b.app.buffer_allocate().expect("buffer");
    b.app
        .provide_receive_buffer(&b.rx, buf)
        .map_err(|r| r.error)
        .expect("provide");
    let buf = a.app.buffer_allocate().expect("buffer");
    a.app
        .provide_receive_buffer(&a.rx, buf)
        .map_err(|r| r.error)
        .expect("provide");

    let ping = a.app.buffer_allocate().expect("buffer");
    a.app.send_unlocked(&a.tx, ping, to_b).expect("send");
    let got = loop {
        a.engine.iterate();
        b.engine.iterate();
        if let Some(got) = b.app.recv_unlocked(&b.rx).expect("recv") {
            break got;
        }
    };
    b.app.send_unlocked(&b.tx, got.token, to_a).expect("send");
    let back = loop {
        a.engine.iterate();
        b.engine.iterate();
        if let Some(back) = a.app.recv_unlocked(&a.rx).expect("recv") {
            break back;
        }
    };
    a.app.buffer_free(back.token);
    for n in [a, b] {
        while let Some(tok) = n.app.reclaim_send_unlocked(&n.tx).expect("reclaim") {
            n.app.buffer_free(tok);
        }
    }
}

fn udp_vs_loopback(c: &mut Criterion) {
    for msg_size in MSG_SIZES {
        let geo = geometry(msg_size);
        let payload = geo.payload_size();

        let (mut a, mut b) = udp_pair(geo);
        c.bench_function(&format!("net_udp/{payload}B_round_trip"), |bench| {
            bench.iter(|| roundtrip(&mut a, &mut b))
        });

        let mut cl = InlineCluster::new(2, geo, EngineConfig::default()).expect("cluster");
        let app0 = cl.node(0).attach();
        let app1 = cl.node(1).attach();
        let (tx0, rx0) = (
            app0.endpoint_allocate(EndpointType::Send, Importance::Normal)
                .expect("ep"),
            app0.endpoint_allocate(EndpointType::Receive, Importance::Normal)
                .expect("ep"),
        );
        let (tx1, rx1) = (
            app1.endpoint_allocate(EndpointType::Send, Importance::Normal)
                .expect("ep"),
            app1.endpoint_allocate(EndpointType::Receive, Importance::Normal)
                .expect("ep"),
        );
        let to_b = app1.address(&rx1);
        let to_a = app0.address(&rx0);
        c.bench_function(&format!("loopback/{payload}B_round_trip"), |bench| {
            bench.iter(|| {
                let buf = app1.buffer_allocate().expect("buffer");
                app1.provide_receive_buffer(&rx1, buf)
                    .map_err(|r| r.error)
                    .expect("provide");
                let buf = app0.buffer_allocate().expect("buffer");
                app0.provide_receive_buffer(&rx0, buf)
                    .map_err(|r| r.error)
                    .expect("provide");
                let ping = app0.buffer_allocate().expect("buffer");
                app0.send_unlocked(&tx0, ping, to_b).expect("send");
                cl.pump_until_idle(8);
                let got = app1.recv_unlocked(&rx1).expect("recv").expect("message");
                app1.send_unlocked(&tx1, got.token, to_a).expect("send");
                cl.pump_until_idle(8);
                let back = app0.recv_unlocked(&rx0).expect("recv").expect("message");
                app0.buffer_free(back.token);
                if let Some(tok) = app0.reclaim_send_unlocked(&tx0).expect("reclaim") {
                    app0.buffer_free(tok);
                }
                if let Some(tok) = app1.reclaim_send_unlocked(&tx1).expect("reclaim") {
                    app1.buffer_free(tok);
                }
            })
        });
    }
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = udp_vs_loopback
}
criterion_main!(benches);
