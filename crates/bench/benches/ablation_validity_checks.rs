//! E4: the validity-check ablation. The engine's checks protect it against
//! a corrupted communication buffer but cost time; the paper reports ~2µs
//! per message, and that its headline numbers were taken with checks off.

use flipc_bench::{print_table, us};
use flipc_paragon::ablation_validity_checks;

fn main() {
    let (off, on) = ablation_validity_checks(42);
    print_table(
        "Validity-check ablation: 120-byte latency (simulated Paragon)",
        &["configuration", "latency (us)"],
        &[
            vec!["checks off (trusted app)".into(), us(off)],
            vec!["checks on (protected)".into(), us(on)],
        ],
    );
    println!();
    println!(
        "delta: {:.2}us   (paper: \"adds an additional 2us\")",
        on - off
    );
}
