//! H1a: host microbenchmarks of the real wait-free primitives.
//!
//! Criterion timings of the data structures the paper's synchronization
//! design rests on: the three-pointer endpoint queue, the two-location
//! read-and-reset counter, the TAS lock, the SPSC wire ring, and the
//! buffer pool — all measured single-threaded (the pure instruction cost
//! of each wait-free operation; the coherence costs are what the simulated
//! Paragon model charges for).

#![allow(missing_docs)] // criterion macros generate undocumented entry points

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use flipc_core::commbuf::CommBuffer;
use flipc_core::endpoint::{EndpointAddress, EndpointIndex, EndpointType, FlipcNodeId, Importance};
use flipc_core::layout::Geometry;
use flipc_core::wait::WaitRegistry;
use flipc_core::Flipc;
use flipc_engine::spsc;

fn queue_ops(c: &mut Criterion) {
    let cb = CommBuffer::new(Geometry::small()).expect("commbuf");
    let (ep, _) = cb
        .alloc_endpoint(EndpointType::Send, Importance::Normal)
        .expect("endpoint");
    c.bench_function("queue/release+process+acquire", |b| {
        let mut app = cb.app_queue(ep).expect("app queue");
        let eng = cb.engine_queue(ep).expect("engine queue");
        b.iter(|| {
            app.release(black_box(3)).expect("release");
            black_box(eng.peek());
            eng.advance();
            black_box(app.acquire());
        })
    });
}

fn counter_ops(c: &mut Criterion) {
    let cb = CommBuffer::new(Geometry::small()).expect("commbuf");
    let (ep, _) = cb
        .alloc_endpoint(EndpointType::Receive, Importance::Normal)
        .expect("endpoint");
    c.bench_function("counter/increment+read_and_reset", |b| {
        let eng = cb.drops_engine(ep).expect("engine side");
        let app = cb.drops_app(ep).expect("app side");
        b.iter(|| {
            eng.increment();
            black_box(app.read_and_reset());
        })
    });
}

fn lock_ops(c: &mut Criterion) {
    let cb = CommBuffer::new(Geometry::small()).expect("commbuf");
    let (ep, _) = cb
        .alloc_endpoint(EndpointType::Send, Importance::Normal)
        .expect("endpoint");
    c.bench_function("lock/uncontended_tas_pair", |b| {
        let lock = cb.endpoint_lock(ep).expect("lock");
        b.iter(|| {
            let g = lock.lock();
            black_box(&g);
        })
    });
}

fn spsc_ops(c: &mut Criterion) {
    c.bench_function("spsc/push+pop", |b| {
        let (mut tx, mut rx) = spsc::ring::<u64>(64);
        b.iter(|| {
            tx.push(black_box(7)).expect("push");
            black_box(rx.pop());
        })
    });
}

fn buffer_pool(c: &mut Criterion) {
    let cb = CommBuffer::new(Geometry::small()).expect("commbuf");
    c.bench_function("pool/alloc+free", |b| {
        b.iter(|| {
            let t = cb.alloc_buffer().expect("alloc");
            cb.free_buffer(black_box(t));
        })
    });
}

fn api_send_path(c: &mut Criterion) {
    // The full library send path against a hand-pumped engine: the
    // unlocked variant the paper's measurements use vs the TAS-locked one.
    let cb = Arc::new(CommBuffer::new(Geometry::small()).expect("commbuf"));
    let f = Flipc::attach(cb, FlipcNodeId(0), WaitRegistry::new());
    let ep = f
        .endpoint_allocate(EndpointType::Send, Importance::Normal)
        .expect("ep");
    let dest = EndpointAddress::new(FlipcNodeId(1), EndpointIndex(0), 1);
    let pump = |f: &Flipc, idx: EndpointIndex| {
        let q = f.commbuf().engine_queue(idx).expect("queue");
        while let Some(b) = q.peek() {
            f.commbuf()
                .header(b)
                .set_state(flipc_core::BufferState::Processed);
            q.advance();
        }
    };
    c.bench_function("api/send_unlocked+reclaim", |b| {
        b.iter(|| {
            let t = f.buffer_allocate().expect("buffer");
            f.send_unlocked(&ep, t, dest).expect("send");
            pump(&f, ep.index());
            let back = f
                .reclaim_send_unlocked(&ep)
                .expect("reclaim")
                .expect("token");
            f.buffer_free(back);
        })
    });
    c.bench_function("api/send_locked+reclaim", |b| {
        b.iter(|| {
            let t = f.buffer_allocate().expect("buffer");
            f.send(&ep, t, dest).expect("send");
            pump(&f, ep.index());
            let back = f.reclaim_send(&ep).expect("reclaim").expect("token");
            f.buffer_free(back);
        })
    });
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = queue_ops, counter_ops, lock_ops, spsc_ops, buffer_pool, api_send_path
}
criterion_main!(benches);
