//! `flipc-top`: a live inspector for a FLIPC node pair.
//!
//! Drives a two-node demo (in-process loopback fabric by default,
//! `--udp` for real `127.0.0.1` sockets through `flipc-net`'s
//! reliability layer), harvests telemetry and trace snapshots on an
//! interval, and renders what an operator needs: per-endpoint p50/p99
//! deliver latency, event rates, drop/retransmit counts, the per-peer
//! lifecycle table (liveness verdict, SRTT/RTTVAR estimator state,
//! current RTO, session epoch), and live stall reports from the
//! trace-gap analyzer.
//!
//! ```text
//! flipc-top [--interval MS] [--ticks N] [--once] [--json]
//!           [--inject-stall] [--udp] [--workload] [--stall-threshold MS]
//!           [--trace-out FILE] [--listen ADDR]
//! ```
//!
//! * `--once --json` — headless mode for CI: run a short window, emit one
//!   JSON document (timeline, stall reports, exposition page) to stdout.
//! * `--inject-stall` — freeze the engine pump mid-run with messages
//!   queued, so the stall analyzer has something real to attribute.
//! * `--workload` — drive the seeded pub-sub broadcast workload over the
//!   chaos cluster instead of the engine demo: workload-level trace
//!   events flow through the same timeline and stall analysis, and the
//!   exposition page carries the `flipc_workload_*` metric family. Fully
//!   deterministic (manual clock, pinned seed) — reruns are identical.
//! * `--trace-out FILE` — also write the raw trace events as text.
//! * `--listen ADDR` — serve the Prometheus-style exposition over HTTP
//!   while the demo runs (e.g. `--listen 127.0.0.1:9464`).
//!
//! The engines stay untouched by all of this: the inspector is strictly a
//! consumer of the wait-free recorders (trace rings, telemetry
//! histograms, transport counters).

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use flipc_core::api::{Flipc, LocalEndpoint};
use flipc_core::commbuf::CommBuffer;
use flipc_core::endpoint::{EndpointAddress, EndpointType, FlipcNodeId, Importance};
use flipc_core::inspect::PeerLiveness;
use flipc_core::layout::Geometry;
use flipc_core::wait::WaitRegistry;
use flipc_engine::engine::{Engine, EngineConfig};
use flipc_engine::loopback::fabric;
use flipc_net::{udp_transport, NetConfig, NodeAddr, NodeMap};
use flipc_obs::json::Value;
use flipc_obs::stall::{scan, StallConfig, StallReport};
use flipc_obs::timeline::TimelineBuilder;
use flipc_obs::trace::TraceEvent;
use flipc_obs::{
    expose_engine, expose_trace_lost, expose_transport, EngineTelemetry, EngineTelemetrySnapshot,
    ExpoServer, Exposition, TraceReader,
};

/// Command-line options.
struct Opts {
    interval: Duration,
    ticks: u32,
    json: bool,
    inject_stall: bool,
    udp: bool,
    workload: bool,
    stall_threshold: Duration,
    trace_out: Option<String>,
    listen: Option<String>,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts {
            interval: Duration::from_millis(250),
            ticks: 8,
            json: false,
            inject_stall: false,
            udp: false,
            workload: false,
            stall_threshold: Duration::from_millis(150),
            trace_out: None,
            listen: None,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--once" => opts.ticks = 2,
            "--json" => opts.json = true,
            "--inject-stall" => opts.inject_stall = true,
            "--udp" => opts.udp = true,
            "--workload" => opts.workload = true,
            "--interval" => {
                i += 1;
                opts.interval = Duration::from_millis(parse_num(&args, i, "--interval"));
            }
            "--ticks" => {
                i += 1;
                opts.ticks = parse_num(&args, i, "--ticks") as u32;
            }
            "--stall-threshold" => {
                i += 1;
                opts.stall_threshold =
                    Duration::from_millis(parse_num(&args, i, "--stall-threshold"));
            }
            "--trace-out" => {
                i += 1;
                opts.trace_out = Some(expect_arg(&args, i, "--trace-out"));
            }
            "--listen" => {
                i += 1;
                opts.listen = Some(expect_arg(&args, i, "--listen"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: flipc-top [--interval MS] [--ticks N] [--once] [--json]\n       \
                     [--inject-stall] [--udp] [--workload] [--stall-threshold MS]\n       \
                     [--trace-out FILE] [--listen ADDR]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("flipc-top: unknown flag {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    run(&opts)
}

fn expect_arg(args: &[String], i: usize, flag: &str) -> String {
    args.get(i).cloned().unwrap_or_else(|| {
        eprintln!("flipc-top: {flag} needs a value");
        std::process::exit(2);
    })
}

fn parse_num(args: &[String], i: usize, flag: &str) -> u64 {
    expect_arg(args, i, flag).parse().unwrap_or_else(|_| {
        eprintln!("flipc-top: {flag} needs a number");
        std::process::exit(2);
    })
}

/// One demo node: application handle, inline-pumped engine, and the
/// observer-side taps (trace reader, telemetry, scan carry state).
struct DemoNode {
    app: Flipc,
    engine: Engine,
    tx: LocalEndpoint,
    rx: LocalEndpoint,
    reader: TraceReader,
    telemetry: Arc<EngineTelemetry>,
    /// Per-node last-event stamps carried across drains so a stall
    /// spanning two ticks is still one gap.
    carry: Vec<(u16, u64)>,
    /// Telemetry merged across ticks (for the final p50/p99 rendering).
    accum: Option<EngineTelemetrySnapshot>,
    /// Cumulative retransmitted-frame count at the last tick, for deltas.
    prev_retransmitted: u64,
    lost: u64,
}

impl DemoNode {
    fn new(app: Flipc, mut engine: Engine) -> DemoNode {
        let reader = engine.install_trace(8192);
        let telemetry = engine.telemetry();
        let tx = app
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .expect("allocate send endpoint");
        let rx = app
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .expect("allocate receive endpoint");
        DemoNode {
            app,
            engine,
            tx,
            rx,
            reader,
            telemetry,
            carry: Vec::new(),
            accum: None,
            prev_retransmitted: 0,
            lost: 0,
        }
    }
}

fn geometry() -> Geometry {
    Geometry {
        ring_capacity: 32,
        buffers: 128,
        ..Geometry::small()
    }
}

/// Builds the two demo nodes on the chosen transport.
fn build_nodes(udp: bool) -> Vec<DemoNode> {
    let geo = geometry();
    let mk = |id: u16, transport: Box<dyn flipc_engine::transport::Transport>| {
        let cb = Arc::new(CommBuffer::new(geo).expect("geometry"));
        let registry = WaitRegistry::new();
        let app = Flipc::attach(cb.clone(), FlipcNodeId(id), registry.clone());
        DemoNode::new(
            app,
            Engine::new(cb, transport, registry, EngineConfig::default()),
        )
    };
    if udp {
        // Same bootstrap as the flipc-net demo: node 0 binds an ephemeral
        // port, node 1 routes to it statically; node 0 learns node 1's
        // port from the first arriving datagram.
        let mut map0 = NodeMap::new();
        map0.insert(
            FlipcNodeId(0),
            NodeAddr::Static(SocketAddr::from(([127, 0, 0, 1], 0))),
        )
        .insert(FlipcNodeId(1), NodeAddr::Dynamic);
        let t0 = udp_transport(&map0, FlipcNodeId(0), NetConfig::default()).expect("bind node 0");
        let addr0 = t0.link().local_addr().expect("local addr");
        let mut map1 = NodeMap::new();
        map1.insert(FlipcNodeId(0), NodeAddr::Static(addr0)).insert(
            FlipcNodeId(1),
            NodeAddr::Static(SocketAddr::from(([127, 0, 0, 1], 0))),
        );
        let t1 = udp_transport(&map1, FlipcNodeId(1), NetConfig::default()).expect("bind node 1");
        vec![mk(0, Box::new(t0)), mk(1, Box::new(t1))]
    } else {
        let mut ports = fabric(2, 256);
        let p1 = ports.pop().expect("port 1");
        let p0 = ports.pop().expect("port 0");
        vec![mk(0, Box::new(p0)), mk(1, Box::new(p1))]
    }
}

/// Tops up both receive rings from the buffer pools.
fn stock_receivers(nodes: &mut [DemoNode]) {
    for n in nodes.iter_mut() {
        while let Ok(buf) = n.app.buffer_allocate() {
            match n.app.provide_receive_buffer_unlocked(&n.rx, buf) {
                Ok(()) => {}
                Err(r) => {
                    n.app.buffer_free(r.token);
                    break;
                }
            }
        }
    }
}

/// One ping-pong round: node 0 pings node 1, node 1 pongs back. With the
/// UDP transport a hop needs several engine passes, so each receive polls
/// a bounded pump loop. In demo traffic a dropped round is fine — the
/// engines' own counters record it.
///
/// `pinger` pings `ponger`, who echoes back. Over UDP the pinger must be
/// node 1: node 0's routing entry for node 1 is `Dynamic`, learned from
/// the first datagram node 1 sends, so traffic has to originate there.
fn round(
    nodes: &mut [DemoNode],
    pinger: usize,
    ponger: usize,
    to_ponger: EndpointAddress,
    to_pinger: EndpointAddress,
) {
    stock_receivers(nodes);
    for n in nodes.iter_mut() {
        while let Ok(Some(tok)) = n.app.reclaim_send_unlocked(&n.tx) {
            n.app.buffer_free(tok);
        }
    }
    if let Ok(buf) = nodes[pinger].app.buffer_allocate() {
        if let Err(r) = nodes[pinger]
            .app
            .send_unlocked(&nodes[pinger].tx, buf, to_ponger)
        {
            nodes[pinger].app.buffer_free(r.token);
            return;
        }
    }
    for _ in 0..128 {
        for n in nodes.iter_mut() {
            n.engine.iterate();
        }
        if let Ok(Some(got)) = nodes[ponger].app.recv_unlocked(&nodes[ponger].rx) {
            let _ = nodes[ponger]
                .app
                .send_unlocked(&nodes[ponger].tx, got.token, to_pinger);
        }
        if let Ok(Some(back)) = nodes[pinger].app.recv_unlocked(&nodes[pinger].rx) {
            nodes[pinger].app.buffer_free(back.token);
            return;
        }
    }
}

/// Queues `count` pings on the pinger WITHOUT pumping any engine — the
/// backlog the stall analyzer should attribute the frozen interval to.
fn queue_burst(nodes: &mut [DemoNode], pinger: usize, to_ponger: EndpointAddress, count: usize) {
    stock_receivers(nodes);
    for _ in 0..count {
        let Ok(buf) = nodes[pinger].app.buffer_allocate() else {
            break;
        };
        if let Err(r) = nodes[pinger]
            .app
            .send_unlocked(&nodes[pinger].tx, buf, to_ponger)
        {
            nodes[pinger].app.buffer_free(r.token);
            break;
        }
    }
}

/// Everything one tick harvested, for rendering.
struct TickHarvest {
    stalls: Vec<StallReport>,
}

/// Drains every node's trace ring and telemetry, scans for stalls, and
/// folds the results into the long-lived builder/accumulators.
fn harvest_tick(
    nodes: &mut [DemoNode],
    builder: &mut TimelineBuilder,
    trace_text: &mut String,
    cfg: &StallConfig,
) -> TickHarvest {
    use std::fmt::Write as _;
    let mut stalls = Vec::new();
    let mut batch: Vec<TraceEvent> = Vec::with_capacity(4096);
    for n in nodes.iter_mut() {
        batch.clear();
        n.reader.drain_into(&mut batch);
        let lost = n.reader.lost();
        n.lost += lost;
        builder.note_lost(lost);
        let work = n.telemetry.harvest();
        let (retransmitted, suspects) = n
            .engine
            .transport_snapshot()
            .map(|s| {
                let r = s
                    .paths
                    .iter()
                    .map(|p| u64::from(p.retransmitted))
                    .sum::<u64>();
                let sus = s
                    .paths
                    .iter()
                    .filter(|p| p.liveness != PeerLiveness::Healthy)
                    .count() as u32;
                (r, sus)
            })
            .unwrap_or((0, 0));
        let delta = retransmitted.saturating_sub(n.prev_retransmitted);
        n.prev_retransmitted = retransmitted;
        stalls.extend(scan(
            &batch,
            &n.carry,
            &work.iteration_work,
            delta,
            suspects,
            cfg,
        ));
        for ev in &batch {
            match n.carry.iter_mut().find(|(node, _)| *node == ev.node) {
                Some((_, t)) => *t = ev.t_ns,
                None => n.carry.push((ev.node, ev.t_ns)),
            }
            let _ = writeln!(trace_text, "{ev}");
        }
        builder.ingest(&batch);
        match n.accum.as_mut() {
            None => n.accum = Some(work),
            Some(acc) => {
                acc.iteration_work.merge(&work.iteration_work);
                for (a, b) in acc.deliver_latency.iter_mut().zip(&work.deliver_latency) {
                    a.merge(b);
                }
            }
        }
    }
    TickHarvest { stalls }
}

/// Renders the current exposition page from the accumulated state.
fn exposition(nodes: &[DemoNode]) -> String {
    let mut expo = Exposition::new();
    for (i, n) in nodes.iter().enumerate() {
        if let Some(acc) = &n.accum {
            expose_engine(&mut expo, i as u16, acc);
        }
        expose_trace_lost(&mut expo, i as u16, n.lost);
        if let Some(snap) = n.engine.transport_snapshot() {
            expose_transport(&mut expo, &snap);
        }
    }
    expo.render()
}

/// Renders the per-peer lifecycle table: failure-detector verdict, RTT
/// estimator state, currently armed RTO, and session epoch per path.
fn peer_table(nodes: &[DemoNode]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, n) in nodes.iter().enumerate() {
        let Some(snap) = n.engine.transport_snapshot() else {
            continue;
        };
        for p in &snap.paths {
            let _ = writeln!(
                out,
                "node {i} -> peer {}: {:7} srtt={} rttvar={} rto={} epoch={} \
                 in-flight={} failed={}",
                p.peer.0,
                p.liveness.name(),
                p.srtt,
                p.rttvar,
                p.rto,
                p.epoch,
                p.in_flight,
                p.failed,
            );
        }
    }
    out
}

/// The same lifecycle table as structured rows for the JSON document.
fn peers_json(nodes: &[DemoNode]) -> Value {
    let mut rows = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        let Some(snap) = n.engine.transport_snapshot() else {
            continue;
        };
        for p in &snap.paths {
            rows.push(Value::object([
                ("node", Value::from(i as u64)),
                ("peer", Value::from(u64::from(p.peer.0))),
                ("liveness", Value::from(p.liveness.name())),
                ("srtt_ticks", Value::from(p.srtt)),
                ("rttvar_ticks", Value::from(p.rttvar)),
                ("rto_ticks", Value::from(p.rto)),
                ("epoch", Value::from(u64::from(p.epoch))),
                ("in_flight", Value::from(u64::from(p.in_flight))),
                ("failed", Value::from(u64::from(p.failed))),
                ("stale_epoch", Value::from(u64::from(p.stale_epoch))),
                ("pings", Value::from(u64::from(p.pings))),
            ]));
        }
    }
    Value::Array(rows)
}

/// Per-node telemetry summary for the JSON document.
fn telemetry_json(nodes: &[DemoNode]) -> Value {
    Value::Array(
        nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let acc = n.accum.clone().unwrap_or(EngineTelemetrySnapshot {
                    iteration_work: flipc_core::hist::HistogramSnapshot::empty(
                        flipc_core::hist::BUCKETS,
                    ),
                    deliver_latency: Vec::new(),
                });
                Value::object([
                    ("node", Value::from(i as u64)),
                    ("iterations", Value::from(acc.iteration_work.count())),
                    (
                        "mean_work",
                        Value::from(acc.iteration_work.mean().unwrap_or(0.0)),
                    ),
                    (
                        "endpoints",
                        Value::Array(
                            acc.deliver_latency
                                .iter()
                                .enumerate()
                                .filter(|(_, h)| h.count() > 0)
                                .map(|(e, h)| {
                                    Value::object([
                                        ("endpoint", Value::from(e as u64)),
                                        ("delivers", Value::from(h.count())),
                                        ("p50_ns", Value::from(h.quantile(0.5).unwrap_or(0.0))),
                                        ("p99_ns", Value::from(h.quantile(0.99).unwrap_or(0.0))),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// `--workload` mode: drives the seeded pub-sub broadcast over the chaos
/// cluster — a storm, a subscriber crash, a fresh-epoch reboot — with its
/// workload-level trace feeding the same timeline/stall pipeline the
/// engine demo uses, and the `flipc_workload_*` family on the exposition
/// page. Manual clock + pinned seed: the whole run is reproducible.
fn run_workload(opts: &Opts) -> ExitCode {
    use flipc_net::FaultConfig;
    use flipc_workloads::{Broadcast, BroadcastConfig, TopicSpec};

    let net = NetConfig {
        window: 8,
        rto: 100,
        rto_min: 10,
        rto_max: 400,
        suspect_strikes: 2,
        dead_strikes: 8,
        heartbeat_interval: 500,
        ..NetConfig::default()
    };
    let topics = vec![TopicSpec {
        topic: 0,
        publisher: 0,
        subscribers: vec![1, 2, 3],
    }];
    let mut b = Broadcast::new(4, net, 0xF11C_0070, BroadcastConfig::default(), topics);
    let (writer, mut reader) = flipc_obs::trace_ring(16384);
    b.install_trace(writer);

    b.cluster_mut().log("storm on the publisher's uplink");
    b.cluster_mut().faults(0, FaultConfig::lossy(0.20));
    b.publish_burst(15);
    b.run(120);
    b.cluster_mut().log("subscriber 2 dies mid-stream");
    b.cluster_mut().crash(2);
    b.publish_burst(15);
    b.run(120);
    b.cluster_mut().log("subscriber 2 reboots on a fresh epoch");
    b.cluster_mut().restart(2);
    b.cluster_mut().log("storm passes; drain to quiesce");
    b.cluster_mut().faults(0, FaultConfig::default());
    for _ in 0..400 {
        if b.completeness_violations().is_empty() {
            break;
        }
        b.run(25);
    }

    // Harvest the workload trace through the standard consumer pipeline.
    // The manual clock ticks stand in for nanoseconds; the crash leaves
    // subscriber 2's endpoint silent for thousands of ticks, which is
    // exactly the kind of gap the stall analyzer attributes.
    let mut batch: Vec<TraceEvent> = Vec::new();
    reader.drain_into(&mut batch);
    let mut builder = TimelineBuilder::new();
    builder.note_lost(reader.lost());
    builder.ingest(&batch);
    let timeline = builder.timeline();
    let cfg = StallConfig {
        threshold_ns: 2_000,
        ..StallConfig::default()
    };
    let idle = flipc_core::hist::HistogramSnapshot::empty(flipc_core::hist::BUCKETS);
    let stalls = scan(&batch, &[], &idle, 0, 0, &cfg);

    let snaps = b.snapshots();
    let mut expo = Exposition::new();
    for s in &snaps {
        flipc_obs::expose_workload(&mut expo, s);
    }
    if let Some(t) = b.cluster_mut().snapshot(0) {
        expose_transport(&mut expo, &t);
    }

    if let Some(path) = &opts.trace_out {
        use std::fmt::Write as _;
        let mut text = String::new();
        for ev in &batch {
            let _ = writeln!(text, "{ev}");
        }
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("flipc-top: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if opts.json {
        let doc = Value::object([
            ("schema", Value::from(1u64)),
            ("mode", Value::from("workload")),
            ("workload", Value::from("broadcast")),
            ("timeline", timeline.to_json()),
            (
                "stalls",
                Value::Array(stalls.iter().map(StallReport::to_json).collect()),
            ),
            (
                "workloads",
                Value::Array(snaps.iter().map(|s| s.to_json()).collect()),
            ),
            ("exposition", Value::from(expo.render().as_str())),
        ]);
        println!("{}", doc.render_pretty());
    } else {
        print!("{}", b.cluster_mut().transcript_text());
        println!("=== workloads ===");
        for s in &snaps {
            println!(
                "{} node {}: published={} delivered={} retried={} dropped={} backlog={}",
                s.workload, s.node, s.published, s.delivered, s.retried, s.dropped, s.backlog
            );
            for c in &s.classes {
                if c.latency.count() > 0 {
                    println!(
                        "  class {}: {} delivered, p50={:.0} p99={:.0} ticks",
                        c.class,
                        c.latency.count(),
                        c.latency.quantile(0.5).unwrap_or(0.0),
                        c.latency.quantile(0.99).unwrap_or(0.0),
                    );
                }
            }
        }
        println!("=== timeline ===");
        print!("{}", timeline.render());
        println!("=== stalls ({}) ===", stalls.len());
        for s in &stalls {
            println!("{s}");
        }
        println!("=== exposition ===");
        print!("{}", expo.render());
    }

    // Sanity for CI: the broadcast must quiesce complete and its trace
    // must reach the timeline as per-endpoint activity.
    if !b.completeness_violations().is_empty() || !b.violations().is_empty() {
        eprintln!("flipc-top: workload failed to quiesce cleanly");
        return ExitCode::FAILURE;
    }
    if timeline.endpoints.is_empty() {
        eprintln!("flipc-top: workload produced no endpoint activity");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run(opts: &Opts) -> ExitCode {
    if opts.workload {
        return run_workload(opts);
    }
    let mut nodes = build_nodes(opts.udp);
    // Over UDP, traffic must originate at node 1 (see `round`).
    let (pinger, ponger) = if opts.udp { (1, 0) } else { (0, 1) };
    let to_ponger = nodes[ponger].app.address(&nodes[ponger].rx);
    let to_pinger = nodes[pinger].app.address(&nodes[pinger].rx);
    let cfg = StallConfig {
        threshold_ns: opts.stall_threshold.as_nanos() as u64,
        ..StallConfig::default()
    };

    // The optional HTTP listener serves whatever page the last tick
    // rendered (observer-side state only).
    let page: Arc<Mutex<String>> = Arc::new(Mutex::new(String::new()));
    let _server = match &opts.listen {
        None => None,
        Some(addr) => {
            let page = page.clone();
            match ExpoServer::spawn(addr, move || page.lock().expect("page lock").clone()) {
                Ok(s) => {
                    eprintln!("flipc-top: serving metrics on http://{}", s.addr());
                    Some(s)
                }
                Err(e) => {
                    eprintln!("flipc-top: cannot listen on {addr}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let mut builder = TimelineBuilder::new();
    let mut trace_text = String::new();
    let mut all_stalls: Vec<StallReport> = Vec::new();
    let mut injected = !opts.inject_stall;

    for tick in 0..opts.ticks {
        let deadline = Instant::now() + opts.interval;
        let halfway = Instant::now() + opts.interval / 2;
        while Instant::now() < deadline {
            round(&mut nodes, pinger, ponger, to_ponger, to_pinger);
            if !injected && Instant::now() >= halfway {
                injected = true;
                // Freeze the pump with work queued: the trace goes silent
                // for several thresholds, and the flush on resume gives
                // the analyzer its backlog evidence.
                queue_burst(&mut nodes, pinger, to_ponger, 24);
                std::thread::sleep(4 * opts.stall_threshold);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let h = harvest_tick(&mut nodes, &mut builder, &mut trace_text, &cfg);
        *page.lock().expect("page lock") = exposition(&nodes);
        if !opts.json {
            println!("--- tick {}/{} ---", tick + 1, opts.ticks);
            for (i, n) in nodes.iter().enumerate() {
                if let Some(acc) = &n.accum {
                    print!("node {i}: {}", acc.render());
                }
            }
            print!("{}", peer_table(&nodes));
            for s in &h.stalls {
                println!("STALL {s}");
            }
        }
        all_stalls.extend(h.stalls);
    }

    let timeline = builder.timeline();
    *page.lock().expect("page lock") = exposition(&nodes);
    if let Some(path) = &opts.trace_out {
        if let Err(e) = std::fs::write(path, &trace_text) {
            eprintln!("flipc-top: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if opts.json {
        let doc = Value::object([
            ("schema", Value::from(1u64)),
            (
                "mode",
                Value::from(if opts.udp { "udp" } else { "loopback" }),
            ),
            ("ticks", Value::from(u64::from(opts.ticks))),
            ("stall_injected", Value::Bool(opts.inject_stall)),
            ("timeline", timeline.to_json()),
            (
                "stalls",
                Value::Array(all_stalls.iter().map(StallReport::to_json).collect()),
            ),
            ("telemetry", telemetry_json(&nodes)),
            ("peers", peers_json(&nodes)),
            ("exposition", Value::from(exposition(&nodes).as_str())),
        ]);
        println!("{}", doc.render_pretty());
    } else {
        println!("=== timeline ===");
        print!("{}", timeline.render());
        println!("=== peers ===");
        print!("{}", peer_table(&nodes));
        println!("=== stalls ({}) ===", all_stalls.len());
        for s in &all_stalls {
            println!("{s}");
        }
        println!("=== exposition ===");
        print!("{}", exposition(&nodes));
    }

    // Sanity for CI: the demo must have produced at least one endpoint
    // timeline, and stall detection must match the injection request.
    if timeline.endpoints.is_empty() {
        eprintln!("flipc-top: demo produced no endpoint activity");
        return ExitCode::FAILURE;
    }
    if opts.inject_stall && all_stalls.is_empty() {
        eprintln!("flipc-top: stall injected but not detected");
        return ExitCode::FAILURE;
    }
    if !opts.inject_stall && !all_stalls.is_empty() {
        eprintln!(
            "flipc-top: {} spurious stall report(s) on healthy traffic \
             (raise --stall-threshold on very noisy machines)",
            all_stalls.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
