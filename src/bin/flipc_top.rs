//! `flipc-top`: a live inspector for a FLIPC node pair.
//!
//! Drives a two-node demo (in-process loopback fabric by default,
//! `--udp` for real `127.0.0.1` sockets through `flipc-net`'s
//! reliability layer), harvests telemetry and trace snapshots on an
//! interval, and renders what an operator needs: per-endpoint p50/p99
//! deliver latency, event rates, drop/retransmit counts, the per-peer
//! lifecycle table (liveness verdict, SRTT/RTTVAR estimator state,
//! current RTO, session epoch), and live stall reports from the
//! trace-gap analyzer.
//!
//! ```text
//! flipc-top [--interval MS] [--ticks N] [--once] [--json]
//!           [--inject-stall] [--udp] [--workload] [--cluster]
//!           [--stall-threshold MS] [--trace-out FILE] [--listen ADDR]
//! ```
//!
//! * `--once --json` — headless mode for CI: run a short window, emit one
//!   JSON document (timeline, stall reports, exposition page) to stdout.
//! * `--inject-stall` — freeze the engine pump mid-run with messages
//!   queued, so the stall analyzer has something real to attribute.
//! * `--cluster` — the cross-process mode: spawn two real OS processes,
//!   each running one engine over UDP with its own exposition server,
//!   scrape both expositions live ([`flipc_obs::ClusterScraper`]), and at
//!   the end merge the two trace timelines onto node 0's clock using the
//!   transport's wire-measured offset estimate
//!   ([`flipc_obs::merge`]) — cross-node send→deliver chains come out
//!   with dispersion-derived error bars, and per-node stall reports are
//!   ranked into a cluster bottleneck table. With `--inject-stall` the
//!   freeze happens inside the node-1 child, and the ranking must name
//!   it. (The children are re-invocations of this binary with the hidden
//!   `--cluster-node` flag.)
//! * `--workload` — drive the seeded pub-sub broadcast workload over the
//!   chaos cluster instead of the engine demo: workload-level trace
//!   events flow through the same timeline and stall analysis, and the
//!   exposition page carries the `flipc_workload_*` metric family. Fully
//!   deterministic (manual clock, pinned seed) — reruns are identical.
//! * `--trace-out FILE` — also write the raw trace events as text.
//! * `--listen ADDR` — serve the Prometheus-style exposition over HTTP
//!   while the demo runs (e.g. `--listen 127.0.0.1:9464`).
//!
//! The engines stay untouched by all of this: the inspector is strictly a
//! consumer of the wait-free recorders (trace rings, telemetry
//! histograms, transport counters).

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use flipc_core::api::{Flipc, LocalEndpoint};
use flipc_core::commbuf::CommBuffer;
use flipc_core::endpoint::{EndpointAddress, EndpointType, FlipcNodeId, Importance};
use flipc_core::inspect::PeerLiveness;
use flipc_core::layout::Geometry;
use flipc_core::wait::WaitRegistry;
use flipc_engine::engine::{Engine, EngineConfig};
use flipc_engine::loopback::fabric;
use flipc_net::{udp_transport, NetConfig, NodeAddr, NodeMap};
use flipc_obs::json::Value;
use flipc_obs::merge::{events_from_json, merge, MergedTimeline, NodeInput};
use flipc_obs::stall::{rank_nodes, scan, NodeStallRank, StallConfig, StallReport};
use flipc_obs::timeline::{Timeline, TimelineBuilder};
use flipc_obs::trace::TraceEvent;
use flipc_obs::{
    expose_engine, expose_trace_lost, expose_transport, merge_pages, sample_value, ClusterScraper,
    EngineTelemetry, EngineTelemetrySnapshot, ExpoServer, Exposition, TraceReader,
};

/// Version of the `--once --json` document shape. Bump when a section is
/// added or reshaped; the golden tests below lock the rendering.
const SCHEMA: u64 = 3;

/// Command-line options.
struct Opts {
    interval: Duration,
    ticks: u32,
    json: bool,
    inject_stall: bool,
    udp: bool,
    workload: bool,
    cluster: bool,
    /// Hidden: this invocation IS a cluster child running the given node.
    cluster_node: Option<u16>,
    /// Hidden (node-1 child): the node-0 child's bound UDP address.
    peer_addr: Option<SocketAddr>,
    /// Hidden (node-1 child): the node-0 child's packed inbox address.
    peer_inbox: Option<u64>,
    /// Hidden (children): how long to run the traffic loop.
    run_ms: u64,
    stall_threshold: Duration,
    trace_out: Option<String>,
    listen: Option<String>,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts {
            interval: Duration::from_millis(250),
            ticks: 8,
            json: false,
            inject_stall: false,
            udp: false,
            workload: false,
            cluster: false,
            cluster_node: None,
            peer_addr: None,
            peer_inbox: None,
            run_ms: 0,
            stall_threshold: Duration::from_millis(150),
            trace_out: None,
            listen: None,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--once" => opts.ticks = 2,
            "--json" => opts.json = true,
            "--inject-stall" => opts.inject_stall = true,
            "--udp" => opts.udp = true,
            "--workload" => opts.workload = true,
            "--cluster" => opts.cluster = true,
            "--cluster-node" => {
                i += 1;
                opts.cluster_node = Some(parse_num(&args, i, "--cluster-node") as u16);
            }
            "--peer-addr" => {
                i += 1;
                let raw = expect_arg(&args, i, "--peer-addr");
                opts.peer_addr = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("flipc-top: --peer-addr needs HOST:PORT");
                    std::process::exit(2);
                }));
            }
            "--peer-inbox" => {
                i += 1;
                opts.peer_inbox = Some(parse_num(&args, i, "--peer-inbox"));
            }
            "--run-ms" => {
                i += 1;
                opts.run_ms = parse_num(&args, i, "--run-ms");
            }
            "--interval" => {
                i += 1;
                opts.interval = Duration::from_millis(parse_num(&args, i, "--interval"));
            }
            "--ticks" => {
                i += 1;
                opts.ticks = parse_num(&args, i, "--ticks") as u32;
            }
            "--stall-threshold" => {
                i += 1;
                opts.stall_threshold =
                    Duration::from_millis(parse_num(&args, i, "--stall-threshold"));
            }
            "--trace-out" => {
                i += 1;
                opts.trace_out = Some(expect_arg(&args, i, "--trace-out"));
            }
            "--listen" => {
                i += 1;
                opts.listen = Some(expect_arg(&args, i, "--listen"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: flipc-top [--interval MS] [--ticks N] [--once] [--json]\n       \
                     [--inject-stall] [--udp] [--workload] [--cluster]\n       \
                     [--stall-threshold MS] [--trace-out FILE] [--listen ADDR]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("flipc-top: unknown flag {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    run(&opts)
}

fn expect_arg(args: &[String], i: usize, flag: &str) -> String {
    args.get(i).cloned().unwrap_or_else(|| {
        eprintln!("flipc-top: {flag} needs a value");
        std::process::exit(2);
    })
}

fn parse_num(args: &[String], i: usize, flag: &str) -> u64 {
    expect_arg(args, i, flag).parse().unwrap_or_else(|_| {
        eprintln!("flipc-top: {flag} needs a number");
        std::process::exit(2);
    })
}

/// One demo node: application handle, inline-pumped engine, and the
/// observer-side taps (trace reader, telemetry, scan carry state).
struct DemoNode {
    app: Flipc,
    engine: Engine,
    tx: LocalEndpoint,
    rx: LocalEndpoint,
    reader: TraceReader,
    telemetry: Arc<EngineTelemetry>,
    /// Per-node last-event stamps carried across drains so a stall
    /// spanning two ticks is still one gap.
    carry: Vec<(u16, u64)>,
    /// Telemetry merged across ticks (for the final p50/p99 rendering).
    accum: Option<EngineTelemetrySnapshot>,
    /// Cumulative retransmitted-frame count at the last tick, for deltas.
    prev_retransmitted: u64,
    lost: u64,
}

impl DemoNode {
    fn new(app: Flipc, mut engine: Engine) -> DemoNode {
        let reader = engine.install_trace(8192);
        let telemetry = engine.telemetry();
        let tx = app
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .expect("allocate send endpoint");
        let rx = app
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .expect("allocate receive endpoint");
        DemoNode {
            app,
            engine,
            tx,
            rx,
            reader,
            telemetry,
            carry: Vec::new(),
            accum: None,
            prev_retransmitted: 0,
            lost: 0,
        }
    }
}

fn geometry() -> Geometry {
    Geometry {
        ring_capacity: 32,
        buffers: 128,
        ..Geometry::small()
    }
}

/// Builds the two demo nodes on the chosen transport.
fn build_nodes(udp: bool) -> Vec<DemoNode> {
    let geo = geometry();
    let mk = |id: u16, transport: Box<dyn flipc_engine::transport::Transport>| {
        let cb = Arc::new(CommBuffer::new(geo).expect("geometry"));
        let registry = WaitRegistry::new();
        let app = Flipc::attach(cb.clone(), FlipcNodeId(id), registry.clone());
        DemoNode::new(
            app,
            Engine::new(cb, transport, registry, EngineConfig::default()),
        )
    };
    if udp {
        // Same bootstrap as the flipc-net demo: node 0 binds an ephemeral
        // port, node 1 routes to it statically; node 0 learns node 1's
        // port from the first arriving datagram.
        let mut map0 = NodeMap::new();
        map0.insert(
            FlipcNodeId(0),
            NodeAddr::Static(SocketAddr::from(([127, 0, 0, 1], 0))),
        )
        .insert(FlipcNodeId(1), NodeAddr::Dynamic);
        let t0 = udp_transport(&map0, FlipcNodeId(0), NetConfig::default()).expect("bind node 0");
        let addr0 = t0.link().local_addr().expect("local addr");
        let mut map1 = NodeMap::new();
        map1.insert(FlipcNodeId(0), NodeAddr::Static(addr0)).insert(
            FlipcNodeId(1),
            NodeAddr::Static(SocketAddr::from(([127, 0, 0, 1], 0))),
        );
        let t1 = udp_transport(&map1, FlipcNodeId(1), NetConfig::default()).expect("bind node 1");
        vec![mk(0, Box::new(t0)), mk(1, Box::new(t1))]
    } else {
        let mut ports = fabric(2, 256);
        let p1 = ports.pop().expect("port 1");
        let p0 = ports.pop().expect("port 0");
        vec![mk(0, Box::new(p0)), mk(1, Box::new(p1))]
    }
}

/// Tops up both receive rings from the buffer pools.
fn stock_receivers(nodes: &mut [DemoNode]) {
    for n in nodes.iter_mut() {
        while let Ok(buf) = n.app.buffer_allocate() {
            match n.app.provide_receive_buffer_unlocked(&n.rx, buf) {
                Ok(()) => {}
                Err(r) => {
                    n.app.buffer_free(r.token);
                    break;
                }
            }
        }
    }
}

/// One ping-pong round: node 0 pings node 1, node 1 pongs back. With the
/// UDP transport a hop needs several engine passes, so each receive polls
/// a bounded pump loop. In demo traffic a dropped round is fine — the
/// engines' own counters record it.
///
/// `pinger` pings `ponger`, who echoes back. Over UDP the pinger must be
/// node 1: node 0's routing entry for node 1 is `Dynamic`, learned from
/// the first datagram node 1 sends, so traffic has to originate there.
fn round(
    nodes: &mut [DemoNode],
    pinger: usize,
    ponger: usize,
    to_ponger: EndpointAddress,
    to_pinger: EndpointAddress,
) {
    stock_receivers(nodes);
    for n in nodes.iter_mut() {
        while let Ok(Some(tok)) = n.app.reclaim_send_unlocked(&n.tx) {
            n.app.buffer_free(tok);
        }
    }
    if let Ok(buf) = nodes[pinger].app.buffer_allocate() {
        if let Err(r) = nodes[pinger]
            .app
            .send_unlocked(&nodes[pinger].tx, buf, to_ponger)
        {
            nodes[pinger].app.buffer_free(r.token);
            return;
        }
    }
    for _ in 0..128 {
        for n in nodes.iter_mut() {
            n.engine.iterate();
        }
        if let Ok(Some(got)) = nodes[ponger].app.recv_unlocked(&nodes[ponger].rx) {
            let _ = nodes[ponger]
                .app
                .send_unlocked(&nodes[ponger].tx, got.token, to_pinger);
        }
        if let Ok(Some(back)) = nodes[pinger].app.recv_unlocked(&nodes[pinger].rx) {
            nodes[pinger].app.buffer_free(back.token);
            return;
        }
    }
}

/// Queues `count` pings on the pinger WITHOUT pumping any engine — the
/// backlog the stall analyzer should attribute the frozen interval to.
fn queue_burst(nodes: &mut [DemoNode], pinger: usize, to_ponger: EndpointAddress, count: usize) {
    stock_receivers(nodes);
    for _ in 0..count {
        let Ok(buf) = nodes[pinger].app.buffer_allocate() else {
            break;
        };
        if let Err(r) = nodes[pinger]
            .app
            .send_unlocked(&nodes[pinger].tx, buf, to_ponger)
        {
            nodes[pinger].app.buffer_free(r.token);
            break;
        }
    }
}

/// Everything one tick harvested, for rendering.
struct TickHarvest {
    stalls: Vec<StallReport>,
}

/// Drains every node's trace ring and telemetry, scans for stalls, and
/// folds the results into the long-lived builder/accumulators. Drained
/// events also accumulate in `all_events` — the raw feed behind
/// `--trace-out` and the cluster children's merged-timeline shipping.
fn harvest_tick(
    nodes: &mut [DemoNode],
    builder: &mut TimelineBuilder,
    all_events: &mut Vec<TraceEvent>,
    cfg: &StallConfig,
) -> TickHarvest {
    let mut stalls = Vec::new();
    let mut batch: Vec<TraceEvent> = Vec::with_capacity(4096);
    for n in nodes.iter_mut() {
        batch.clear();
        n.reader.drain_into(&mut batch);
        let lost = n.reader.lost();
        n.lost += lost;
        builder.note_lost(lost);
        let work = n.telemetry.harvest();
        let (retransmitted, suspects) = n
            .engine
            .transport_snapshot()
            .map(|s| {
                let r = s
                    .paths
                    .iter()
                    .map(|p| u64::from(p.retransmitted))
                    .sum::<u64>();
                let sus = s
                    .paths
                    .iter()
                    .filter(|p| p.liveness != PeerLiveness::Healthy)
                    .count() as u32;
                (r, sus)
            })
            .unwrap_or((0, 0));
        let delta = retransmitted.saturating_sub(n.prev_retransmitted);
        n.prev_retransmitted = retransmitted;
        stalls.extend(scan(
            &batch,
            &n.carry,
            &work.iteration_work,
            delta,
            suspects,
            cfg,
        ));
        for ev in &batch {
            match n.carry.iter_mut().find(|(node, _)| *node == ev.node) {
                Some((_, t)) => *t = ev.t_ns,
                None => n.carry.push((ev.node, ev.t_ns)),
            }
        }
        builder.ingest(&batch);
        all_events.extend_from_slice(&batch);
        match n.accum.as_mut() {
            None => n.accum = Some(work),
            Some(acc) => {
                acc.iteration_work.merge(&work.iteration_work);
                for (a, b) in acc.deliver_latency.iter_mut().zip(&work.deliver_latency) {
                    a.merge(b);
                }
            }
        }
    }
    TickHarvest { stalls }
}

/// Renders drained events one per line (the `--trace-out` format).
fn trace_text(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for ev in events {
        let _ = writeln!(out, "{ev}");
    }
    out
}

/// Renders the current exposition page from the accumulated state.
fn exposition(nodes: &[DemoNode]) -> String {
    let mut expo = Exposition::new();
    for (i, n) in nodes.iter().enumerate() {
        if let Some(acc) = &n.accum {
            expose_engine(&mut expo, i as u16, acc);
        }
        expose_trace_lost(&mut expo, i as u16, n.lost);
        if let Some(snap) = n.engine.transport_snapshot() {
            expose_transport(&mut expo, &snap);
        }
    }
    expo.render()
}

/// Renders the per-peer lifecycle table: failure-detector verdict, RTT
/// estimator state, currently armed RTO, and session epoch per path.
fn peer_table(nodes: &[DemoNode]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, n) in nodes.iter().enumerate() {
        let Some(snap) = n.engine.transport_snapshot() else {
            continue;
        };
        for p in &snap.paths {
            let _ = writeln!(
                out,
                "node {i} -> peer {}: {:7} srtt={} rttvar={} rto={} epoch={} \
                 in-flight={} credit={} stalls={} failed={}",
                p.peer.0,
                p.liveness.name(),
                p.srtt,
                p.rttvar,
                p.rto,
                p.epoch,
                p.in_flight,
                p.credit_window,
                p.credit_stalls,
                p.failed,
            );
        }
    }
    out
}

/// One structured lifecycle row for the JSON document. Split out from
/// [`peers_json`] so the golden test below can lock the row shape
/// (including the flow-control columns) without standing up an engine.
fn peer_row(node: u64, p: &flipc_core::inspect::PathSnapshot) -> Value {
    Value::object([
        ("node", Value::from(node)),
        ("peer", Value::from(u64::from(p.peer.0))),
        ("liveness", Value::from(p.liveness.name())),
        ("srtt_ticks", Value::from(p.srtt)),
        ("rttvar_ticks", Value::from(p.rttvar)),
        ("rto_ticks", Value::from(p.rto)),
        ("epoch", Value::from(u64::from(p.epoch))),
        ("in_flight", Value::from(u64::from(p.in_flight))),
        ("credit_window", Value::from(u64::from(p.credit_window))),
        ("credit_stalls", Value::from(u64::from(p.credit_stalls))),
        ("credit_shrinks", Value::from(u64::from(p.credit_shrinks))),
        ("failed", Value::from(u64::from(p.failed))),
        ("stale_epoch", Value::from(u64::from(p.stale_epoch))),
        ("pings", Value::from(u64::from(p.pings))),
        ("clock_offset_ns", Value::Num(p.clock_offset_ns as f64)),
        ("clock_dispersion_ns", Value::from(p.clock_dispersion_ns)),
        ("clock_samples", Value::from(p.clock_samples)),
    ])
}

/// The same lifecycle table as structured rows for the JSON document.
fn peers_json(nodes: &[DemoNode]) -> Value {
    let mut rows = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        let Some(snap) = n.engine.transport_snapshot() else {
            continue;
        };
        for p in &snap.paths {
            rows.push(peer_row(i as u64, p));
        }
    }
    Value::Array(rows)
}

/// Per-node telemetry summary for the JSON document.
fn telemetry_json(nodes: &[DemoNode]) -> Value {
    Value::Array(
        nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let acc = n.accum.clone().unwrap_or(EngineTelemetrySnapshot {
                    iteration_work: flipc_core::hist::HistogramSnapshot::empty(
                        flipc_core::hist::BUCKETS,
                    ),
                    deliver_latency: Vec::new(),
                });
                Value::object([
                    ("node", Value::from(i as u64)),
                    ("iterations", Value::from(acc.iteration_work.count())),
                    (
                        "mean_work",
                        Value::from(acc.iteration_work.mean().unwrap_or(0.0)),
                    ),
                    (
                        "endpoints",
                        Value::Array(
                            acc.deliver_latency
                                .iter()
                                .enumerate()
                                .filter(|(_, h)| h.count() > 0)
                                .map(|(e, h)| {
                                    Value::object([
                                        ("endpoint", Value::from(e as u64)),
                                        ("delivers", Value::from(h.count())),
                                        ("p50_ns", Value::from(h.quantile(0.5).unwrap_or(0.0))),
                                        ("p99_ns", Value::from(h.quantile(0.99).unwrap_or(0.0))),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// The `--once --json` document for the engine demo modes. Pure function
/// of its inputs so the golden tests below can lock the shape.
#[allow(clippy::too_many_arguments)]
fn engine_doc(
    mode: &str,
    ticks: u32,
    inject_stall: bool,
    timeline: &Timeline,
    stalls: &[StallReport],
    telemetry: Value,
    peers: Value,
    exposition: &str,
) -> Value {
    Value::object([
        ("schema", Value::from(SCHEMA)),
        ("mode", Value::from(mode)),
        ("ticks", Value::from(u64::from(ticks))),
        ("stall_injected", Value::Bool(inject_stall)),
        ("timeline", timeline.to_json()),
        (
            "stalls",
            Value::Array(stalls.iter().map(StallReport::to_json).collect()),
        ),
        ("telemetry", telemetry),
        ("peers", peers),
        ("exposition", Value::from(exposition)),
    ])
}

/// The `--workload --once --json` document.
fn workload_doc(
    timeline: &Timeline,
    stalls: &[StallReport],
    workloads: Value,
    exposition: &str,
) -> Value {
    Value::object([
        ("schema", Value::from(SCHEMA)),
        ("mode", Value::from("workload")),
        ("workload", Value::from("broadcast")),
        ("timeline", timeline.to_json()),
        (
            "stalls",
            Value::Array(stalls.iter().map(StallReport::to_json).collect()),
        ),
        ("workloads", workloads),
        ("exposition", Value::from(exposition)),
    ])
}

/// The `--cluster --once --json` document: per-direction clock estimates,
/// the merged cross-node timeline, and the stall-burden ranking.
fn cluster_doc(
    run_ms: u64,
    inject_stall: bool,
    clock: Value,
    merged: &MergedTimeline,
    ranks: &[NodeStallRank],
    stalls: &[StallReport],
    exposition: &str,
) -> Value {
    Value::object([
        ("schema", Value::from(SCHEMA)),
        ("mode", Value::from("cluster")),
        ("run_ms", Value::from(run_ms)),
        ("stall_injected", Value::Bool(inject_stall)),
        ("clock", clock),
        ("merged", merged.to_json()),
        (
            "stall_ranking",
            Value::Array(ranks.iter().map(NodeStallRank::to_json).collect()),
        ),
        (
            "stalls",
            Value::Array(stalls.iter().map(StallReport::to_json).collect()),
        ),
        ("exposition", Value::from(exposition)),
    ])
}

/// Reads the clock-sync gauges for each `(node, peer)` direction out of a
/// merged exposition page into the JSON `clock` section.
fn clock_rows(page: &str, pairs: &[(u16, u16)]) -> Value {
    Value::Array(
        pairs
            .iter()
            .map(|&(node, peer)| {
                let (ns, ps) = (node.to_string(), peer.to_string());
                let labels = [("node", ns.as_str()), ("peer", ps.as_str())];
                let read = |name: &str| sample_value(page, name, &labels).unwrap_or(0.0);
                Value::object([
                    ("node", Value::from(u64::from(node))),
                    ("peer", Value::from(u64::from(peer))),
                    ("offset_ns", Value::Num(read("flipc_net_clock_offset_ns"))),
                    (
                        "dispersion_ns",
                        Value::from(read("flipc_net_clock_dispersion_ns") as u64),
                    ),
                    (
                        "samples",
                        Value::from(read("flipc_net_clock_samples") as u64),
                    ),
                ])
            })
            .collect(),
    )
}

/// Serializes drained events in the [`TraceReader::dump_json`] shape —
/// the cluster child's half of the trace-shipping wire format that
/// [`events_from_json`] parses back on the parent side.
fn events_to_json(events: &[TraceEvent]) -> Value {
    Value::Array(
        events
            .iter()
            .map(|ev| {
                Value::object([
                    ("t_ns", Value::from(ev.t_ns)),
                    ("kind", Value::from(ev.kind.name())),
                    ("node", Value::from(u64::from(ev.node))),
                    ("endpoint", Value::from(u64::from(ev.endpoint))),
                    ("arg", Value::from(u64::from(ev.arg))),
                ])
            })
            .collect(),
    )
}

/// `--workload` mode: drives the seeded pub-sub broadcast over the chaos
/// cluster — a storm, a subscriber crash, a fresh-epoch reboot — with its
/// workload-level trace feeding the same timeline/stall pipeline the
/// engine demo uses, and the `flipc_workload_*` family on the exposition
/// page. Manual clock + pinned seed: the whole run is reproducible.
fn run_workload(opts: &Opts) -> ExitCode {
    use flipc_net::FaultConfig;
    use flipc_workloads::{Broadcast, BroadcastConfig, TopicSpec};

    let net = NetConfig {
        window: 8,
        rto: 100,
        rto_min: 10,
        rto_max: 400,
        suspect_strikes: 2,
        dead_strikes: 8,
        heartbeat_interval: 500,
        ..NetConfig::default()
    };
    let topics = vec![TopicSpec {
        topic: 0,
        publisher: 0,
        subscribers: vec![1, 2, 3],
    }];
    let mut b = Broadcast::new(4, net, 0xF11C_0070, BroadcastConfig::default(), topics);
    let (writer, mut reader) = flipc_obs::trace_ring(16384);
    b.install_trace(writer);

    b.cluster_mut().log("storm on the publisher's uplink");
    b.cluster_mut().faults(0, FaultConfig::lossy(0.20));
    b.publish_burst(15);
    b.run(120);
    b.cluster_mut().log("subscriber 2 dies mid-stream");
    b.cluster_mut().crash(2);
    b.publish_burst(15);
    b.run(120);
    b.cluster_mut().log("subscriber 2 reboots on a fresh epoch");
    b.cluster_mut().restart(2);
    b.cluster_mut().log("storm passes; drain to quiesce");
    b.cluster_mut().faults(0, FaultConfig::default());
    for _ in 0..400 {
        if b.completeness_violations().is_empty() {
            break;
        }
        b.run(25);
    }

    // Harvest the workload trace through the standard consumer pipeline.
    // The manual clock ticks stand in for nanoseconds; the crash leaves
    // subscriber 2's endpoint silent for thousands of ticks, which is
    // exactly the kind of gap the stall analyzer attributes.
    let mut batch: Vec<TraceEvent> = Vec::new();
    reader.drain_into(&mut batch);
    let mut builder = TimelineBuilder::new();
    builder.note_lost(reader.lost());
    builder.ingest(&batch);
    let timeline = builder.timeline();
    let cfg = StallConfig {
        threshold_ns: 2_000,
        ..StallConfig::default()
    };
    let idle = flipc_core::hist::HistogramSnapshot::empty(flipc_core::hist::BUCKETS);
    let stalls = scan(&batch, &[], &idle, 0, 0, &cfg);

    let snaps = b.snapshots();
    let mut expo = Exposition::new();
    for s in &snaps {
        flipc_obs::expose_workload(&mut expo, s);
    }
    if let Some(t) = b.cluster_mut().snapshot(0) {
        expose_transport(&mut expo, &t);
    }

    if let Some(path) = &opts.trace_out {
        use std::fmt::Write as _;
        let mut text = String::new();
        for ev in &batch {
            let _ = writeln!(text, "{ev}");
        }
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("flipc-top: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if opts.json {
        let doc = workload_doc(
            &timeline,
            &stalls,
            Value::Array(snaps.iter().map(|s| s.to_json()).collect()),
            &expo.render(),
        );
        println!("{}", doc.render_pretty());
    } else {
        print!("{}", b.cluster_mut().transcript_text());
        println!("=== workloads ===");
        for s in &snaps {
            println!(
                "{} node {}: published={} delivered={} retried={} dropped={} backlog={}",
                s.workload, s.node, s.published, s.delivered, s.retried, s.dropped, s.backlog
            );
            for c in &s.classes {
                if c.latency.count() > 0 {
                    println!(
                        "  class {}: {} delivered, p50={:.0} p99={:.0} ticks",
                        c.class,
                        c.latency.count(),
                        c.latency.quantile(0.5).unwrap_or(0.0),
                        c.latency.quantile(0.99).unwrap_or(0.0),
                    );
                }
            }
        }
        println!("=== timeline ===");
        print!("{}", timeline.render());
        println!("=== stalls ({}) ===", stalls.len());
        for s in &stalls {
            println!("{s}");
        }
        println!("=== exposition ===");
        print!("{}", expo.render());
    }

    // Sanity for CI: the broadcast must quiesce complete and its trace
    // must reach the timeline as per-endpoint activity.
    if !b.completeness_violations().is_empty() || !b.violations().is_empty() {
        eprintln!("flipc-top: workload failed to quiesce cleanly");
        return ExitCode::FAILURE;
    }
    if timeline.endpoints.is_empty() {
        eprintln!("flipc-top: workload produced no endpoint activity");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// One cluster child: a single engine on real UDP, an exposition server
/// for the parent's scraper, and a final `RESULT` line shipping the trace
/// (as JSON events), loss tally, and this node's attributed stalls.
///
/// Node 0 is the ponger (it echoes to the address each ping carries,
/// exactly like the net demo's server); node 1 is the pinger — over UDP
/// traffic must originate at node 1 because node 0's route to it is
/// `Dynamic`. Pings go out on a ~15 ms cadence with the heartbeat
/// interval well below the quiet window between them, so the clock-sync
/// exchange samples continuously alongside real traffic.
fn run_cluster_child(node_id: u16, opts: &Opts) -> ExitCode {
    use std::io::Write as _;

    // Lenient liveness: the injected stall freezes a whole process for
    // several hundred ms, and a dead declaration would reset the session
    // epoch — throwing away the clock estimate mid-run by design.
    let net = NetConfig {
        heartbeat_interval: 5_000,
        dead_strikes: u32::MAX,
        ..NetConfig::default()
    };
    let transport = if node_id == 0 {
        let mut map = NodeMap::new();
        map.insert(
            FlipcNodeId(0),
            NodeAddr::Static(SocketAddr::from(([127, 0, 0, 1], 0))),
        )
        .insert(FlipcNodeId(1), NodeAddr::Dynamic);
        udp_transport(&map, FlipcNodeId(0), net)
    } else {
        let Some(peer) = opts.peer_addr else {
            eprintln!("flipc-top: --cluster-node 1 needs --peer-addr");
            return ExitCode::from(2);
        };
        let mut map = NodeMap::new();
        map.insert(FlipcNodeId(0), NodeAddr::Static(peer)).insert(
            FlipcNodeId(1),
            NodeAddr::Static(SocketAddr::from(([127, 0, 0, 1], 0))),
        );
        udp_transport(&map, FlipcNodeId(1), net)
    };
    let transport = match transport {
        Ok(t) => t,
        Err(e) => {
            eprintln!("flipc-top: cluster node {node_id} cannot bind: {e}");
            return ExitCode::from(2);
        }
    };
    let udp_addr = transport.link().local_addr().expect("local addr");

    let cb = Arc::new(CommBuffer::new(geometry()).expect("geometry"));
    let registry = WaitRegistry::new();
    let app = Flipc::attach(cb.clone(), FlipcNodeId(node_id), registry.clone());
    let mut node = DemoNode::new(
        app,
        Engine::new(cb, Box::new(transport), registry, EngineConfig::default()),
    );
    let my_inbox = node.app.address(&node.rx).pack();
    // Node 0's keepalive: a periodic node-local tick (send to its own
    // second receive endpoint, engine loopback bypass). When node 1
    // freezes, node 0's trace would otherwise go just as silent — and the
    // stall ranking would blame the starved victim instead of the frozen
    // culprit. The tick proves node 0's engine loop stayed alive.
    let tick = (node_id == 0).then(|| {
        let ttx = node
            .app
            .endpoint_allocate(EndpointType::Send, Importance::Normal)
            .expect("tick send endpoint");
        let trx = node
            .app
            .endpoint_allocate(EndpointType::Receive, Importance::Normal)
            .expect("tick receive endpoint");
        let addr = node.app.address(&trx);
        let eps = (node.app.address(&ttx).index().0, addr.index().0);
        (ttx, trx, addr, eps)
    });

    let page: Arc<Mutex<String>> = Arc::new(Mutex::new(String::new()));
    let server = {
        let page = page.clone();
        match ExpoServer::spawn("127.0.0.1:0", move || {
            page.lock().expect("page lock").clone()
        }) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("flipc-top: cluster node {node_id} cannot serve metrics: {e}");
                return ExitCode::from(2);
            }
        }
    };

    // The out-of-band name service, same as the net demo: stdout.
    println!(
        "READY udp={udp_addr} expo={} inbox={my_inbox}",
        server.addr()
    );
    let _ = std::io::stdout().flush();

    let cfg = StallConfig {
        threshold_ns: opts.stall_threshold.as_nanos() as u64,
        ..StallConfig::default()
    };
    let run_for = Duration::from_millis(opts.run_ms.max(200));
    let mut deadline = Instant::now() + run_for;
    let halfway = Instant::now() + run_for / 2;
    let mut injected = !opts.inject_stall;
    let mut next_ping = Instant::now();
    let mut next_tick = Instant::now();
    let mut last_harvest = Instant::now();
    let mut builder = TimelineBuilder::new();
    let mut all_events: Vec<TraceEvent> = Vec::new();
    let mut stalls: Vec<StallReport> = Vec::new();
    let peer_inbox = opts.peer_inbox.map(EndpointAddress::unpack);
    let send_ping = |node: &mut DemoNode, peer: EndpointAddress| {
        let Ok(mut buf) = node.app.buffer_allocate() else {
            return;
        };
        node.app.payload_mut(&mut buf)[..8].copy_from_slice(&my_inbox.to_le_bytes());
        if let Err(r) = node.app.send_unlocked(&node.tx, buf, peer) {
            node.app.buffer_free(r.token);
        }
    };

    while Instant::now() < deadline {
        stock_receivers(std::slice::from_mut(&mut node));
        while let Ok(Some(tok)) = node.app.reclaim_send_unlocked(&node.tx) {
            node.app.buffer_free(tok);
        }
        node.engine.iterate();
        while let Ok(Some(got)) = node.app.recv_unlocked(&node.rx) {
            if node_id == 0 {
                // Echo back to the address the ping carries, reusing the
                // delivered buffer as the pong.
                let payload = node.app.payload(&got.token);
                let reply = EndpointAddress::unpack(u64::from_le_bytes(
                    payload[..8].try_into().expect("8-byte reply address"),
                ));
                if let Err(r) = node.app.send_unlocked(&node.tx, got.token, reply) {
                    node.app.buffer_free(r.token);
                }
            } else {
                node.app.buffer_free(got.token);
            }
        }
        if let Some((ttx, trx, addr, _)) = tick.as_ref() {
            if Instant::now() >= next_tick {
                next_tick = Instant::now() + Duration::from_millis(20);
                while let Ok(Some(tok)) = node.app.reclaim_send_unlocked(ttx) {
                    node.app.buffer_free(tok);
                }
                while let Ok(Some(got)) = node.app.recv_unlocked(trx) {
                    node.app.buffer_free(got.token);
                }
                if let Ok(stock) = node.app.buffer_allocate() {
                    if let Err(r) = node.app.provide_receive_buffer_unlocked(trx, stock) {
                        node.app.buffer_free(r.token);
                    }
                }
                if let Ok(buf) = node.app.buffer_allocate() {
                    if let Err(r) = node.app.send_unlocked(ttx, buf, *addr) {
                        node.app.buffer_free(r.token);
                    }
                }
            }
        }
        if node_id == 1 && Instant::now() >= next_ping {
            next_ping = Instant::now() + Duration::from_millis(15);
            if let Some(peer) = peer_inbox {
                send_ping(&mut node, peer);
            }
        }
        if !injected && Instant::now() >= halfway {
            injected = true;
            // Freeze the pump with pings queued: the trace goes silent and
            // the resume flush gives the analyzer its backlog evidence.
            if let Some(peer) = peer_inbox {
                for _ in 0..24 {
                    send_ping(&mut node, peer);
                }
            }
            std::thread::sleep(4 * opts.stall_threshold);
            // Don't let the freeze eat the rest of the run: the queued
            // burst has to flush (its resume events are the stall's
            // trailing edge) before the deadline.
            deadline += 4 * opts.stall_threshold;
        }
        if last_harvest.elapsed() >= Duration::from_millis(50) {
            last_harvest = Instant::now();
            let h = harvest_tick(
                std::slice::from_mut(&mut node),
                &mut builder,
                &mut all_events,
                &cfg,
            );
            stalls.extend(h.stalls);
            *page.lock().expect("page lock") = exposition(std::slice::from_ref(&node));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let h = harvest_tick(
        std::slice::from_mut(&mut node),
        &mut builder,
        &mut all_events,
        &cfg,
    );
    stalls.extend(h.stalls);
    *page.lock().expect("page lock") = exposition(std::slice::from_ref(&node));

    // The keepalive ticks already did their job locally (they kept the
    // stall scanner honest about engine liveness); shipped to the parent
    // they would only pollute the cross-node pairing in the merge, so
    // strip them from the event feed.
    if let Some((_, _, _, (te_tx, te_rx))) = tick.as_ref() {
        all_events.retain(|ev| ev.endpoint != *te_tx && ev.endpoint != *te_rx);
    }

    // Ship the parent everything its merge needs. The exposition page
    // stays scrapeable until the process exits; the parent keeps its last
    // successful scrape, so no extra handshake is required here.
    let result = Value::object([
        ("node", Value::from(u64::from(node_id))),
        ("lost", Value::from(node.lost)),
        ("events", events_to_json(&all_events)),
        (
            "stalls",
            Value::Array(stalls.iter().map(StallReport::to_json).collect()),
        ),
    ]);
    println!("RESULT {}", result.render());
    let _ = std::io::stdout().flush();
    drop(server);
    ExitCode::SUCCESS
}

/// Parses a child's `READY udp=… expo=… inbox=…` line.
fn read_ready(r: &mut impl std::io::BufRead) -> Option<(SocketAddr, SocketAddr, u64)> {
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line).ok()? == 0 {
            return None;
        }
        if let Some(rest) = line.trim().strip_prefix("READY ") {
            let field = |k: &str| rest.split_whitespace().find_map(|t| t.strip_prefix(k));
            let udp: SocketAddr = field("udp=")?.parse().ok()?;
            let expo: SocketAddr = field("expo=")?.parse().ok()?;
            let inbox: u64 = field("inbox=")?.parse().ok()?;
            return Some((udp, expo, inbox));
        }
    }
}

/// Parses a child's collected stdout for the final `RESULT` document:
/// `(node, lost, events, stalls)`.
fn parse_child_result(out: &str) -> Option<(u16, u64, Vec<TraceEvent>, Vec<StallReport>)> {
    let line = out.lines().find_map(|l| l.strip_prefix("RESULT "))?;
    let v = Value::parse(line).ok()?;
    let node = v.get("node")?.as_f64()? as u16;
    let lost = v.get("lost")?.as_f64()? as u64;
    let events = events_from_json(v.get("events")?)?;
    let stalls = v
        .get("stalls")?
        .as_array()?
        .iter()
        .map(StallReport::from_json)
        .collect::<Option<Vec<_>>>()?;
    Some((node, lost, events, stalls))
}

/// One-line live summary of a node's clock estimate from its page.
fn clock_line(page: Option<&String>, node: u16, peer: u16) -> String {
    let Some(page) = page else {
        return format!("node {node}: no scrape yet");
    };
    let (ns, ps) = (node.to_string(), peer.to_string());
    let labels = [("node", ns.as_str()), ("peer", ps.as_str())];
    let read = |name: &str| sample_value(page, name, &labels).unwrap_or(0.0);
    format!(
        "node {node} -> peer {peer}: clock offset {}ns ±{}ns ({} samples)",
        read("flipc_net_clock_offset_ns") as i64,
        read("flipc_net_clock_dispersion_ns") as u64,
        read("flipc_net_clock_samples") as u64,
    )
}

/// `--cluster`: spawn the two UDP children, scrape both expositions while
/// they run, then merge their shipped timelines onto node 0's clock and
/// rank the nodes by stall burden.
fn run_cluster(opts: &Opts) -> ExitCode {
    use std::io::Read as _;
    use std::process::{Command, Stdio};

    let exe = match std::env::current_exe() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("flipc-top: cannot locate own binary: {e}");
            return ExitCode::from(2);
        }
    };
    let run_ms = u64::from(opts.ticks) * opts.interval.as_millis() as u64;
    let threshold_ms = opts.stall_threshold.as_millis().to_string();
    let spawn = |extra: &[&str]| {
        let mut cmd = Command::new(&exe);
        cmd.args(["--run-ms", &run_ms.to_string()])
            .args(["--stall-threshold", &threshold_ms])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        cmd.spawn().map(|mut child| {
            let stdout = child.stdout.take().expect("piped stdout");
            (child, std::io::BufReader::new(stdout))
        })
    };

    // Node 0 (ponger) boots first and announces its addresses; node 1
    // (pinger) gets them on its command line — the parent is the name
    // service the paper assumes is external.
    let (mut c0, mut r0) = match spawn(&["--cluster-node", "0"]) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("flipc-top: cannot spawn node 0: {e}");
            return ExitCode::from(2);
        }
    };
    let Some((udp0, expo0, inbox0)) = read_ready(&mut r0) else {
        eprintln!("flipc-top: node 0 never became ready");
        let _ = c0.kill();
        return ExitCode::FAILURE;
    };
    let mut child1_args = vec![
        "--cluster-node".to_string(),
        "1".to_string(),
        "--peer-addr".to_string(),
        udp0.to_string(),
        "--peer-inbox".to_string(),
        inbox0.to_string(),
    ];
    if opts.inject_stall {
        child1_args.push("--inject-stall".to_string());
    }
    let child1_refs: Vec<&str> = child1_args.iter().map(String::as_str).collect();
    let (mut c1, mut r1) = match spawn(&child1_refs) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("flipc-top: cannot spawn node 1: {e}");
            let _ = c0.kill();
            return ExitCode::from(2);
        }
    };
    let Some((_udp1, expo1, _inbox1)) = read_ready(&mut r1) else {
        eprintln!("flipc-top: node 1 never became ready");
        let _ = c0.kill();
        let _ = c1.kill();
        return ExitCode::FAILURE;
    };

    // Children may block on a full stdout pipe while shipping their trace,
    // so collector threads drain the rest of each pipe concurrently.
    let collect0 = std::thread::spawn(move || {
        let mut s = String::new();
        let _ = r0.read_to_string(&mut s);
        s
    });
    let collect1 = std::thread::spawn(move || {
        let mut s = String::new();
        let _ = r1.read_to_string(&mut s);
        s
    });

    let mut scraper = ClusterScraper::new(&[(0, expo0), (1, expo1)]);
    let mut last_pages: [Option<String>; 2] = [None, None];
    let hard_deadline = Instant::now() + Duration::from_millis(run_ms * 4 + 10_000);
    let mut poll = 0u32;
    loop {
        let done0 = matches!(c0.try_wait(), Ok(Some(_)));
        let done1 = matches!(c1.try_wait(), Ok(Some(_)));
        if done0 && done1 {
            break;
        }
        if Instant::now() > hard_deadline {
            eprintln!("flipc-top: cluster children overran; killing");
            let _ = c0.kill();
            let _ = c1.kill();
            return ExitCode::FAILURE;
        }
        std::thread::sleep(Duration::from_millis(100));
        for s in scraper.scrape() {
            if let Some(p) = s.page {
                last_pages[usize::from(s.node)] = Some(p);
            }
        }
        poll += 1;
        if !opts.json {
            println!("--- cluster poll {poll} ---");
            println!("{}", clock_line(last_pages[0].as_ref(), 0, 1));
            println!("{}", clock_line(last_pages[1].as_ref(), 1, 0));
        }
    }
    let status_ok =
        matches!(c0.wait(), Ok(s) if s.success()) && matches!(c1.wait(), Ok(s) if s.success());
    let out0 = collect0.join().unwrap_or_default();
    let out1 = collect1.join().unwrap_or_default();
    if !status_ok {
        eprintln!("flipc-top: a cluster child exited with failure");
        return ExitCode::FAILURE;
    }
    let (Some((_, lost0, events0, stalls0)), Some((_, lost1, events1, stalls1))) =
        (parse_child_result(&out0), parse_child_result(&out1))
    else {
        eprintln!("flipc-top: a cluster child shipped no parseable RESULT");
        return ExitCode::FAILURE;
    };

    // Node 0 is the reference clock. Its transport measured node 1's
    // offset (positive = node 1 ahead), so node 1's stamps rebase by the
    // negation; the dispersion rides along as the error bar.
    let page0 = last_pages[0].clone().unwrap_or_default();
    let labels = [("node", "0"), ("peer", "1")];
    let read0 = |name: &str| sample_value(&page0, name, &labels).unwrap_or(0.0);
    let offset01 = read0("flipc_net_clock_offset_ns") as i64;
    let dispersion01 = read0("flipc_net_clock_dispersion_ns") as u64;
    let samples01 = read0("flipc_net_clock_samples") as u64;
    let inputs = [
        NodeInput {
            node: 0,
            offset_ns: 0,
            dispersion_ns: 0,
            events: events0,
            lost: lost0,
        },
        NodeInput {
            node: 1,
            offset_ns: -offset01,
            dispersion_ns: dispersion01,
            events: events1,
            lost: lost1,
        },
    ];
    let merged = merge(&inputs);
    let mut all_stalls = stalls0;
    all_stalls.extend(stalls1);
    let ranks = rank_nodes(&all_stalls);
    let merged_page = merge_pages(&[
        flipc_obs::NodeScrape {
            node: 0,
            page: last_pages[0].clone(),
        },
        flipc_obs::NodeScrape {
            node: 1,
            page: last_pages[1].clone(),
        },
    ]);

    if opts.json {
        let doc = cluster_doc(
            run_ms,
            opts.inject_stall,
            clock_rows(&merged_page, &[(0, 1), (1, 0)]),
            &merged,
            &ranks,
            &all_stalls,
            &merged_page,
        );
        println!("{}", doc.render_pretty());
    } else {
        println!("=== clock ===");
        println!("{}", clock_line(last_pages[0].as_ref(), 0, 1));
        println!("{}", clock_line(last_pages[1].as_ref(), 1, 0));
        println!("=== merged timeline (node 0 clock) ===");
        print!("{}", merged.timeline.render());
        println!(
            "cross-node chains: {} (p99 {}ns ±{}ns, {} unmatched sends)",
            merged.cross_chains.len(),
            merged.cross_latency_p99_ns().unwrap_or(0),
            merged.max_error_ns,
            merged.unmatched_sends,
        );
        println!("=== stall ranking ===");
        for r in &ranks {
            println!(
                "node {}: {} stalls, {:.2} ms total (worst {:.2} ms, {})",
                r.node,
                r.stalls,
                r.total_gap_ns as f64 / 1e6,
                r.worst_gap_ns as f64 / 1e6,
                r.worst_cause.name(),
            );
        }
        println!("=== exposition ===");
        print!("{merged_page}");
    }

    // Sanity for CI: clock sync must have converged, the merge must have
    // reconstructed real cross-process chains, and an injected stall must
    // be pinned on the node that carried it.
    if samples01 == 0 {
        eprintln!("flipc-top: clock sync never produced a sample");
        return ExitCode::FAILURE;
    }
    if merged.cross_chains.is_empty() {
        eprintln!("flipc-top: no cross-node send->deliver chains reconstructed");
        return ExitCode::FAILURE;
    }
    if opts.inject_stall && ranks.first().map(|r| r.node) != Some(1) {
        eprintln!("flipc-top: stall injected on node 1 but ranking blames {ranks:?}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run(opts: &Opts) -> ExitCode {
    if let Some(node_id) = opts.cluster_node {
        return run_cluster_child(node_id, opts);
    }
    if opts.cluster {
        return run_cluster(opts);
    }
    if opts.workload {
        return run_workload(opts);
    }
    let mut nodes = build_nodes(opts.udp);
    // Over UDP, traffic must originate at node 1 (see `round`).
    let (pinger, ponger) = if opts.udp { (1, 0) } else { (0, 1) };
    let to_ponger = nodes[ponger].app.address(&nodes[ponger].rx);
    let to_pinger = nodes[pinger].app.address(&nodes[pinger].rx);
    let cfg = StallConfig {
        threshold_ns: opts.stall_threshold.as_nanos() as u64,
        ..StallConfig::default()
    };

    // The optional HTTP listener serves whatever page the last tick
    // rendered (observer-side state only).
    let page: Arc<Mutex<String>> = Arc::new(Mutex::new(String::new()));
    let _server = match &opts.listen {
        None => None,
        Some(addr) => {
            let page = page.clone();
            match ExpoServer::spawn(addr, move || page.lock().expect("page lock").clone()) {
                Ok(s) => {
                    eprintln!("flipc-top: serving metrics on http://{}", s.addr());
                    Some(s)
                }
                Err(e) => {
                    eprintln!("flipc-top: cannot listen on {addr}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let mut builder = TimelineBuilder::new();
    let mut all_events: Vec<TraceEvent> = Vec::new();
    let mut all_stalls: Vec<StallReport> = Vec::new();
    let mut injected = !opts.inject_stall;

    for tick in 0..opts.ticks {
        let deadline = Instant::now() + opts.interval;
        let halfway = Instant::now() + opts.interval / 2;
        while Instant::now() < deadline {
            round(&mut nodes, pinger, ponger, to_ponger, to_pinger);
            if !injected && Instant::now() >= halfway {
                injected = true;
                // Freeze the pump with work queued: the trace goes silent
                // for several thresholds, and the flush on resume gives
                // the analyzer its backlog evidence.
                queue_burst(&mut nodes, pinger, to_ponger, 24);
                std::thread::sleep(4 * opts.stall_threshold);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let h = harvest_tick(&mut nodes, &mut builder, &mut all_events, &cfg);
        *page.lock().expect("page lock") = exposition(&nodes);
        if !opts.json {
            println!("--- tick {}/{} ---", tick + 1, opts.ticks);
            for (i, n) in nodes.iter().enumerate() {
                if let Some(acc) = &n.accum {
                    print!("node {i}: {}", acc.render());
                }
            }
            print!("{}", peer_table(&nodes));
            for s in &h.stalls {
                println!("STALL {s}");
            }
        }
        all_stalls.extend(h.stalls);
    }

    let timeline = builder.timeline();
    *page.lock().expect("page lock") = exposition(&nodes);
    if let Some(path) = &opts.trace_out {
        if let Err(e) = std::fs::write(path, trace_text(&all_events)) {
            eprintln!("flipc-top: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if opts.json {
        let doc = engine_doc(
            if opts.udp { "udp" } else { "loopback" },
            opts.ticks,
            opts.inject_stall,
            &timeline,
            &all_stalls,
            telemetry_json(&nodes),
            peers_json(&nodes),
            &exposition(&nodes),
        );
        println!("{}", doc.render_pretty());
    } else {
        println!("=== timeline ===");
        print!("{}", timeline.render());
        println!("=== peers ===");
        print!("{}", peer_table(&nodes));
        println!("=== stalls ({}) ===", all_stalls.len());
        for s in &all_stalls {
            println!("{s}");
        }
        println!("=== exposition ===");
        print!("{}", exposition(&nodes));
    }

    // Sanity for CI: the demo must have produced at least one endpoint
    // timeline, and stall detection must match the injection request.
    if timeline.endpoints.is_empty() {
        eprintln!("flipc-top: demo produced no endpoint activity");
        return ExitCode::FAILURE;
    }
    if opts.inject_stall && all_stalls.is_empty() {
        eprintln!("flipc-top: stall injected but not detected");
        return ExitCode::FAILURE;
    }
    if !opts.inject_stall && !all_stalls.is_empty() {
        eprintln!(
            "flipc-top: {} spurious stall report(s) on healthy traffic \
             (raise --stall-threshold on very noisy machines)",
            all_stalls.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use flipc_obs::stall::StallCause;
    use flipc_obs::trace::TraceKind;

    fn ev(t_ns: u64, kind: TraceKind, node: u16, endpoint: u16, arg: u32) -> TraceEvent {
        TraceEvent {
            t_ns,
            kind,
            node,
            endpoint,
            arg,
        }
    }

    fn fixture_stall(node: u16, gap_ns: u64) -> StallReport {
        StallReport {
            node,
            start_ns: 10_000,
            end_ns: 10_000 + gap_ns,
            gap_ns,
            endpoint: 1,
            cause: StallCause::EngineIdle,
            resume_burst: 0,
        }
    }

    /// Locks one `peers` row byte-for-byte, flow-control columns
    /// included: the credit window the peer currently grants, the sends
    /// refused by flow control, and the receive-side shrink rounds.
    #[test]
    fn peer_row_golden() {
        let p = flipc_core::inspect::PathSnapshot {
            peer: FlipcNodeId(1),
            sent: 40,
            retransmitted: 2,
            delivered: 38,
            dup_dropped: 0,
            out_of_window: 0,
            wire_dropped: 0,
            in_flight: 3,
            failed: 0,
            stale_epoch: 0,
            pings: 5,
            credit_stalls: 7,
            credit_shrinks: 2,
            credit_window: 4,
            liveness: PeerLiveness::Healthy,
            srtt: 120,
            rttvar: 30,
            rto: 240,
            epoch: 1,
            clock_offset_ns: -250,
            clock_dispersion_ns: 300,
            clock_samples: 12,
        };
        let expected = "{\"node\":0,\"peer\":1,\"liveness\":\"healthy\",\"srtt_ticks\":120,\"rttvar_ticks\":30,\"rto_ticks\":240,\"epoch\":1,\"in_flight\":3,\"credit_window\":4,\"credit_stalls\":7,\"credit_shrinks\":2,\"failed\":0,\"stale_epoch\":0,\"pings\":5,\"clock_offset_ns\":-250,\"clock_dispersion_ns\":300,\"clock_samples\":12}";
        assert_eq!(peer_row(0, &p).render(), expected);
    }

    /// Locks the `--once --json` engine document byte-for-byte. A failure
    /// here means the output shape changed: bump [`SCHEMA`] and update the
    /// golden string deliberately, never accidentally.
    #[test]
    fn engine_doc_golden() {
        let mut b = TimelineBuilder::new();
        b.ingest(&[
            ev(1_000, TraceKind::Send, 0, 1, 7),
            ev(3_500, TraceKind::Deliver, 0, 1, 7),
        ]);
        let timeline = b.timeline().clone();
        let stalls = [fixture_stall(0, 15_000)];
        let telemetry = Value::object([("iterations", Value::from(5u64))]);
        let peers = Value::Array(Vec::new());
        let doc = engine_doc(
            "udp",
            3,
            false,
            &timeline,
            &stalls,
            telemetry,
            peers,
            "# fixture\n",
        );
        let expected = "{\"schema\":3,\"mode\":\"udp\",\"ticks\":3,\"stall_injected\":false,\"timeline\":{\"endpoints\":[{\"node\":0,\"endpoint\":1,\"first_ns\":1000,\"last_ns\":3500,\"sends\":1,\"delivers\":1,\"drops\":0,\"wakeups\":0,\"misaddressed\":0,\"bytes\":14,\"events_per_sec\":800000,\"gaps\":{\"count\":1,\"min_ns\":2500,\"max_ns\":2500,\"mean_ns\":2500}}],\"chain_latency\":{\"count\":1,\"min_ns\":2500,\"max_ns\":2500,\"mean_ns\":2500},\"retransmit_bursts\":0,\"retransmit_frames\":0,\"total_events\":2,\"lost\":0},\"stalls\":[{\"node\":0,\"start_ns\":10000,\"end_ns\":25000,\"gap_ns\":15000,\"endpoint\":1,\"cause\":\"engine-idle\",\"resume_burst\":0}],\"telemetry\":{\"iterations\":5},\"peers\":[],\"exposition\":\"# fixture\\n\"}";
        assert_eq!(doc.render(), expected);
    }

    /// Locks the `--cluster --once --json` document: the `clock` rows read
    /// back from an exposition page, the merged timeline with offsets and
    /// error bars, and the stall-burden ranking.
    #[test]
    fn cluster_doc_golden() {
        let page = "\
# TYPE flipc_net_clock_offset_ns gauge
flipc_net_clock_offset_ns{node=\"0\",peer=\"1\"} -250
# TYPE flipc_net_clock_dispersion_ns gauge
flipc_net_clock_dispersion_ns{node=\"0\",peer=\"1\"} 300
# TYPE flipc_net_clock_samples gauge
flipc_net_clock_samples{node=\"0\",peer=\"1\"} 12
";
        let clock = clock_rows(page, &[(0, 1)]);
        let merged = merge(&[
            NodeInput {
                node: 0,
                offset_ns: 0,
                dispersion_ns: 0,
                events: vec![ev(1_000, TraceKind::Send, 0, 1, 7)],
                lost: 0,
            },
            NodeInput {
                node: 1,
                offset_ns: 250,
                dispersion_ns: 300,
                events: vec![ev(3_750, TraceKind::Deliver, 1, 2, 7)],
                lost: 0,
            },
        ]);
        let ranks = rank_nodes(&[fixture_stall(1, 20_000)]);
        let stalls = [fixture_stall(1, 20_000)];
        let doc = cluster_doc(500, true, clock, &merged, &ranks, &stalls, "# fixture\n");
        let expected = "{\"schema\":3,\"mode\":\"cluster\",\"run_ms\":500,\"stall_injected\":true,\"clock\":[{\"node\":0,\"peer\":1,\"offset_ns\":-250,\"dispersion_ns\":300,\"samples\":12}],\"merged\":{\"nodes\":[{\"node\":0,\"offset_ns\":0,\"dispersion_ns\":0},{\"node\":1,\"offset_ns\":250,\"dispersion_ns\":300}],\"cross_chains\":1,\"cross_latency\":{\"count\":1,\"min_ns\":3000,\"max_ns\":3000,\"mean_ns\":3000},\"cross_latency_p99_ns\":3000,\"max_error_ns\":300,\"unmatched_sends\":0,\"timeline\":{\"endpoints\":[{\"node\":0,\"endpoint\":1,\"first_ns\":1000,\"last_ns\":1000,\"sends\":1,\"delivers\":0,\"drops\":0,\"wakeups\":0,\"misaddressed\":0,\"bytes\":7,\"events_per_sec\":0,\"gaps\":{\"count\":0,\"min_ns\":0,\"max_ns\":0,\"mean_ns\":0}},{\"node\":1,\"endpoint\":2,\"first_ns\":4000,\"last_ns\":4000,\"sends\":0,\"delivers\":1,\"drops\":0,\"wakeups\":0,\"misaddressed\":0,\"bytes\":7,\"events_per_sec\":0,\"gaps\":{\"count\":0,\"min_ns\":0,\"max_ns\":0,\"mean_ns\":0}}],\"chain_latency\":{\"count\":0,\"min_ns\":0,\"max_ns\":0,\"mean_ns\":0},\"retransmit_bursts\":0,\"retransmit_frames\":0,\"total_events\":2,\"lost\":0}},\"stall_ranking\":[{\"node\":1,\"stalls\":1,\"total_gap_ns\":20000,\"worst_gap_ns\":20000,\"worst_cause\":\"engine-idle\"}],\"stalls\":[{\"node\":1,\"start_ns\":10000,\"end_ns\":30000,\"gap_ns\":20000,\"endpoint\":1,\"cause\":\"engine-idle\",\"resume_burst\":0}],\"exposition\":\"# fixture\\n\"}";
        assert_eq!(doc.render(), expected);
    }
}
