//! FLIPC: a low-latency messaging system for distributed real-time
//! environments.
//!
//! This is a from-scratch Rust reproduction of the system described in
//! Black, Smith, Sears & Dean, *"FLIPC: A Low Latency Messaging System for
//! Distributed Real Time Environments"*, USENIX Annual Technical
//! Conference, 1996. It is a facade crate re-exporting the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `flipc-core` | communication buffer, wait-free queues and counters, endpoints, groups, the application API, managed-buffer and flow-control layers |
//! | [`engine`] | `flipc-engine` | the messaging engine, transports, SPSC wire rings, node/cluster assembly |
//! | [`kkt`] | `flipc-kkt` | the RPC-per-message development transport |
//! | [`net`] | `flipc-net` | real UDP inter-node transport with the optimistic go-back-N reliability layer, fault injection, per-peer wire stats |
//! | [`obs`] | `flipc-obs` | wait-free trace ring and telemetry recorders plus their consumers: timeline reconstruction, stall analysis, metrics exposition (see also the `flipc-top` binary) |
//! | [`rt`] | `flipc-rt` | real-time semaphore, priority dispatcher, workload generators |
//! | [`sim`] | `flipc-sim` | discrete-event kernel, coherent-cache model, cost model, statistics |
//! | [`workloads`] | `flipc-workloads` | composable workloads over the transport: fan-out pub-sub broadcast, replicated ordered log with replay-from-offset, priority-tiered delivery |
//! | [`mesh`] | `flipc-mesh` | Paragon-style wormhole 2D mesh simulator |
//! | [`baselines`] | `flipc-baselines` | NX / PAM / SUNMOS comparator models |
//! | [`paragon`] | `flipc-paragon` | the calibrated FLIPC-on-Paragon model and every paper experiment |
//!
//! The most common types are re-exported at the top level.
//!
//! # Quickstart
//!
//! ```
//! use flipc::{EndpointType, Geometry, Importance};
//! use flipc::engine::{EngineConfig, InlineCluster};
//!
//! // Two nodes with deterministic (inline) engines.
//! let mut cluster = InlineCluster::new(2, Geometry::small(), EngineConfig::default())?;
//! let alice = cluster.node(0).attach();
//! let bob = cluster.node(1).attach();
//!
//! // Bob allocates a receive endpoint and queues a buffer (step 1).
//! let inbox = bob.endpoint_allocate(EndpointType::Receive, Importance::Normal)?;
//! let buf = bob.buffer_allocate()?;
//! bob.provide_receive_buffer(&inbox, buf).map_err(|r| r.error)?;
//! let inbox_addr = bob.address(&inbox); // distributed out of band
//!
//! // Alice sends (step 2); the engines move the message (step 3).
//! let outbox = alice.endpoint_allocate(EndpointType::Send, Importance::High)?;
//! let mut msg = alice.buffer_allocate()?;
//! alice.payload_mut(&mut msg)[..5].copy_from_slice(b"hello");
//! alice.send(&outbox, msg, inbox_addr).map_err(|r| r.error)?;
//! cluster.pump_until_idle(16);
//!
//! // Bob receives (step 4); Alice recovers her buffer (step 5).
//! let received = bob.recv(&inbox)?.expect("delivered");
//! assert_eq!(&bob.payload(&received.token)[..5], b"hello");
//! assert!(alice.reclaim_send(&outbox)?.is_some());
//! # Ok::<(), flipc::FlipcError>(())
//! ```

pub use flipc_baselines as baselines;
pub use flipc_core as core;
pub use flipc_engine as engine;
pub use flipc_kkt as kkt;
pub use flipc_mesh as mesh;
pub use flipc_net as net;
pub use flipc_obs as obs;
pub use flipc_paragon as paragon;
pub use flipc_rt as rt;
pub use flipc_sim as sim;
pub use flipc_workloads as workloads;

pub use flipc_core::{
    BufferId, BufferState, BufferToken, CommBuffer, EndpointAddress, EndpointGroup, EndpointIndex,
    EndpointType, Flipc, FlipcError, FlipcNodeId, Geometry, Importance, LocalEndpoint, Received,
    WaitRegistry,
};
